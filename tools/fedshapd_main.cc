/// fedshapd — the multi-tenant valuation job service, as a CLI.
///
/// Reads valuation jobs (one per line of key=value tokens, see
/// docs/OPERATIONS.md), runs them concurrently over shared, deduplicated
/// utility evaluations, and persists everything — job specs, estimator
/// checkpoints, finished results, and the per-workload utility stores —
/// under a state directory, so a killed fedshapd relaunches and resumes
/// every in-flight job to a bit-identical result.
///
/// Usage:
///   fedshapd --state-dir=DIR [--jobs=FILE|-] [--workers=N]
///            [--cluster-workers=N] [--cluster-mode=thread|fork]
///            [--listen=HOST:PORT] [--connect=HOST:PORT]
///            [--status] [--cancel=NAME] [--purge=NAME]
///            [--kill-after=N] [--print-values] [--quiet]
///
/// Default action: recover persisted jobs, submit the jobs of --jobs
/// (if any), drain everything to a terminal state, print a summary.
///
///   --state-dir=DIR   durable service state ("" = memory-only session)
///   --jobs=FILE       job file to submit ("-" = read stdin)
///   --workers=N       concurrent job slices (default 2)
///   --cluster-workers=N  run as a sharded cluster on this host: every
///                     utility training is dispatched to one of N cluster
///                     workers by coalition shard (0 = off, the default).
///                     Values are bit-identical to a clusterless run.
///   --cluster-mode=thread|fork  cluster workers as threads (default) or
///                     fork()ed subprocesses (real process isolation; the
///                     FEDSHAP_FAULT_SPEC env fault script applies per
///                     child, see docs/OPERATIONS.md)
///   --listen=HOST:PORT  coordinator mode for multi-node runs: accept
///                     TCP worker registrations here (port 0 picks a free
///                     port; composes with --cluster-workers — local and
///                     remote workers share one shard map). While no
///                     worker is connected, coalitions train locally
///                     (degraded mode) and values stay bit-identical.
///   --connect=HOST:PORT  worker mode: dial the coordinator, register,
///                     serve trainings until it shuts the cluster down.
///                     Reconnects with capped exponential backoff across
///                     coordinator restarts and partitions.
///   --status          print the job table and exit (nothing runs)
///   --cancel=NAME     cancel one job and exit
///   --purge=NAME      remove one terminal job's state and exit
///   --kill-after=N    crash simulation: halt after N slices, exit 17
///   --print-values    print every finished job's values (%.17g)
///   --quiet           suppress per-slice progress lines
///
/// Resilience knobs (env, all optional): FEDSHAP_RPC_DEADLINE_MS,
/// FEDSHAP_TASK_RETRY_MS, FEDSHAP_BREAKER_THRESHOLD,
/// FEDSHAP_BREAKER_COOLDOWN_MS, FEDSHAP_DEGRADED_GRACE_MS (coordinator);
/// FEDSHAP_RECONNECT_BASE_MS, FEDSHAP_RECONNECT_CAP_MS,
/// FEDSHAP_RECONNECT_SEED (worker). See docs/OPERATIONS.md.
///
/// Exit codes: 0 all jobs done, 1 some job failed (or usage/IO error on
/// stderr), 17 halted by --kill-after with jobs still in flight.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ml/kernel_backend.h"
#include "service/cluster.h"
#include "service/cluster_worker.h"
#include "service/job_spec.h"
#include "service/valuation_service.h"
#include "util/serialization.h"

using namespace fedshap;

namespace {

struct CliOptions {
  std::string state_dir;
  std::string jobs_file;
  std::string cancel_name;
  std::string purge_name;
  std::string listen;   // coordinator: accept TCP workers on host:port
  std::string connect;  // worker: dial the coordinator at host:port
  int workers = 2;
  int cluster_workers = 0;
  bool cluster_fork = false;
  size_t kill_after = 0;
  bool status_only = false;
  bool print_values = false;
  bool quiet = false;
};

/// Reads an integer env knob; `fallback` when unset or unparsable.
int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoi(value);
}

/// Coordinator resilience policy from the environment (defaults tuned
/// for a real multi-node deployment; see docs/OPERATIONS.md).
void ApplyResilienceEnv(ClusterDispatcher::Options* options) {
  options->task_retry_ms = EnvInt("FEDSHAP_TASK_RETRY_MS",
                                  options->task_retry_ms);
  options->rpc_deadline_ms =
      EnvInt("FEDSHAP_RPC_DEADLINE_MS", options->rpc_deadline_ms);
  options->breaker_trip_threshold =
      EnvInt("FEDSHAP_BREAKER_THRESHOLD", options->breaker_trip_threshold);
  options->breaker_cooldown_ms =
      EnvInt("FEDSHAP_BREAKER_COOLDOWN_MS", options->breaker_cooldown_ms);
  options->degraded_grace_ms =
      EnvInt("FEDSHAP_DEGRADED_GRACE_MS", options->degraded_grace_ms);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--state-dir=", 0) == 0) {
      options.state_dir = arg.substr(12);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs_file = arg.substr(7);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.workers = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--cluster-workers=", 0) == 0) {
      options.cluster_workers = std::atoi(arg.c_str() + 18);
    } else if (arg.rfind("--cluster-mode=", 0) == 0) {
      const std::string mode = arg.substr(15);
      if (mode == "fork") {
        options.cluster_fork = true;
      } else if (mode != "thread") {
        std::fprintf(stderr,
                     "fedshapd: --cluster-mode must be thread or fork\n");
        std::exit(1);
      }
    } else if (arg.rfind("--listen=", 0) == 0) {
      options.listen = arg.substr(9);
    } else if (arg.rfind("--connect=", 0) == 0) {
      options.connect = arg.substr(10);
    } else if (arg.rfind("--cancel=", 0) == 0) {
      options.cancel_name = arg.substr(9);
    } else if (arg.rfind("--purge=", 0) == 0) {
      options.purge_name = arg.substr(8);
    } else if (arg.rfind("--kill-after=", 0) == 0) {
      options.kill_after = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg == "--status") {
      options.status_only = true;
    } else if (arg == "--print-values") {
      options.print_values = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else {
      std::fprintf(stderr, "fedshapd: unknown flag %s\n", arg.c_str());
      std::exit(1);
    }
  }
  if (options.workers < 1) options.workers = 1;
  return options;
}

/// One status line per job: the table --status prints, and the shape the
/// progress monitor reuses.
void PrintJobLine(const JobStatus& status) {
  std::printf("[job %s] %s estimator=%s scenario=%s n=%d %zu/%zu units",
              status.name.c_str(), JobStateName(status.state),
              EstimatorKindName(status.spec.estimator),
              status.spec.scenario.kind.c_str(), status.spec.scenario.n,
              status.completed_units, status.total_units);
  if (status.state == JobState::kDone) {
    const ValuationResult& r = status.result;
    std::printf(" trainings=%zu fresh=%zu shared=%zu charged=%.3fs",
                r.num_trainings, r.num_fresh_trainings,
                r.num_trainings - r.num_fresh_trainings, r.charged_seconds);
  } else if (status.state == JobState::kFailed) {
    std::printf(" error=%s", status.error.c_str());
  }
  std::printf("\n");
}

/// Segment-store counters aggregated over every attached workload store
/// (zero when no workload of this process opened its store).
void PrintStoreLine(const ServiceStats& stats) {
  std::printf("[fedshapd] store entries=%zu segments=%zu bytes=%llu "
              "mapped=%llu evictions=%zu compactions=%zu\n",
              stats.store_entries, stats.store_segments,
              static_cast<unsigned long long>(stats.store_bytes),
              static_cast<unsigned long long>(stats.store_mapped_bytes),
              stats.store_evictions, stats.store_compactions);
}

void PrintValues(const JobStatus& status) {
  std::printf("values %s", status.name.c_str());
  for (double value : status.result.values) std::printf(" %.17g", value);
  std::printf("\n");
}

int RunService(const CliOptions& options,
               const std::vector<JobSpec>& new_jobs) {
  const bool acting = !options.status_only && options.cancel_name.empty() &&
                      options.purge_name.empty();
  // The cluster starts before the service: in fork mode the workers must
  // be forked while this process has no service threads yet.
  std::unique_ptr<LocalCluster> cluster;
  std::unique_ptr<ClusterDispatcher> listen_dispatcher;
  ClusterDispatcher* dispatcher = nullptr;
  if (options.cluster_workers > 0 && acting) {
    LocalClusterOptions cluster_options;
    cluster_options.num_workers = options.cluster_workers;
    cluster_options.fork_workers = options.cluster_fork;
    if (!options.state_dir.empty()) {
      cluster_options.store_dir = options.state_dir + "/cluster";
    }
    // Recover a result frame lost to a dying worker within a couple of
    // seconds; the worker-side cache makes the re-run a hit.
    cluster_options.dispatcher.task_retry_ms = 2000;
    ApplyResilienceEnv(&cluster_options.dispatcher);
    Result<std::unique_ptr<LocalCluster>> started =
        LocalCluster::Start(cluster_options);
    if (!started.ok()) {
      std::fprintf(stderr, "fedshapd: cluster start: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    cluster = std::move(started).value();
    dispatcher = cluster->dispatcher();
  } else if (!options.listen.empty() && acting) {
    // Pure multi-node coordinator: no local workers, only registered
    // TCP ones. Until the first registers, coalitions train locally
    // (degraded mode) after the grace window — jobs always make
    // progress, with bit-identical values either way.
    ClusterDispatcher::Options dispatcher_options;
    dispatcher_options.task_retry_ms = 2000;
    dispatcher_options.rpc_deadline_ms = 30000;
    dispatcher_options.degraded_grace_ms = 5000;
    ApplyResilienceEnv(&dispatcher_options);
    listen_dispatcher =
        std::make_unique<ClusterDispatcher>(dispatcher_options);
    dispatcher = listen_dispatcher.get();
  }
  if (!options.listen.empty() && dispatcher != nullptr && acting) {
    Result<TcpEndpoint> endpoint = TcpEndpoint::Parse(options.listen);
    if (!endpoint.ok()) {
      std::fprintf(stderr, "fedshapd: --listen: %s\n",
                   endpoint.status().ToString().c_str());
      return 1;
    }
    Result<int> port = dispatcher->ListenAndServe(*endpoint);
    if (!port.ok()) {
      std::fprintf(stderr, "fedshapd: listen %s: %s\n",
                   options.listen.c_str(),
                   port.status().ToString().c_str());
      return 1;
    }
    std::printf("[fedshapd] listening for workers on %s:%d\n",
                endpoint->host.c_str(), *port);
  }

  ServiceConfig config;
  config.workers = options.workers;
  config.state_dir = options.state_dir;
  config.max_slices = options.kill_after;
  config.paused = true;
  config.cluster = dispatcher;
  ValuationService service(config);

  Status recovered = service.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "fedshapd: recover: %s\n",
                 recovered.ToString().c_str());
    // Recovery errors are per-job; keep serving what did load.
  }
  const size_t recovered_jobs = service.ListJobs().size();
  for (const JobSpec& spec : new_jobs) {
    Status submitted = service.Submit(spec);
    if (!submitted.ok()) {
      // Rerunning the same command after a crash recovers the jobs and
      // then re-submits the same job file: a name collision with an
      // *identical* spec is that benign resume, not an error.
      if (submitted.code() == StatusCode::kAlreadyExists) {
        Result<JobStatus> existing = service.GetStatus(spec.name);
        if (existing.ok() && existing->spec.ToLine() == spec.ToLine()) {
          std::printf("[fedshapd] job %s already present (resuming)\n",
                      spec.name.c_str());
          continue;
        }
        std::fprintf(stderr,
                     "fedshapd: submit %s: name is taken by a different "
                     "job spec (purge it first)\n",
                     spec.name.c_str());
        return 1;
      }
      std::fprintf(stderr, "fedshapd: submit %s: %s\n", spec.name.c_str(),
                   submitted.ToString().c_str());
      return 1;
    }
  }
  std::printf("[fedshapd] state-dir=%s workers=%d recovered=%zu "
              "submitted=%zu\n",
              options.state_dir.empty() ? "(memory)"
                                        : options.state_dir.c_str(),
              options.workers, recovered_jobs, new_jobs.size());

  if (options.status_only) {
    // Provenance first: perf numbers in the job table are attributable
    // to this backend + worker budget (see ml/kernel_backend.h).
    std::printf("[fedshapd] %s\n", KernelProvenanceString().c_str());
    for (const JobStatus& status : service.ListJobs()) {
      PrintJobLine(status);
    }
    PrintStoreLine(service.stats());
    service.Stop();
    return 0;
  }

  if (!options.cancel_name.empty() || !options.purge_name.empty()) {
    Status acted = !options.cancel_name.empty()
                       ? service.Cancel(options.cancel_name)
                       : service.Purge(options.purge_name);
    if (!acted.ok()) {
      std::fprintf(stderr, "fedshapd: %s\n", acted.ToString().c_str());
      service.Stop();
      return 1;
    }
    std::printf("[fedshapd] %s %s\n",
                !options.cancel_name.empty() ? "cancelled" : "purged",
                (!options.cancel_name.empty() ? options.cancel_name
                                              : options.purge_name)
                    .c_str());
    service.Stop();
    return 0;
  }

  service.Resume();

  // Progress monitor: poll the job table, print a line whenever a job's
  // progress or terminal state changes, stop when nothing can change
  // anymore (all terminal, or the service halted via --kill-after).
  std::map<std::string, std::pair<bool, size_t>> printed;  // terminal, units
  bool all_terminal = false;
  for (;;) {
    all_terminal = true;
    for (const JobStatus& status : service.ListJobs()) {
      const bool terminal = status.state == JobState::kDone ||
                            status.state == JobState::kFailed ||
                            status.state == JobState::kCancelled;
      if (!terminal) all_terminal = false;
      auto mark = std::make_pair(terminal, status.completed_units);
      auto it = printed.find(status.name);
      if (it != printed.end() && it->second == mark) continue;
      printed[status.name] = mark;
      if (!options.quiet || terminal) PrintJobLine(status);
    }
    if (all_terminal || service.halted()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  service.Stop();

  // Final sweep: the halt may have landed between polls.
  size_t failed = 0;
  for (const JobStatus& status : service.ListJobs()) {
    if (status.state == JobState::kFailed) ++failed;
    if (status.state == JobState::kDone && options.print_values) {
      PrintValues(status);
    }
  }

  const ServiceStats stats = service.stats();
  std::printf("[fedshapd] done=%zu failed=%zu cancelled=%zu slices=%zu "
              "workloads=%zu trainings=%zu preloaded=%zu\n",
              stats.jobs_done, stats.jobs_failed, stats.jobs_cancelled,
              stats.slices_executed, stats.workloads,
              stats.trainings_computed, stats.trainings_preloaded);
  PrintStoreLine(stats);
  if (dispatcher != nullptr) {
    const ClusterStats cluster_stats = dispatcher->stats();
    std::printf("[fedshapd] cluster workers=%d live=%zu dispatched=%zu "
                "reassigned=%zu duplicates=%zu retried=%zu lost=%zu "
                "worker-trainings=%zu\n",
                options.cluster_workers, dispatcher->live_workers(),
                cluster_stats.tasks_dispatched,
                cluster_stats.reassigned_coalitions,
                cluster_stats.duplicate_results_ignored,
                cluster_stats.retried_tasks, cluster_stats.workers_lost,
                cluster_stats.worker_fresh_trainings);
    std::printf("[fedshapd] resilience reconnects=%zu recovery=%.3fs "
                "deadline-expiries=%zu breaker-trips=%zu probes=%zu "
                "degraded=%zu\n",
                cluster_stats.worker_reconnects,
                cluster_stats.recovery_seconds_total,
                cluster_stats.deadline_expirations,
                cluster_stats.breaker_trips, cluster_stats.breaker_probes,
                cluster_stats.degraded_evaluations);
    if (cluster != nullptr) {
      cluster->Shutdown();
    } else {
      dispatcher->Shutdown();
    }
  }

  if (!all_terminal) {
    std::printf("[fedshapd] halted with jobs in flight; rerun with the "
                "same --state-dir to resume\n");
    return 17;
  }
  return failed > 0 ? 1 : 0;
}

/// Worker mode (--connect): one reconnecting TCP worker, no service.
int RunWorker(const CliOptions& options) {
  Result<TcpEndpoint> endpoint = TcpEndpoint::Parse(options.connect);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "fedshapd: --connect: %s\n",
                 endpoint.status().ToString().c_str());
    return 1;
  }
  TcpWorkerClientOptions client_options;
  client_options.endpoint = *endpoint;
  client_options.worker.shard = -1;  // the coordinator assigns our shard
  if (!options.state_dir.empty()) {
    client_options.worker.store_dir = options.state_dir + "/cluster";
  }
  client_options.backoff_base_ms =
      EnvInt("FEDSHAP_RECONNECT_BASE_MS", client_options.backoff_base_ms);
  client_options.backoff_cap_ms =
      EnvInt("FEDSHAP_RECONNECT_CAP_MS", client_options.backoff_cap_ms);
  client_options.backoff_seed = static_cast<uint64_t>(
      EnvInt("FEDSHAP_RECONNECT_SEED", static_cast<int>(::getpid())));
  std::printf("[fedshapd] worker dialing %s (backoff %d..%dms, seed %llu)\n",
              endpoint->ToString().c_str(), client_options.backoff_base_ms,
              client_options.backoff_cap_ms,
              static_cast<unsigned long long>(client_options.backoff_seed));
  TcpWorkerClient client(client_options);
  Status served = client.Run();
  if (!served.ok()) {
    std::fprintf(stderr, "fedshapd: worker: %s\n",
                 served.ToString().c_str());
    return 1;
  }
  std::printf("[fedshapd] worker done (reconnects=%zu)\n",
              client.reconnects());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = ParseArgs(argc, argv);
  if (!options.connect.empty()) {
    if (!options.listen.empty() || options.cluster_workers > 0) {
      std::fprintf(stderr,
                   "fedshapd: --connect is a pure worker mode; it cannot "
                   "combine with --listen or --cluster-workers\n");
      return 1;
    }
    return RunWorker(options);
  }

  std::vector<JobSpec> new_jobs;
  if (!options.jobs_file.empty()) {
    std::string contents;
    if (options.jobs_file == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      contents = buffer.str();
    } else {
      Result<std::string> read = ReadFileToString(options.jobs_file);
      if (!read.ok()) {
        std::fprintf(stderr, "fedshapd: %s: %s\n",
                     options.jobs_file.c_str(),
                     read.status().ToString().c_str());
        return 1;
      }
      contents = std::move(read).value();
    }
    Result<std::vector<JobSpec>> parsed = ParseJobFile(contents);
    if (!parsed.ok()) {
      std::fprintf(stderr, "fedshapd: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    new_jobs = std::move(parsed).value();
  }

  return RunService(options, new_jobs);
}
