#!/usr/bin/env python3
"""Perf gate over the archived BENCH_*.json artifacts.

Compares the bench records of the current run against the previous run's
artifact and fails when a tracked metric regressed by more than the
threshold (default 25%). Metrics are matched record-by-record: a record's
identity is (bench name, record name, every string label), so e.g. the
"axpy" case of backend "avx2" only ever compares against itself.

Metric direction is inferred from its name:

  - lower-is-better:  *seconds* (wall/charged/lookup timings),
    *trainings_to_target* (budget an estimator needs to reach a target
    error — the adaptive-allocation headline), *variance* (across-run
    estimator variance at a fixed seeded budget), *reconnects* and
    *degraded* (a seeded fault schedule yields a deterministic recovery
    path — more reconnects or degraded coalitions means resilience got
    clumsier), *overhead* (the TCP-vs-socketpair wall ratio)
  - higher-is-better: *speedup*, *dedup*, *per_second*, *throughput*,
    *hit_ahead* (fraction of prefetch-credited trainings a job actually
    consumed — dropping it means the prefetcher speculates uselessly)
  - everything else (counts, bytes, errors) is informational: never gated,
    because trainings counts and byte sizes legitimately change with the
    workload, and correctness counts are gated by the benches themselves.

A missing baseline — first run ever, renamed bench, new record or new
metric — is tolerated silently: the gate only compares what both runs
measured, so adding benches never breaks CI. Timings below --min-seconds
(default 10ms) are skipped as noise-dominated; the skip applies only to
*seconds* metrics — seeded counts and variances are deterministic, so
small values of those still gate.

Usage:
  check_bench_regression.py --baseline DIR --current DIR [options]
  check_bench_regression.py --self-test

Baseline/current may be directories (every BENCH_*.json inside is paired
by filename) or single JSON files. Exit 0 = no gated regression, 1 =
regression over threshold, 2 = usage error.
"""

import argparse
import glob
import json
import os
import sys
import tempfile

LOWER_IS_BETTER = ("seconds", "trainings_to_target", "variance",
                   "reassigned", "reconnects", "degraded", "overhead")
HIGHER_IS_BETTER = ("speedup", "dedup", "per_second", "throughput",
                    "hit_ahead")


def direction_of(metric: str):
    """'lower' / 'higher' for gated metrics, None for informational."""
    name = metric.lower()
    # Rates like jobs_per_second contain "second" but are higher-better,
    # so the higher-is-better patterns take precedence.
    if any(pattern in name for pattern in HIGHER_IS_BETTER):
        return "higher"
    if any(pattern in name for pattern in LOWER_IS_BETTER):
        return "lower"
    return None


def record_key(bench: str, record: dict) -> tuple:
    """Identity of a record: bench, name, and all string labels, sorted."""
    labels = sorted(
        (k, v) for k, v in record.items() if isinstance(v, str)
    )
    return (bench, tuple(labels))


def load_records(path: str) -> dict:
    """{record_key: {metric: value}} for one BENCH_*.json file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    bench = doc.get("bench", os.path.basename(path))
    out = {}
    for record in doc.get("records", []):
        metrics = {
            k: float(v)
            for k, v in record.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        # Duplicate keys (repeated identical cases) keep the last record,
        # matching how a reader of the JSON would resolve them.
        out[record_key(bench, record)] = metrics
    return out


def compare(baseline: dict, current: dict, threshold: float,
            min_seconds: float) -> list:
    """Returns a list of regression strings; empty means the gate passes."""
    regressions = []
    for key, base_metrics in baseline.items():
        cur_metrics = current.get(key)
        if cur_metrics is None:
            continue  # record removed or renamed: not a perf regression
        for metric, base in base_metrics.items():
            direction = direction_of(metric)
            if direction is None or metric not in cur_metrics:
                continue
            cur = cur_metrics[metric]
            if direction == "lower":
                if "seconds" in metric.lower() and \
                        max(base, cur) < min_seconds:
                    continue  # noise-dominated micro-timing
                if base > 0 and cur > base * (1.0 + threshold):
                    regressions.append(
                        "%s %s: %.6g -> %.6g (+%.0f%%, limit +%.0f%%)"
                        % (_key_str(key), metric, base, cur,
                           100.0 * (cur / base - 1.0), 100.0 * threshold))
            else:
                if base > 0 and cur < base * (1.0 - threshold):
                    regressions.append(
                        "%s %s: %.6g -> %.6g (-%.0f%%, limit -%.0f%%)"
                        % (_key_str(key), metric, base, cur,
                           100.0 * (1.0 - cur / base), 100.0 * threshold))
    return regressions


def _key_str(key: tuple) -> str:
    bench, labels = key
    return bench + "[" + ", ".join("%s=%s" % kv for kv in labels) + "]"


def pair_files(baseline: str, current: str) -> list:
    """[(baseline_file, current_file)] pairs, matched by filename."""
    if os.path.isfile(current):
        return [(baseline, current)] if os.path.isfile(baseline) else []
    pairs = []
    for cur in sorted(glob.glob(os.path.join(current, "BENCH_*.json"))):
        base = os.path.join(baseline, os.path.basename(cur))
        if os.path.isfile(base):
            pairs.append((base, cur))
    return pairs


def run_gate(args) -> int:
    if not os.path.exists(args.baseline):
        print("perf gate: no baseline at %s — first run, passing"
              % args.baseline)
        return 0
    pairs = pair_files(args.baseline, args.current)
    if not pairs:
        print("perf gate: no comparable BENCH_*.json pairs — passing")
        return 0
    regressions = []
    compared = 0
    for base_file, cur_file in pairs:
        baseline = load_records(base_file)
        current = load_records(cur_file)
        compared += len(set(baseline) & set(current))
        regressions += compare(baseline, current, args.threshold,
                               args.min_seconds)
    print("perf gate: %d record(s) compared across %d file pair(s)"
          % (compared, len(pairs)))
    for line in regressions:
        print("REGRESSION %s" % line)
    if regressions:
        print("perf gate: FAILED (%d metric(s) over the %.0f%% threshold)"
              % (len(regressions), 100.0 * args.threshold))
        return 1
    print("perf gate: ok")
    return 0


def self_test() -> int:
    """Exercises the gate end-to-end on synthesized artifacts."""
    failures = []

    def check(name, condition):
        print("%s %s" % ("ok  " if condition else "FAIL", name))
        if not condition:
            failures.append(name)

    def write(directory, filename, records, bench="t"):
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"bench": bench, "records": records}, f)
        return path

    check("seconds is lower-better", direction_of("wall_seconds") == "lower")
    check("speedup is higher-better", direction_of("speedup") == "higher")
    check("jobs_per_second is higher-better",
          direction_of("jobs_per_second") == "higher")
    check("counts are informational", direction_of("trainings") is None)
    check("bytes are informational",
          direction_of("budget_mapped_bytes") is None)
    check("trainings_to_target_error is lower-better",
          direction_of("trainings_to_target_error") == "lower")
    check("wall_prefetch_seconds is lower-better",
          direction_of("wall_prefetch_seconds") == "lower")
    check("prefetch_speedup is higher-better",
          direction_of("prefetch_speedup") == "higher")
    check("hit_ahead_ratio is higher-better",
          direction_of("hit_ahead_ratio") == "higher")
    check("trainings_run_ahead is informational",
          direction_of("trainings_run_ahead") is None)
    check("total_variance is lower-better",
          direction_of("total_variance") == "lower")
    check("cluster_speedup is higher-better",
          direction_of("cluster_speedup") == "higher")
    check("reassigned_coalitions is lower-better",
          direction_of("reassigned_coalitions") == "lower")
    check("workers_lost is informational",
          direction_of("workers_lost") is None)
    check("errors are informational", direction_of("best_rel_l2") is None)

    args = argparse.Namespace(threshold=0.25, min_seconds=0.01)
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "base")
        cur_dir = os.path.join(tmp, "cur")
        os.makedirs(base_dir)
        os.makedirs(cur_dir)

        rec = {"name": "case", "backend": "avx2", "wall_seconds": 1.0,
               "speedup": 4.0, "trainings": 100,
               "trainings_to_target_error": 120.0}
        write(base_dir, "BENCH_a.json", [rec])

        ok = dict(rec, wall_seconds=1.2, trainings=900)
        write(cur_dir, "BENCH_a.json", [ok])
        args.baseline, args.current = base_dir, cur_dir
        check("20% slower passes at 25% threshold", run_gate(args) == 0)

        write(cur_dir, "BENCH_a.json", [dict(rec, wall_seconds=1.3)])
        check("30% slower fails", run_gate(args) == 1)

        write(cur_dir, "BENCH_a.json", [dict(rec, speedup=2.0)])
        check("halved speedup fails", run_gate(args) == 1)

        write(cur_dir, "BENCH_a.json",
              [dict(rec, name="other", wall_seconds=99.0)])
        check("renamed record tolerated", run_gate(args) == 0)

        write(cur_dir, "BENCH_a.json",
              [dict(rec, backend="avx512", wall_seconds=99.0)])
        check("different label is a different record", run_gate(args) == 0)

        write(cur_dir, "BENCH_a.json",
              [dict(rec, trainings_to_target_error=200.0)])
        check("grown trainings-to-target fails", run_gate(args) == 1)

        write(cur_dir, "BENCH_a.json",
              [dict(rec, trainings_to_target_error=90.0)])
        check("shrunk trainings-to-target passes", run_gate(args) == 0)

        tiny = {"name": "t", "wall_seconds": 0.0001}
        write(base_dir, "BENCH_a.json", [tiny])
        write(cur_dir, "BENCH_a.json", [dict(tiny, wall_seconds=0.0009)])
        check("sub-threshold timings are noise-skipped", run_gate(args) == 0)

        # The noise skip must not swallow small deterministic counts: a
        # variance regression below --min-seconds still gates.
        small = {"name": "v", "total_variance": 0.0001}
        write(base_dir, "BENCH_a.json", [small])
        write(cur_dir, "BENCH_a.json", [dict(small, total_variance=0.0009)])
        check("small variance regressions still gate", run_gate(args) == 1)

        # The cluster phase: a collapsed sharding speedup or a jump in
        # reassigned coalitions (the faulted run losing more work) gates;
        # matching counts pass.
        cluster = {"name": "cluster", "scenario": "linreg",
                   "cluster_speedup": 2.0, "reassigned_coalitions": 3.0,
                   "workers_lost": 1.0}
        write(base_dir, "BENCH_a.json", [cluster])
        write(cur_dir, "BENCH_a.json", [dict(cluster)])
        check("unchanged cluster metrics pass", run_gate(args) == 0)
        write(cur_dir, "BENCH_a.json", [dict(cluster, cluster_speedup=1.0)])
        check("halved cluster_speedup fails", run_gate(args) == 1)
        write(cur_dir, "BENCH_a.json",
              [dict(cluster, reassigned_coalitions=9.0)])
        check("grown reassigned_coalitions fails", run_gate(args) == 1)
        write(cur_dir, "BENCH_a.json", [dict(cluster, workers_lost=5.0)])
        check("workers_lost is not gated", run_gate(args) == 0)

        # The TCP resilience phase: a seeded fault schedule makes the
        # recovery path deterministic, so extra reconnects, extra
        # degraded coalitions, or a fatter transport overhead all gate.
        check("reconnects is lower-better",
              direction_of("reconnects") == "lower")
        check("degraded_coalitions is lower-better",
              direction_of("degraded_coalitions") == "lower")
        check("tcp_overhead_ratio is lower-better",
              direction_of("tcp_overhead_ratio") == "lower")
        check("partition_recovery_seconds is lower-better",
              direction_of("partition_recovery_seconds") == "lower")
        tcp = {"name": "tcp", "scenario": "linreg",
               "tcp_overhead_ratio": 1.2, "reconnects": 1.0,
               "partition_recovery_seconds": 0.05,
               "degraded_coalitions": 120.0}
        write(base_dir, "BENCH_a.json", [tcp])
        write(cur_dir, "BENCH_a.json", [dict(tcp)])
        check("unchanged tcp metrics pass", run_gate(args) == 0)
        write(cur_dir, "BENCH_a.json", [dict(tcp, reconnects=3.0)])
        check("grown reconnects fails", run_gate(args) == 1)
        write(cur_dir, "BENCH_a.json", [dict(tcp, degraded_coalitions=200.0)])
        check("grown degraded_coalitions fails", run_gate(args) == 1)
        write(cur_dir, "BENCH_a.json", [dict(tcp, tcp_overhead_ratio=2.0)])
        check("fatter tcp overhead fails", run_gate(args) == 1)

        args.baseline = os.path.join(tmp, "missing")
        check("missing baseline dir passes", run_gate(args) == 0)

        args.baseline = base_dir
        empty = os.path.join(tmp, "empty")
        os.makedirs(empty)
        args.current = empty
        check("no comparable pairs passes", run_gate(args) == 0)

    if failures:
        print("self-test: %d failure(s)" % len(failures))
        return 1
    print("self-test: all checks passed")
    return 0


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="previous run's artifact dir/file")
    parser.add_argument("--current", help="this run's artifact dir/file")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative regression (default 0.25)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="ignore timings where both sides are below "
                             "this (default 0.01)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in test suite and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.print_usage(sys.stderr)
        return 2
    return run_gate(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
