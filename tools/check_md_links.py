#!/usr/bin/env python3
"""Offline markdown link checker for the fedshap doc suite.

Validates every local link in the given markdown files (or the repo's
default doc set) so the documentation cannot silently rot:

  - relative links must point at an existing file or directory;
  - intra-document anchors (#section) must match a heading in the target;
  - bare file mentions in link text are ignored — only [text](target)
    and <target> autolinks are checked.

External links (http/https/mailto) are intentionally NOT fetched: CI must
stay deterministic and offline. They are pattern-checked for obvious
breakage (whitespace, empty target) only.

Usage: check_md_links.py [file.md ...]   (default: README.md docs/*.md)
Exit code 0 when every link resolves, 1 otherwise.
"""

import glob
import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)]+)\)")
IMAGE_RE = re.compile(r"\!\[(?P<text>[^\]]*)\]\((?P<target>[^)]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def anchor_of(title: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, strip punctuation."""
    title = re.sub(r"[`*_]", "", title.strip().lower())
    title = re.sub(r"[^\w\- ]", "", title)
    return title.replace(" ", "-")


def headings_in(path: str) -> set:
    with open(path, encoding="utf-8") as f:
        text = CODE_FENCE_RE.sub("", f.read())
    return {anchor_of(m.group("title")) for m in HEADING_RE.finditer(text)}


def check_file(path: str) -> list:
    errors = []
    with open(path, encoding="utf-8") as f:
        raw = f.read()
    # Links inside code fences are sample syntax, not real links.
    text = CODE_FENCE_RE.sub("", raw)
    base = os.path.dirname(path) or "."

    for match in list(LINK_RE.finditer(text)) + list(IMAGE_RE.finditer(text)):
        target = match.group("target").strip()
        if " " in target and not target.startswith("<"):
            target = target.split(" ")[0]  # [text](url "title")
        if not target:
            errors.append(f"{path}: empty link target ({match.group(0)})")
            continue
        if re.match(r"^(https?|mailto):", target):
            continue  # External: not fetched (offline CI).
        if target.startswith("#"):
            if anchor_of(target[1:]) not in headings_in(path):
                errors.append(f"{path}: broken anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link {target} -> {resolved}")
            continue
        if anchor and os.path.isfile(resolved):
            if anchor_of(anchor) not in headings_in(resolved):
                errors.append(f"{path}: broken anchor {target}")
    return errors


def main(argv: list) -> int:
    files = argv[1:]
    if not files:
        files = ["README.md"] + sorted(glob.glob("docs/*.md"))
    missing = [f for f in files if not os.path.isfile(f)]
    if missing:
        print(f"check_md_links: no such file: {', '.join(missing)}")
        return 1
    all_errors = []
    for path in files:
        all_errors.extend(check_file(path))
    for error in all_errors:
        print(error)
    checked = len(files)
    if all_errors:
        print(f"check_md_links: {len(all_errors)} broken link(s) "
              f"across {checked} file(s)")
        return 1
    print(f"check_md_links: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
