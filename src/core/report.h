#ifndef FEDSHAP_CORE_REPORT_H_
#define FEDSHAP_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/valuation_result.h"
#include "util/status.h"

namespace fedshap {

/// One algorithm's contribution to a valuation report.
struct ReportEntry {
  /// Display name of the algorithm.
  std::string name;
  /// The run's values and cost accounting.
  ValuationResult result;
  /// Exact entries anchor the error column ("-" instead of a number).
  bool exact = false;
};

/// Assembled comparison of several valuation runs against a ground truth.
/// This is the artifact a data consortium would archive per valuation
/// round: who computed what, at which cost, with what fidelity.
class ValuationReport {
 public:
  /// `exact_values` may be empty when no ground truth exists (error columns
  /// are then omitted).
  ValuationReport(std::string title, std::vector<double> exact_values)
      : title_(std::move(title)), exact_(std::move(exact_values)) {}

  /// Appends one algorithm's entry.
  void Add(ReportEntry entry) { entries_.push_back(std::move(entry)); }

  /// Number of entries added so far.
  size_t size() const { return entries_.size(); }
  /// The entries, in insertion order.
  const std::vector<ReportEntry>& entries() const { return entries_; }

  /// Human-readable rendering with aligned columns: per-client values,
  /// relative l2 error, rank correlation, trainings and charged time.
  std::string Render() const;

  /// Machine-readable CSV: one row per (algorithm, client) value plus one
  /// summary row per algorithm.
  Status WriteCsv(const std::string& path) const;

 private:
  std::string title_;
  std::vector<double> exact_;
  std::vector<ReportEntry> entries_;
};

}  // namespace fedshap

#endif  // FEDSHAP_CORE_REPORT_H_
