#include "core/valuation_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace fedshap {

double RelativeL2Error(const std::vector<double>& exact,
                       const std::vector<double>& approx) {
  FEDSHAP_CHECK(exact.size() == approx.size());
  double diff_sq = 0.0;
  double exact_sq = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    const double d = approx[i] - exact[i];
    diff_sq += d * d;
    exact_sq += exact[i] * exact[i];
  }
  if (exact_sq == 0.0) {
    return diff_sq == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::sqrt(diff_sq) / std::sqrt(exact_sq);
}

namespace {

/// Average ranks with ties sharing the mean of their rank range.
std::vector<double> AverageRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mean_rank = 0.5 * (i + j) + 1.0;  // 1-based
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  FEDSHAP_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  const std::vector<double> ra = AverageRanks(a);
  const std::vector<double> rb = AverageRanks(b);
  const double mean = (n + 1) / 2.0;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ra[i] - mean;
    const double db = rb[i] - mean;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double KendallTau(const std::vector<double>& a,
                  const std::vector<double>& b) {
  FEDSHAP_CHECK(a.size() == b.size());
  const size_t n = a.size();
  if (n < 2) return 1.0;
  long concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double product = da * db;
      if (product > 0) {
        ++concordant;
      } else if (product < 0) {
        ++discordant;
      }
      // Ties in either vector count as neither (tau-a convention).
    }
  }
  const double pairs = 0.5 * n * (n - 1);
  return (concordant - discordant) / pairs;
}

Result<FairnessProxyError> ComputeFairnessProxies(
    const std::vector<double>& values, const std::vector<int>& null_players,
    const std::vector<std::pair<int, int>>& duplicate_pairs) {
  const int n = static_cast<int>(values.size());
  double total_mass = 0.0;
  for (double v : values) total_mass += std::fabs(v);
  if (total_mass == 0.0) total_mass = 1.0;  // all-zero valuation: errors 0

  FairnessProxyError error;
  for (int j : null_players) {
    if (j < 0 || j >= n) {
      return Status::InvalidArgument("null player index out of range");
    }
    error.free_rider += std::fabs(values[j]);
  }
  for (const auto& [a, b] : duplicate_pairs) {
    if (a < 0 || a >= n || b < 0 || b >= n) {
      return Status::InvalidArgument("duplicate pair index out of range");
    }
    error.symmetry += std::fabs(values[a] - values[b]);
  }
  error.free_rider /= total_mass;
  error.symmetry /= total_mass;
  error.combined = error.free_rider + error.symmetry;
  return error;
}

double EfficiencyResidual(const std::vector<double>& values, double u_full,
                          double u_empty) {
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  return std::fabs(total - (u_full - u_empty));
}

}  // namespace fedshap
