#ifndef FEDSHAP_CORE_KGREEDY_H_
#define FEDSHAP_CORE_KGREEDY_H_

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Alg. 2 (K-Greedy): the probe the paper uses to expose the *key
/// combinations* phenomenon (Sec. IV-A, Fig. 4).
///
/// Evaluates U on every coalition of size <= K and estimates
///
///   phi_hat_i = (1/n) * sum_{k < K} avg_{|S| = k, S !ni i}
///               [ U(S u {i}) - U(S) ]
///
/// i.e. the exact per-stratum averages of the first K strata and nothing
/// beyond. K = n reproduces the exact MC-SV. Cost: sum_{j<=K} C(n, j)
/// utility evaluations.
Result<ValuationResult> KGreedyShapley(UtilitySession& session, int k_max);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_KGREEDY_H_
