#include "core/report.h"

#include <sstream>

#include "core/valuation_metrics.h"
#include "util/table.h"

namespace fedshap {

std::string ValuationReport::Render() const {
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  const bool have_exact = !exact_.empty();

  std::vector<std::string> header = {"algorithm", "trainings", "time"};
  if (have_exact) {
    header.push_back("error(l2)");
    header.push_back("rank corr");
  }
  ConsoleTable summary(header);
  for (const ReportEntry& entry : entries_) {
    std::vector<std::string> row = {
        entry.name, std::to_string(entry.result.num_trainings),
        FormatSeconds(entry.result.charged_seconds)};
    if (have_exact) {
      if (entry.exact) {
        row.push_back("-");
        row.push_back("-");
      } else {
        row.push_back(FormatDouble(
            RelativeL2Error(exact_, entry.result.values), 4));
        row.push_back(FormatDouble(
            SpearmanCorrelation(exact_, entry.result.values), 4));
      }
    }
    summary.AddRow(std::move(row));
  }
  summary.Print(os);

  // Per-client values, algorithms as columns.
  if (!entries_.empty()) {
    std::vector<std::string> value_header = {"client"};
    for (const ReportEntry& entry : entries_) {
      value_header.push_back(entry.name);
    }
    ConsoleTable values(value_header);
    const size_t n = entries_.front().result.values.size();
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> row = {std::to_string(i)};
      for (const ReportEntry& entry : entries_) {
        row.push_back(i < entry.result.values.size()
                          ? FormatDouble(entry.result.values[i], 4)
                          : "-");
      }
      values.AddRow(std::move(row));
    }
    values.Print(os);
  }
  return os.str();
}

Status ValuationReport::WriteCsv(const std::string& path) const {
  FEDSHAP_ASSIGN_OR_RETURN(
      CsvWriter writer,
      CsvWriter::Create(path, {"algorithm", "kind", "client", "value",
                               "trainings", "charged_seconds"}));
  for (const ReportEntry& entry : entries_) {
    for (size_t i = 0; i < entry.result.values.size(); ++i) {
      FEDSHAP_RETURN_NOT_OK(writer.WriteRow(
          {entry.name, "value", std::to_string(i),
           FormatDouble(entry.result.values[i], 8), "", ""}));
    }
    FEDSHAP_RETURN_NOT_OK(writer.WriteRow(
        {entry.name, "summary", "",
         "", std::to_string(entry.result.num_trainings),
         FormatDouble(entry.result.charged_seconds, 6)}));
  }
  return Status::OK();
}

}  // namespace fedshap
