#ifndef FEDSHAP_CORE_ALTERNATIVES_H_
#define FEDSHAP_CORE_ALTERNATIVES_H_

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Alternative data-valuation indices that the SV literature (and this
/// paper's related work: Data Banzhaf, leave-one-out ablations) compares
/// against. They trade the Shapley axioms for cheaper computation or
/// noise robustness, and serve as extension baselines in our benches.

/// Exact Banzhaf value: phi_i = 2^-(n-1) * sum_{S not ni i}
/// [U(S u i) - U(S)]. Unlike the SV it weights all coalition sizes
/// equally, so it does NOT satisfy efficiency. O(2^n); requires n <= 25.
Result<ValuationResult> ExactBanzhaf(UtilitySession& session);

/// Configuration of the Monte-Carlo Banzhaf estimator.
struct BanzhafConfig {
  /// Number of uniformly sampled coalitions.
  int samples = 64;
  /// Seed of the coalition sampling.
  uint64_t seed = 1;
};

/// Maximum-Sample-Reuse Banzhaf (Wang & Jia, "Data Banzhaf", AISTATS'23):
/// draws coalitions uniformly from 2^N and estimates
///   phi_i = avg{U(S) : i in S} - avg{U(S) : i not in S},
/// reusing every sample for every client. Clients whose membership class
/// received no samples get 0.
Result<ValuationResult> MonteCarloBanzhaf(UtilitySession& session,
                                          const BanzhafConfig& config);

/// Leave-one-out valuation: phi_i = U(N) - U(N \ {i}). The classic n+1
/// evaluation baseline; fails symmetric fairness for redundant clients
/// (two duplicates both get ~0), which makes it a useful foil for the
/// paper's fairness-proxy experiments.
Result<ValuationResult> LeaveOneOut(UtilitySession& session);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_ALTERNATIVES_H_
