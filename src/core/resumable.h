#ifndef FEDSHAP_CORE_RESUMABLE_H_
#define FEDSHAP_CORE_RESUMABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/ipss.h"
#include "core/stratified.h"
#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/coalition.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// Resumable valuation sweeps: estimators that expose their in-flight
/// state (evaluation cursor, recorded utilities, running sums, RNG
/// state) as a serializable snapshot, so a killed multi-hour run
/// restarts from where it stopped instead of from scratch.
///
/// Two resumption mechanisms compose here:
///
///  1. **The persistent UtilityStore** makes the expensive part — the FL
///     trainings — durable. Any restarted run re-requesting the same
///     coalition gets a disk hit.
///  2. **Snapshots** (this file) make the *estimator* durable: which
///     evaluations of the plan are done, the utilities/sums collected so
///     far, and the sampler's RNG state. A restored sweep continues the
///     exact evaluation sequence and produces bit-identical estimates to
///     an uninterrupted run.
///
/// Either works alone (snapshots alone resume correctly; the store alone
/// makes a re-run cheap), but together a relaunch costs seconds.

/// Frame tag of snapshot files/strings ("FSSN" little-endian). Exposed
/// for tools and the version-gating tests.
constexpr uint32_t kSweepSnapshotMagic = 0x4e535346u;
/// Current snapshot frame version. Version 2 added the adaptive
/// allocation state (AdaptiveStratifiedSweep); version 1 snapshots —
/// written before that state existed — still restore, because the
/// decoder accepts any version <= the current one and the version-1
/// payload layouts are unchanged.
constexpr uint32_t kSweepSnapshotVersion = 2;

/// Interface of a valuation estimator that can checkpoint mid-run.
///
/// Lifecycle: construct with the workload size and configuration, then
/// either `Restore` a previous snapshot or start fresh; call `Step`
/// until `done()`, snapshotting between steps; call `Finish` once to
/// obtain the estimate. `Run` is the convenience one-shot.
class ResumableEstimator {
 public:
  virtual ~ResumableEstimator() = default;

  /// Stable identifier baked into snapshots (e.g. "ipss"); a snapshot
  /// only restores into an estimator with the same name.
  virtual const char* AlgorithmName() const = 0;

  /// Total work units (utility evaluations or sampled permutations).
  virtual size_t total_units() const = 0;
  /// Work units completed so far.
  virtual size_t completed_units() const = 0;
  /// True once every unit has been processed.
  virtual bool done() const = 0;

  /// Advances by at most `max_units` work units (<= 0 means all
  /// remaining), evaluating utilities through `session` (batches fan out
  /// over the session's thread pool). Safe to call when already done
  /// (no-op).
  virtual Status Step(UtilitySession& session, int max_units) = 0;

  /// The coalitions the next `max_units` work units would evaluate,
  /// without advancing any state: what a speculative prefetcher may
  /// safely warm the utility cache with while the current slice runs.
  /// Samplers peek by *copying* their RNG, so the published sequence is
  /// exactly what Step will draw. Estimators whose upcoming draws depend
  /// on utilities not yet observed return only the prefix that is
  /// already determined — possibly nothing (the default): prefetching is
  /// an optimization, never an obligation. May contain duplicates of
  /// already-evaluated coalitions; the cache dedups them for free.
  virtual std::vector<Coalition> PeekNext(size_t max_units) const {
    (void)max_units;
    return {};
  }

  /// Computes the estimate. Requires done(). Cost accounting in the
  /// returned ValuationResult reflects `session`'s counters, i.e. the
  /// work of *this* process — a resumed run charges only what it
  /// actually evaluated (disk hits charge their recorded training cost
  /// through the session as usual).
  virtual Result<ValuationResult> Finish(UtilitySession& session) = 0;

  /// Serializes the complete in-flight state as a framed, checksummed
  /// byte string (see util/serialization.h).
  virtual Result<std::string> Snapshot() const = 0;

  /// Restores a snapshot produced by an estimator with the same
  /// algorithm, workload and configuration. Fails with
  /// FailedPrecondition on a configuration mismatch and InvalidArgument
  /// on corrupt input; the estimator is unchanged on failure.
  virtual Status Restore(std::string_view snapshot) = 0;

  /// Step-to-completion followed by Finish.
  Result<ValuationResult> Run(UtilitySession& session);
};

/// Writes `estimator`'s snapshot to `path` crash-safely (temp + rename).
Status SaveSnapshot(const ResumableEstimator& estimator,
                    const std::string& path);

/// Restores `estimator` from the snapshot file at `path`. NotFound when
/// the file does not exist (callers typically start fresh then).
Status LoadSnapshot(ResumableEstimator& estimator, const std::string& path);

/// Serializes a finished ValuationResult as a framed, checksummed byte
/// string — the durable form of a *completed* valuation (the valuation
/// service persists every finished job's result this way, so a restarted
/// service serves completed jobs without recomputing anything). Doubles
/// round-trip bit-for-bit.
std::string EncodeValuationResult(const ValuationResult& result);

/// Decodes a string produced by EncodeValuationResult. Fails with
/// InvalidArgument on corrupt or foreign input.
Result<ValuationResult> DecodeValuationResult(std::string_view encoded);

/// Base for sweeps whose evaluation plan — the exact coalition sequence
/// to evaluate — is a deterministic function of the configuration (the
/// sampling RNG is consumed entirely while planning). State is then just
/// a cursor into the plan plus the utilities recorded so far; snapshots
/// store both and validate a hash of the re-derived plan on restore, so
/// a snapshot can never silently resume against different draws.
class CoalitionPlanSweep : public ResumableEstimator {
 public:
  size_t total_units() const override { return plan_.size(); }
  size_t completed_units() const override { return cursor_; }
  bool done() const override {
    return init_status_.ok() && cursor_ == plan_.size();
  }
  Status Step(UtilitySession& session, int max_units) override;
  /// The next `max_units` plan entries past the cursor — plan sweeps
  /// know their whole future, so the peek is a plain slice.
  std::vector<Coalition> PeekNext(size_t max_units) const override;
  Result<ValuationResult> Finish(UtilitySession& session) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view snapshot) override;

 protected:
  /// Hash of everything that parameterizes the plan (n, budget, seed,
  /// scheme, ...); snapshots embed it and refuse to restore on mismatch.
  virtual uint64_t ConfigHash() const = 0;
  /// Turns plan_[.] / utilities_[.] into the final per-client estimate.
  /// `session` is only consulted for utilities outside the plan
  /// (PairPolicy::kEvaluateOnDemand).
  virtual Result<std::vector<double>> Estimate(
      UtilitySession& session) const = 0;

  /// Installs the derived evaluation plan. Subclass constructors call
  /// exactly one of SetPlan / FailInit.
  void SetPlan(std::vector<Coalition> plan);
  /// Records a configuration error; every later operation returns it.
  void FailInit(Status status);

  /// OK, or the constructor-time configuration error.
  Status init_status_;
  /// The coalition evaluation sequence, fixed at construction.
  std::vector<Coalition> plan_;
  /// utilities_[j] = U(plan_[j]) for j < cursor_.
  std::vector<double> utilities_;
  /// Number of plan entries already evaluated.
  size_t cursor_ = 0;

 private:
  uint64_t PlanHash() const;
  /// Wall time accumulated across Step/Finish calls in this process.
  double wall_accum_ = 0.0;
};

/// Resumable IPSS (Alg. 3): plan = the exhaustive <= k* strata followed
/// by the balanced (k*+1)-stratum sample. Finishes through the same
/// IpssEstimateFromUtilities as the one-shot IpssShapley, so a completed
/// sweep reproduces its values bit-for-bit.
class IpssSweep : public CoalitionPlanSweep {
 public:
  /// Plans an IPSS sweep over `n` clients with the given budget/seed.
  IpssSweep(int n, const IpssConfig& config);
  const char* AlgorithmName() const override { return "ipss"; }

 protected:
  uint64_t ConfigHash() const override;
  Result<std::vector<double>> Estimate(UtilitySession&) const override;

 private:
  int n_;
  IpssConfig config_;
  int k_star_ = -1;
  size_t exhaustive_count_ = 0;
};

/// Resumable unified stratified sampling (Alg. 1), MC or CC scheme. Plan
/// = the empty coalition plus the distinct per-stratum draws, in draw
/// order; finishes through StratifiedEstimateFromDraws.
class StratifiedSweep : public CoalitionPlanSweep {
 public:
  /// Plans a stratified sweep over `n` clients with the given config.
  StratifiedSweep(int n, const StratifiedConfig& config);
  const char* AlgorithmName() const override { return "stratified"; }

 protected:
  uint64_t ConfigHash() const override;
  Result<std::vector<double>> Estimate(UtilitySession& session) const override;

 private:
  int n_;
  StratifiedConfig config_;
};

/// Resumable exact Shapley sweep over all 2^n coalitions (the ground
/// truth of every experiment, and the longest sweep the benches run).
/// Plan = every subset in mask order; finishes through
/// McShapleyFromSubsetUtilities / CcShapleyFromSubsetUtilities per the
/// chosen scheme. Requires n <= 20 (the snapshot materializes all 2^n
/// recorded utilities).
class ExactSweep : public CoalitionPlanSweep {
 public:
  /// Plans the full 2^n sweep; `scheme` picks the final-estimate form.
  ExactSweep(int n, SvScheme scheme);
  const char* AlgorithmName() const override { return "exact"; }

 protected:
  uint64_t ConfigHash() const override;
  Result<std::vector<double>> Estimate(UtilitySession&) const override;

 private:
  int n_;
  SvScheme scheme_;
};

/// Configuration of the resumable permutation-MC estimator.
struct PermutationMcConfig {
  /// Permutations to sample in total.
  int permutations = 64;
  /// Seed of the permutation stream.
  uint64_t seed = 1;
};

/// Resumable Monte-Carlo permutation sampling ("Perm-Shapley" estimated
/// by sampling instead of full n! enumeration): each work unit draws one
/// permutation and accumulates every client's marginal contribution
/// along it. Unlike the plan sweeps, the sampler's RNG lives across
/// steps, so snapshots capture the *running sums, sample count and RNG
/// state* — the canonical incremental-estimator checkpoint. A restored
/// sweep continues the identical permutation stream.
class PermutationMcSweep : public ResumableEstimator {
 public:
  /// Prepares a sampler over `n` clients; no permutation is drawn yet.
  PermutationMcSweep(int n, const PermutationMcConfig& config);
  const char* AlgorithmName() const override { return "perm-mc"; }

  size_t total_units() const override;
  size_t completed_units() const override { return permutations_done_; }
  bool done() const override;
  Status Step(UtilitySession& session, int max_units) override;
  /// Replays the next `max_units` permutations on a *copy* of the live
  /// RNG and publishes the empty coalition plus every prefix — the exact
  /// evaluation order the next Step will request.
  std::vector<Coalition> PeekNext(size_t max_units) const override;
  Result<ValuationResult> Finish(UtilitySession& session) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view snapshot) override;

 private:
  uint64_t ConfigHash() const;

  Status init_status_;
  int n_;
  PermutationMcConfig config_;
  size_t permutations_done_ = 0;
  /// Sum of sampled marginal contributions per client.
  std::vector<double> sums_;
  Rng rng_;
  double wall_accum_ = 0.0;
};

/// Resumable adaptive-allocation stratified sampling: Alg. 1's sampler
/// with the per-stratum budget re-planned in flight (ROADMAP item 2).
///
/// The run proceeds in epochs. The first epoch is a pilot
/// (`pilot_rounds_per_stratum` per stratum); every later epoch (1)
/// optionally splits the sigma-pooling bucket dominating the error-bound
/// estimate (RefineDominantBucket), then (2) re-splits the next
/// `reallocate_every` rounds of the remaining budget over the strata by
/// NeymanStratumAllocation, fed by the running per-stratum moments of
/// all paired differences observed so far. One work unit = one sampling
/// round (a duplicate draw consumes its round without re-evaluating,
/// exactly like the fixed estimator).
///
/// Reallocation consumes observed utilities, so — unlike StratifiedSweep
/// — the draw sequence is not a pure function of the configuration and
/// cannot be re-planned on restore. Snapshots therefore carry the full
/// allocation state: the draws and their utilities, the per-stratum
/// moments, the bucket list, the current epoch plan + cursor and the
/// live RNG state. Two invariants make resumption bit-identical at any
/// checkpoint chunking and worker count: the RNG stream never depends on
/// utilities within an epoch (plans change only at epoch boundaries,
/// which fall at fixed round counts), and a pair contributes to the
/// moments iff it was drawn strictly earlier in the global draw order —
/// a batch-boundary-independent rule.
class AdaptiveStratifiedSweep : public ResumableEstimator {
 public:
  /// Prepares an adaptive sweep over `n` clients; nothing is drawn yet.
  AdaptiveStratifiedSweep(int n, const AdaptiveAllocationConfig& config);
  const char* AlgorithmName() const override {
    return "adaptive-stratified";
  }

  size_t total_units() const override;
  size_t completed_units() const override { return rounds_spent_; }
  bool done() const override;
  Status Step(UtilitySession& session, int max_units) override;
  /// Simulates the remaining rounds of the *current* epoch on a copy of
  /// the live RNG (the next epoch's plan depends on utilities not yet
  /// observed, so the peek stops at the epoch boundary — and returns
  /// nothing when no epoch is in flight).
  std::vector<Coalition> PeekNext(size_t max_units) const override;
  Result<ValuationResult> Finish(UtilitySession& session) override;
  Result<std::string> Snapshot() const override;
  Status Restore(std::string_view snapshot) override;

  /// Introspection for tests and benches: the running per-stratum
  /// moments (size n, stratum k at index k-1)...
  const std::vector<StratumMoments>& moments() const { return moments_; }
  /// ...the current sigma-pooling buckets...
  const std::vector<AllocationBucket>& buckets() const { return buckets_; }
  /// ...the current epoch's per-stratum plan (empty before the first
  /// step)...
  const std::vector<int>& epoch_plan() const { return epoch_plan_; }
  /// ...the cumulative rounds granted per stratum (size n)...
  const std::vector<int64_t>& rounds_per_size() const {
    return rounds_per_size_;
  }
  /// ...and how many Neyman reallocations have happened (pilot excluded).
  int reallocations() const { return reallocations_; }

 private:
  uint64_t ConfigHash() const;
  /// Installs the next epoch's plan: the pilot on the first call,
  /// refinement + Neyman reallocation afterwards.
  void BeginEpoch();
  /// Draws and evaluates `count` rounds of the current epoch.
  Status RunRounds(UtilitySession& session, size_t count);
  /// Folds newly evaluated draws into the per-stratum moments. Under
  /// PairPolicy::kEvaluateOnDemand missing pairs are evaluated through
  /// `session` (the same evaluations Finish performs; the cache makes
  /// them free there) so the moments see every difference the final
  /// estimate will average.
  Status FoldNewDraws(UtilitySession& session);

  Status init_status_;
  int n_ = 0;
  AdaptiveAllocationConfig config_;
  /// min(total_rounds, sum of stratum populations): the rounds the run
  /// can actually place.
  size_t effective_total_ = 0;
  Rng rng_;
  // Durable state (everything Snapshot carries).
  size_t rounds_spent_ = 0;
  std::vector<Coalition> draws_;     ///< Distinct draws, evaluation order.
  std::vector<double> utilities_;    ///< utilities_[j] = U(draws_[j]).
  std::vector<StratumMoments> moments_;  ///< Per stratum k=1..n.
  std::vector<AllocationBucket> buckets_;
  std::vector<int> epoch_plan_;      ///< Current epoch's m_k (size n).
  size_t epoch_cursor_ = 0;          ///< Rounds consumed of this epoch.
  std::vector<int64_t> rounds_per_size_;  ///< Cumulative granted rounds.
  int reallocations_ = 0;
  // Derived state, rebuilt on Restore.
  std::unordered_map<Coalition, size_t, CoalitionHash> index_of_;
  size_t moments_folded_ = 0;        ///< draws_ prefix already in moments_.
  double wall_accum_ = 0.0;
};

}  // namespace fedshap

#endif  // FEDSHAP_CORE_RESUMABLE_H_
