#include "core/alternatives.h"

#include <bit>

#include "util/combinatorics.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> ExactBanzhaf(UtilitySession& session) {
  const int n = session.num_clients();
  if (n < 1 || n > 25) {
    return Status::InvalidArgument("exact Banzhaf requires 1 <= n <= 25");
  }
  Stopwatch timer;
  const uint64_t total = 1ULL << n;
  std::vector<double> u(total, 0.0);
  for (uint64_t mask = 0; mask < total; ++mask) {
    Coalition c;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    FEDSHAP_ASSIGN_OR_RETURN(u[mask], session.Evaluate(c));
  }
  std::vector<double> values(n, 0.0);
  const double weight = 1.0 / static_cast<double>(total >> 1);
  for (int i = 0; i < n; ++i) {
    const uint64_t bit = 1ULL << i;
    for (uint64_t mask = 0; mask < total; ++mask) {
      if (mask & bit) continue;
      values[i] += (u[mask | bit] - u[mask]) * weight;
    }
  }
  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

Result<ValuationResult> MonteCarloBanzhaf(UtilitySession& session,
                                          const BanzhafConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.samples < 1) {
    return Status::InvalidArgument("samples must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  std::vector<double> with_sum(n, 0.0), without_sum(n, 0.0);
  std::vector<int> with_count(n, 0), without_count(n, 0);
  for (int t = 0; t < config.samples; ++t) {
    // Uniform coalition: each client joins with probability 1/2.
    Coalition s;
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.5)) s.Add(i);
    }
    FEDSHAP_ASSIGN_OR_RETURN(const double u, session.Evaluate(s));
    for (int i = 0; i < n; ++i) {
      if (s.Contains(i)) {
        with_sum[i] += u;
        ++with_count[i];
      } else {
        without_sum[i] += u;
        ++without_count[i];
      }
    }
  }
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    if (with_count[i] > 0 && without_count[i] > 0) {
      values[i] = with_sum[i] / with_count[i] -
                  without_sum[i] / without_count[i];
    }
  }
  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

Result<ValuationResult> LeaveOneOut(UtilitySession& session) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  Stopwatch timer;
  const Coalition full = Coalition::Full(n);
  FEDSHAP_ASSIGN_OR_RETURN(const double u_full, session.Evaluate(full));
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    FEDSHAP_ASSIGN_OR_RETURN(const double u_without,
                             session.Evaluate(full.Without(i)));
    values[i] = u_full - u_without;
  }
  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

}  // namespace fedshap
