#ifndef FEDSHAP_CORE_VALUATION_METRICS_H_
#define FEDSHAP_CORE_VALUATION_METRICS_H_

#include <utility>
#include <vector>

#include "util/status.h"

namespace fedshap {

/// The paper's approximation-error metric (Eq. 21): relative error in
/// l2 norm, ||approx - exact||_2 / ||exact||_2. Returns +inf when the exact
/// vector has zero norm but the approximation does not, 0 when both do.
double RelativeL2Error(const std::vector<double>& exact,
                       const std::vector<double>& approx);

/// Spearman rank correlation between two valuations (ties get averaged
/// ranks). 1.0 = identical ranking. Useful beyond the paper: payment
/// schemes mostly need the *ranking* of providers.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Kendall tau-a rank correlation: (concordant - discordant) pairs over
/// all pairs. More robust than Spearman to a single displaced client;
/// O(n^2), fine for cross-silo n.
double KendallTau(const std::vector<double>& a,
                  const std::vector<double>& b);

/// Fairness-property proxies used when the ground truth is intractable
/// (Fig. 9, 20..100 clients).
struct FairnessProxyError {
  /// Mass wrongly assigned to known null players (free riders):
  /// sum_{j in nulls} |phi_j| / sum_i |phi_i|.
  double free_rider = 0.0;
  /// Violation of symmetric fairness over known duplicate pairs:
  /// sum_{(a,b)} |phi_a - phi_b| / sum_i |phi_i|.
  double symmetry = 0.0;
  /// free_rider + symmetry (the scalar reported by the scalability bench).
  double combined = 0.0;
};

/// Computes the proxies given the planted structure: `null_players` are
/// clients whose dataset is empty; `duplicate_pairs` hold the same data.
Result<FairnessProxyError> ComputeFairnessProxies(
    const std::vector<double>& values, const std::vector<int>& null_players,
    const std::vector<std::pair<int, int>>& duplicate_pairs);

/// Efficiency-axiom residual: |sum_i phi_i - (u_full - u_empty)|.
double EfficiencyResidual(const std::vector<double>& values, double u_full,
                          double u_empty);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_VALUATION_METRICS_H_
