#ifndef FEDSHAP_CORE_VALUATION_RESULT_H_
#define FEDSHAP_CORE_VALUATION_RESULT_H_

#include <utility>
#include <vector>

#include "fl/utility_cache.h"

namespace fedshap {

/// Output of one valuation-algorithm run: the per-client data values plus
/// the cost accounting the benches report.
struct ValuationResult {
  /// phi_hat_i for every client i (size n).
  std::vector<double> values;
  /// Total U(.) queries issued by the algorithm.
  size_t num_evaluations = 0;
  /// Distinct coalitions evaluated (= FL trainings a standalone run would
  /// perform; the within-run memoization any sane implementation has).
  size_t num_trainings = 0;
  /// Of `num_trainings`, the coalitions this run actually trained itself
  /// (cache misses computed on this run's behalf). The remainder was
  /// reused — from earlier runs in the process, concurrent runs sharing
  /// the cache, or a persistent store. Equals `num_trainings` for an
  /// isolated cold run; the gap is the valuation service's cross-job
  /// dedup metric.
  size_t num_fresh_trainings = 0;
  /// Modeled cost: sum of the recorded train+evaluate seconds of every
  /// distinct coalition this run asked for, plus any directly measured
  /// algorithm-side work. This is the "Time" column of the paper-style
  /// tables (see EXPERIMENTS.md, Cost accounting).
  double charged_seconds = 0.0;
  /// Actual wall time of this run (mostly cache hits in repeated runs).
  double wall_seconds = 0.0;
};

/// Assembles a ValuationResult from an algorithm's values, its utility
/// session and the measured wall time.
inline ValuationResult FinishValuation(std::vector<double> values,
                                       const UtilitySession& session,
                                       double wall_seconds) {
  ValuationResult result;
  result.values = std::move(values);
  result.num_evaluations = session.num_evaluations();
  result.num_trainings = session.num_distinct();
  result.num_fresh_trainings = session.num_fresh_trainings();
  result.charged_seconds = session.charged_seconds();
  result.wall_seconds = wall_seconds;
  return result;
}

}  // namespace fedshap

#endif  // FEDSHAP_CORE_VALUATION_RESULT_H_
