#ifndef FEDSHAP_CORE_STRATIFIED_H_
#define FEDSHAP_CORE_STRATIFIED_H_

#include <functional>
#include <vector>

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Which equivalent Shapley expression the framework plugs in (Sec. II-B).
enum class SvScheme {
  kMarginal,       ///< MC-SV (Def. 3): pair S with S \ {i}.
  kComplementary,  ///< CC-SV (Def. 5): pair S with N \ S.
};

/// Stable display name of a scheme ("MC" / "CC").
const char* SvSchemeName(SvScheme scheme);

/// How Alg. 1 handles a sampled coalition whose paired combination (S\{i}
/// for MC, N\S for CC) was not itself drawn.
enum class PairPolicy {
  /// Strictly Alg. 1 line 11: the pair must have been sampled, otherwise
  /// the contribution is skipped (and a stratum with no pairs contributes
  /// zero). Total evaluations stay within gamma.
  kRequireSampled,
  /// Evaluate missing pairs on demand (extra evaluations are charged).
  /// This is the idealized estimator of the paper's Theorem 1/2 analysis,
  /// which writes the paired difference unconditionally — unbiased, at the
  /// cost of up to |S| extra evaluations per sampled coalition.
  kEvaluateOnDemand,
};

/// Configuration of Alg. 1 (unified stratified sampling framework).
struct StratifiedConfig {
  /// Which Shapley expression to estimate.
  SvScheme scheme = SvScheme::kMarginal;
  /// How unsampled pairs are handled.
  PairPolicy pair_policy = PairPolicy::kRequireSampled;
  /// Total sampling rounds gamma. Split across strata k = 1..n as evenly as
  /// possible (clipped to each stratum's population C(n, k)) unless
  /// `rounds_per_stratum` overrides the allocation.
  int total_rounds = 32;
  /// Optional explicit m_k for k = 1..n (size n). Overrides total_rounds.
  std::vector<int> rounds_per_stratum;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// Alg. 1: unified stratified-sampling approximation of the Shapley value,
/// hosting both the MC-SV and CC-SV computation schemes.
///
/// For each stratum k it draws m_k coalitions of size k i.i.d. uniformly,
/// keeps the distinct ones (the paper's S_k is a set), evaluates them, then
/// averages paired differences within each stratum: a sampled S
/// contributes U(S) - U(S\{i}) for each member i (MC) or U(S) - U(N\S)
/// (CC), subject to `pair_policy`. The empty coalition counts as always
/// sampled (its "model" is the initial one), mirroring the paper's worked
/// Example 2. Strata where a client collected no pairs contribute zero, as
/// in Alg. 1 line 17.
Result<ValuationResult> StratifiedSamplingShapley(
    UtilitySession& session, const StratifiedConfig& config);

/// The default allocation of `total_rounds` over strata 1..n used when
/// `rounds_per_stratum` is empty: round-robin, clipped at C(n, k).
/// Exposed for tests and for configuring paired MC/CC comparisons.
std::vector<int> DefaultStratumAllocation(int n, int total_rounds);

/// The pairing pass of Alg. 1 (lines 9-17) in isolation: averages paired
/// differences over already-drawn strata. `draws[k]` (k = 0..n) holds
/// the distinct sampled coalitions of size k, in draw order; `draws[0]`
/// must hold exactly the empty coalition. `utility` supplies U(.) — for
/// a live run it wraps UtilitySession::Evaluate, for a resumable sweep a
/// recorded-utilities lookup. Under PairPolicy::kEvaluateOnDemand the
/// pair of a sampled coalition may itself be unsampled, in which case it
/// is fetched through `utility` too. Shared by the one-shot
/// StratifiedSamplingShapley and the resumable StratifiedSweep so both
/// produce bit-identical estimates from the same draws.
Result<std::vector<double>> StratifiedEstimateFromDraws(
    int n, SvScheme scheme, PairPolicy pair_policy,
    const std::vector<std::vector<Coalition>>& draws,
    const std::function<Result<double>(const Coalition&)>& utility);

/// Configuration of the per-client stratified estimator.
struct PerClientStratifiedConfig {
  /// Which Shapley expression to estimate.
  SvScheme scheme = SvScheme::kMarginal;
  /// Samples drawn per (client, stratum) pair: the m_{i,k} of Alg. 1 with
  /// equal allocation. Every client gets every stratum — no coverage gaps.
  int samples_per_stratum = 2;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// Per-client stratified sampling: the reading of Alg. 1 in which each
/// client i draws m_{i,k} coalitions S (S !ni i, |S| = k) per stratum and
/// averages the paired differences — U(S u i) - U(S) for MC-SV,
/// U(S u i) - U(N \ (S u i)) for CC-SV. Unlike the shared-pool variant
/// above, every client's estimate covers every stratum by construction,
/// which is the regime of the Thm. 1 unbiasedness and Thm. 2 variance
/// analysis (and of the Fig. 10 experiment). Shared coalitions across
/// clients deduplicate through the utility cache.
Result<ValuationResult> PerClientStratifiedShapley(
    UtilitySession& session, const PerClientStratifiedConfig& config);

/// Allocation that exhausts the smallest strata first (stratum populations
/// C(n, k) sorted ascending), then round-robins the remaining budget over
/// the rest. With any non-trivial budget this covers the n singletons and
/// the grand coalition, anchoring every client's estimate with its largest
/// marginal term — the practical regime in which Thm. 2's MC-vs-CC
/// variance comparison applies (and the strategy used by the Fig. 10
/// bench). The framework leaves the strategy free; this is one sensible
/// instance.
std::vector<int> SmallestFirstAllocation(int n, int total_rounds);

/// Pilot-based Neyman allocation (an extension hook — Alg. 1 deliberately
/// imposes no constraint on the m_k): spends `pilot_per_stratum` sampled
/// marginal contributions per stratum to estimate each stratum's standard
/// deviation, then splits the remaining budget proportionally to the
/// estimated sigmas (classic Neyman allocation with equal stratum
/// weights). The pilot evaluations go through `session` and are charged
/// like any others. Returns m_1..m_n summing to at most `total_rounds`
/// (the pilot included).
Result<std::vector<int>> NeymanAllocation(UtilitySession& session,
                                          int total_rounds,
                                          int pilot_per_stratum,
                                          uint64_t seed);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_STRATIFIED_H_
