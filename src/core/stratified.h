#ifndef FEDSHAP_CORE_STRATIFIED_H_
#define FEDSHAP_CORE_STRATIFIED_H_

#include <functional>
#include <vector>

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Which equivalent Shapley expression the framework plugs in (Sec. II-B).
enum class SvScheme {
  kMarginal,       ///< MC-SV (Def. 3): pair S with S \ {i}.
  kComplementary,  ///< CC-SV (Def. 5): pair S with N \ S.
};

/// Stable display name of a scheme ("MC" / "CC").
const char* SvSchemeName(SvScheme scheme);

/// How Alg. 1 handles a sampled coalition whose paired combination (S\{i}
/// for MC, N\S for CC) was not itself drawn.
enum class PairPolicy {
  /// Strictly Alg. 1 line 11: the pair must have been sampled, otherwise
  /// the contribution is skipped (and a stratum with no pairs contributes
  /// zero). Total evaluations stay within gamma.
  kRequireSampled,
  /// Evaluate missing pairs on demand (extra evaluations are charged).
  /// This is the idealized estimator of the paper's Theorem 1/2 analysis,
  /// which writes the paired difference unconditionally — unbiased, at the
  /// cost of up to |S| extra evaluations per sampled coalition.
  kEvaluateOnDemand,
};

/// Configuration of Alg. 1 (unified stratified sampling framework).
struct StratifiedConfig {
  /// Which Shapley expression to estimate.
  SvScheme scheme = SvScheme::kMarginal;
  /// How unsampled pairs are handled.
  PairPolicy pair_policy = PairPolicy::kRequireSampled;
  /// Total sampling rounds gamma. Split across strata k = 1..n as evenly as
  /// possible (clipped to each stratum's population C(n, k)) unless
  /// `rounds_per_stratum` overrides the allocation.
  int total_rounds = 32;
  /// Optional explicit m_k for k = 1..n (size n). Overrides total_rounds.
  std::vector<int> rounds_per_stratum;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// Alg. 1: unified stratified-sampling approximation of the Shapley value,
/// hosting both the MC-SV and CC-SV computation schemes.
///
/// For each stratum k it draws m_k coalitions of size k i.i.d. uniformly,
/// keeps the distinct ones (the paper's S_k is a set), evaluates them, then
/// averages paired differences within each stratum: a sampled S
/// contributes U(S) - U(S\{i}) for each member i (MC) or U(S) - U(N\S)
/// (CC), subject to `pair_policy`. The empty coalition counts as always
/// sampled (its "model" is the initial one), mirroring the paper's worked
/// Example 2. Strata where a client collected no pairs contribute zero, as
/// in Alg. 1 line 17.
Result<ValuationResult> StratifiedSamplingShapley(
    UtilitySession& session, const StratifiedConfig& config);

/// The default allocation of `total_rounds` over strata 1..n used when
/// `rounds_per_stratum` is empty: round-robin, clipped at C(n, k).
/// Exposed for tests and for configuring paired MC/CC comparisons.
std::vector<int> DefaultStratumAllocation(int n, int total_rounds);

/// The pairing pass of Alg. 1 (lines 9-17) in isolation: averages paired
/// differences over already-drawn strata. `draws[k]` (k = 0..n) holds
/// the distinct sampled coalitions of size k, in draw order; `draws[0]`
/// must hold exactly the empty coalition. `utility` supplies U(.) — for
/// a live run it wraps UtilitySession::Evaluate, for a resumable sweep a
/// recorded-utilities lookup. Under PairPolicy::kEvaluateOnDemand the
/// pair of a sampled coalition may itself be unsampled, in which case it
/// is fetched through `utility` too. Shared by the one-shot
/// StratifiedSamplingShapley and the resumable StratifiedSweep so both
/// produce bit-identical estimates from the same draws.
Result<std::vector<double>> StratifiedEstimateFromDraws(
    int n, SvScheme scheme, PairPolicy pair_policy,
    const std::vector<std::vector<Coalition>>& draws,
    const std::function<Result<double>(const Coalition&)>& utility);

/// Configuration of the per-client stratified estimator.
struct PerClientStratifiedConfig {
  /// Which Shapley expression to estimate.
  SvScheme scheme = SvScheme::kMarginal;
  /// Samples drawn per (client, stratum) pair: the m_{i,k} of Alg. 1 with
  /// equal allocation. Every client gets every stratum — no coverage gaps.
  int samples_per_stratum = 2;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// Per-client stratified sampling: the reading of Alg. 1 in which each
/// client i draws m_{i,k} coalitions S (S !ni i, |S| = k) per stratum and
/// averages the paired differences — U(S u i) - U(S) for MC-SV,
/// U(S u i) - U(N \ (S u i)) for CC-SV. Unlike the shared-pool variant
/// above, every client's estimate covers every stratum by construction,
/// which is the regime of the Thm. 1 unbiasedness and Thm. 2 variance
/// analysis (and of the Fig. 10 experiment). Shared coalitions across
/// clients deduplicate through the utility cache.
Result<ValuationResult> PerClientStratifiedShapley(
    UtilitySession& session, const PerClientStratifiedConfig& config);

/// Allocation that exhausts the smallest strata first (stratum populations
/// C(n, k) sorted ascending), then round-robins the remaining budget over
/// the rest. With any non-trivial budget this covers the n singletons and
/// the grand coalition, anchoring every client's estimate with its largest
/// marginal term — the practical regime in which Thm. 2's MC-vs-CC
/// variance comparison applies (and the strategy used by the Fig. 10
/// bench). The framework leaves the strategy free; this is one sensible
/// instance.
std::vector<int> SmallestFirstAllocation(int n, int total_rounds);

/// Pilot-based Neyman allocation (an extension hook — Alg. 1 deliberately
/// imposes no constraint on the m_k): spends `pilot_per_stratum` sampled
/// marginal contributions per stratum to estimate each stratum's standard
/// deviation, then splits the remaining budget proportionally to the
/// estimated sigmas (classic Neyman allocation with equal stratum
/// weights). The pilot evaluations go through `session` and are charged
/// like any others. Returns m_1..m_n summing to at most `total_rounds`
/// (the pilot included).
Result<std::vector<int>> NeymanAllocation(UtilitySession& session,
                                          int total_rounds,
                                          int pilot_per_stratum,
                                          uint64_t seed);

// ---------------------------------------------------------------------------
// Adaptive allocation (ROADMAP item 2)

/// Running sum / sum-of-squares statistics of one stratum's paired
/// differences — the two-row statistics matrix of the classic stratified
/// estimator, kept streaming so reallocation can read the current
/// variance estimate at any point of the run.
struct StratumMoments {
  uint64_t count = 0;
  double sum = 0.0;
  double sum_squares = 0.0;

  /// Folds one observed paired difference into the running sums.
  void Add(double x) {
    ++count;
    sum += x;
    sum_squares += x * x;
  }
  /// Sample mean; 0 with no observations.
  double Mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double Variance() const {
    if (count < 2) return 0.0;
    const double c = static_cast<double>(count);
    const double centered = sum_squares - (sum * sum) / c;
    // Cancellation can push the numerator a hair below zero.
    return centered > 0.0 ? centered / (c - 1.0) : 0.0;
  }
  /// Square root of Variance().
  double StdDev() const;

  /// Merges another stratum's observations into this one (used when an
  /// allocation bucket pools several coalition sizes).
  void Merge(const StratumMoments& other) {
    count += other.count;
    sum += other.sum;
    sum_squares += other.sum_squares;
  }
};

/// Neyman allocation of `budget` rounds over strata k = 1..n from running
/// moment state: m_k proportional to N_k * s_k (N_k = C(n, k), s_k the
/// stratum's sample stddev — the weight Theorems 1/2 put on each stratum
/// in the error bound), clipped at each stratum's remaining population.
/// Strata with fewer than two observations borrow the observation-count
/// weighted average sigma of the measured ones, so unexplored strata keep
/// receiving budget. When no stratum carries variance information — or
/// every stratum's sigma is equal, making the weights uninformative — the
/// allocation degenerates to DefaultStratumAllocation (uniform
/// round-robin), so the adaptive mode never does worse than the fixed
/// default for lack of data.
///
/// `already_allocated` (empty or size n) holds rounds previously granted
/// per stratum; the clip becomes C(n, k) - already_allocated[k-1]. The
/// result sums to `budget` unless the remaining populations cannot absorb
/// it, and is a pure deterministic function of its arguments.
std::vector<int> NeymanStratumAllocation(
    int n, int budget, const std::vector<StratumMoments>& moments,
    const std::vector<int64_t>& already_allocated = {});

/// Coverage floor of the adaptive mode. Theorem 1's unbiasedness (and the
/// error bound the Neyman weights optimize) holds in the regime where
/// every (client, stratum) cell collects at least one paired difference —
/// a stratum starved of draws contributes zero for every client (Alg. 1
/// line 17), a bias no amount of sampling elsewhere repairs. Before the
/// Neyman split of an epoch's budget, each stratum is therefore topped up
/// toward a quota of ceil(per_client * n / k) cumulative rounds (a size-k
/// draw covers k of the n clients), clipped at the stratum's remaining
/// population. Returns the per-stratum top-up (size n, sums to at most
/// `budget`); `granted` (size n) holds the rounds already spent per
/// stratum. Budget too small for every quota is round-robined over the
/// deficits, smallest stratum first.
std::vector<int> CoverageFloorAllocation(int n, int budget,
                                         const std::vector<int64_t>& granted,
                                         double per_client);

/// One allocation stratum of the adaptive mode: the contiguous coalition
/// sizes [lo, hi] (1-based, inclusive) whose moments are pooled when
/// estimating sigma. Refinement splits buckets toward per-size
/// granularity as evidence accumulates.
struct AllocationBucket {
  int lo = 1;
  int hi = 1;
};

/// Splits 1..n into `count` contiguous buckets of near-equal width (the
/// coarse starting granularity of the adaptive mode). count is clamped
/// to [1, n].
std::vector<AllocationBucket> InitialAllocationBuckets(int n, int count);

/// Pools the per-size moments of sizes [lo, hi] (1-based, inclusive).
StratumMoments PoolStratumMoments(const std::vector<StratumMoments>& moments,
                                  int lo, int hi);

/// The error-bound contribution the reallocation loop prioritizes on:
/// (N_b * s_b)^2 / m_b, the bucket's term of the Theorem 1/2 variance
/// bound under the current allocation (m_b = observations so far,
/// floored at 1).
double BucketErrorBound(int n, const AllocationBucket& bucket,
                        const std::vector<StratumMoments>& moments);

/// Priority-driven refinement: if one bucket dominates the error-bound
/// estimate (its BucketErrorBound exceeds `dominance` times the total
/// over all buckets), spans more than one coalition size and carries at
/// least two observations, it is split at its population midpoint.
/// Returns true when a split happened; at most one bucket splits per
/// call. `moments` is the per-size moment state (size n).
bool RefineDominantBucket(int n, std::vector<AllocationBucket>& buckets,
                          const std::vector<StratumMoments>& moments,
                          double dominance);

/// Configuration of the adaptive-allocation stratified estimator.
struct AdaptiveAllocationConfig {
  /// Which Shapley expression to estimate.
  SvScheme scheme = SvScheme::kMarginal;
  /// How unsampled pairs are handled.
  PairPolicy pair_policy = PairPolicy::kRequireSampled;
  /// Total sampling rounds gamma across all epochs (pilot included).
  int total_rounds = 32;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
  /// Rounds per stratum of the first epoch (the pilot), clipped at
  /// C(n, k) and at the total budget.
  int pilot_rounds_per_stratum = 2;
  /// Budget reallocated per epoch after the pilot: every this many
  /// rounds the remaining budget is re-split by NeymanStratumAllocation
  /// over the refreshed moments.
  int reallocate_every = 16;
  /// Contiguous size buckets the sigma estimation starts from.
  int initial_buckets = 2;
  /// Dominance threshold handed to RefineDominantBucket each epoch.
  double refine_dominance = 0.5;
  /// Coverage quota factor of CoverageFloorAllocation: each epoch tops
  /// strata up toward ceil(coverage_per_client * n / k) cumulative rounds
  /// before Neyman splits the surplus. 0 disables the floor (pure Neyman).
  double coverage_per_client = 2.0;
};

/// Adaptive-allocation stratified sampling: Alg. 1's draw-and-pair
/// machinery with the per-stratum budget re-planned while the run is in
/// flight. A pilot epoch seeds per-stratum moments, then each epoch
/// reallocates the remaining budget by NeymanStratumAllocation (refining
/// the sigma-pooling buckets when one dominates the error bound) and
/// draws the granted rounds. Pairing and averaging go through the same
/// StratifiedEstimateFromDraws as the fixed estimator, over the union of
/// all epochs' draws. Implemented on the resumable AdaptiveStratifiedSweep
/// (core/resumable.h), so one-shot and resumed runs are bit-identical.
Result<ValuationResult> AdaptiveStratifiedShapley(
    UtilitySession& session, const AdaptiveAllocationConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_STRATIFIED_H_
