#include "core/exact.h"

#include <algorithm>
#include <cmath>

#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

namespace {

constexpr int kMaxExactClients = 25;

/// Builds the coalition whose members are the set bits of `mask`.
Coalition FromMask(uint64_t mask, int n) {
  Coalition c;
  for (int i = 0; i < n; ++i) {
    if ((mask >> i) & 1ULL) c.Add(i);
  }
  return c;
}

/// Evaluates U on every subset of {0..n-1}; index = bitmask. The sweep is
/// fed to the session in chunks so the thread pool sees thousands of
/// independent evaluations at a time while the Coalition scratch buffer
/// stays small (2^25 coalitions at once would be ~1 GiB).
Result<std::vector<double>> EvaluateAllSubsets(UtilitySession& session,
                                               int n) {
  const uint64_t total = 1ULL << n;
  constexpr uint64_t kChunk = 1ULL << 13;
  std::vector<double> utilities(total, 0.0);
  std::vector<Coalition> chunk;
  for (uint64_t begin = 0; begin < total; begin += kChunk) {
    const uint64_t end = std::min(total, begin + kChunk);
    chunk.clear();
    for (uint64_t mask = begin; mask < end; ++mask) {
      chunk.push_back(FromMask(mask, n));
    }
    FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values,
                             session.EvaluateBatch(chunk));
    std::copy(values.begin(), values.end(),
              utilities.begin() + static_cast<ptrdiff_t>(begin));
  }
  return utilities;
}

}  // namespace

Result<ValuationResult> ExactShapleyMc(UtilitySession& session) {
  const int n = session.num_clients();
  if (n < 1 || n > kMaxExactClients) {
    return Status::InvalidArgument("exact SV requires 1 <= n <= 25");
  }
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           EvaluateAllSubsets(session, n));
  return FinishValuation(McShapleyFromSubsetUtilities(n, u), session,
                         timer.ElapsedSeconds());
}

std::vector<double> McShapleyFromSubsetUtilities(
    int n, const std::vector<double>& u) {
  FEDSHAP_CHECK(u.size() == (uint64_t{1} << n));
  std::vector<double> values(n, 0.0);
  const uint64_t total = 1ULL << n;
  for (int i = 0; i < n; ++i) {
    const uint64_t bit = 1ULL << i;
    for (uint64_t mask = 0; mask < total; ++mask) {
      if (mask & bit) continue;  // mask = S, S must exclude i
      const int s = std::popcount(mask);
      const double weight = 1.0 / (n * BinomialDouble(n - 1, s));
      values[i] += (u[mask | bit] - u[mask]) * weight;
    }
  }
  return values;
}

Result<ValuationResult> ExactShapleyCc(UtilitySession& session) {
  const int n = session.num_clients();
  if (n < 1 || n > kMaxExactClients) {
    return Status::InvalidArgument("exact SV requires 1 <= n <= 25");
  }
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           EvaluateAllSubsets(session, n));
  return FinishValuation(CcShapleyFromSubsetUtilities(n, u), session,
                         timer.ElapsedSeconds());
}

std::vector<double> CcShapleyFromSubsetUtilities(
    int n, const std::vector<double>& u) {
  FEDSHAP_CHECK(u.size() == (uint64_t{1} << n));
  std::vector<double> values(n, 0.0);
  const uint64_t total = 1ULL << n;
  const uint64_t full = total - 1;
  for (int i = 0; i < n; ++i) {
    const uint64_t bit = 1ULL << i;
    for (uint64_t mask = 0; mask < total; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      const double weight = 1.0 / (n * BinomialDouble(n - 1, s));
      // Complementary contribution: U(S u {i}) - U(N \ (S u {i})).
      const uint64_t with_i = mask | bit;
      const uint64_t complement = full & ~with_i;
      values[i] += (u[with_i] - u[complement]) * weight;
    }
  }
  return values;
}

Result<ValuationResult> ExactShapleyPermutation(UtilitySession& session) {
  const int n = session.num_clients();
  if (n < 1 || n > 8) {
    return Status::InvalidArgument(
        "permutation-exact SV requires 1 <= n <= 8");
  }
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           EvaluateAllSubsets(session, n));
  std::vector<double> values(n, 0.0);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  size_t permutations = 0;
  do {
    uint64_t mask = 0;
    double prev = u[0];
    for (int pos = 0; pos < n; ++pos) {
      mask |= 1ULL << perm[pos];
      const double current = u[mask];
      values[perm[pos]] += current - prev;
      prev = current;
    }
    ++permutations;
  } while (std::next_permutation(perm.begin(), perm.end()));
  for (double& v : values) v /= static_cast<double>(permutations);
  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

double EstimatePermShapleySeconds(int n, double tau) {
  // n! permutations, each walking n prefixes; a real implementation
  // deduplicates prefixes per permutation but still trains O(n! * n)
  // models in the worst case. Match the paper's order-of-magnitude
  // extrapolation.
  return std::exp(LogFactorial(n)) * n * tau;
}

double EstimateMcShapleySeconds(int n, double tau) {
  return std::pow(2.0, n) * tau;
}

}  // namespace fedshap
