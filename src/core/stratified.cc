#include "core/stratified.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/resumable.h"
#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

const char* SvSchemeName(SvScheme scheme) {
  switch (scheme) {
    case SvScheme::kMarginal:
      return "MC-SV";
    case SvScheme::kComplementary:
      return "CC-SV";
  }
  return "unknown";
}

std::vector<int> DefaultStratumAllocation(int n, int total_rounds) {
  FEDSHAP_CHECK(n >= 1);
  FEDSHAP_CHECK(total_rounds >= 0);
  std::vector<int> allocation(n, 0);
  std::vector<uint64_t> capacity(n);
  for (int k = 1; k <= n; ++k) capacity[k - 1] = BinomialU64(n, k);
  int remaining = total_rounds;
  // Round-robin one sample at a time so small budgets still touch every
  // stratum (matching the framework's "each stratum gets m_k" spirit).
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (int k = 0; k < n && remaining > 0; ++k) {
      if (static_cast<uint64_t>(allocation[k]) < capacity[k]) {
        ++allocation[k];
        --remaining;
        progressed = true;
      }
    }
  }
  return allocation;
}

Result<ValuationResult> PerClientStratifiedShapley(
    UtilitySession& session, const PerClientStratifiedConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.samples_per_stratum < 1) {
    return Status::InvalidArgument("samples_per_stratum must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  // Draw every stratum sample up front (the rng stream is independent of
  // the utilities), recording the evaluation order a sequential run would
  // use: per draw, U(S u {i}) then its scheme pair. One batch then fans
  // the trainings over the session's thread pool with identical
  // accounting.
  std::vector<Coalition> order;
  for (int i = 0; i < n; ++i) {
    // Stratum k holds the coalitions S with |S| = k that exclude i.
    for (int k = 0; k <= n - 1; ++k) {
      const uint64_t population = BinomialU64(n - 1, k);
      const int m = static_cast<int>(std::min<uint64_t>(
          population, static_cast<uint64_t>(config.samples_per_stratum)));
      for (int draw = 0; draw < m; ++draw) {
        const Coalition s = RandomSubsetOfSizeExcluding(n, k, i, rng);
        order.push_back(s.With(i));
        switch (config.scheme) {
          case SvScheme::kMarginal:
            order.push_back(s);
            break;
          case SvScheme::kComplementary:
            order.push_back(s.With(i).ComplementIn(n));
            break;
        }
      }
    }
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u, session.EvaluateBatch(order));

  std::vector<double> values(n, 0.0);
  size_t cursor = 0;
  for (int i = 0; i < n; ++i) {
    double stratum_total = 0.0;
    for (int k = 0; k <= n - 1; ++k) {
      const uint64_t population = BinomialU64(n - 1, k);
      const int m = static_cast<int>(std::min<uint64_t>(
          population, static_cast<uint64_t>(config.samples_per_stratum)));
      double stratum_sum = 0.0;
      for (int draw = 0; draw < m; ++draw) {
        const double u_with = u[cursor++];
        const double u_pair = u[cursor++];
        stratum_sum += u_with - u_pair;
      }
      stratum_total += stratum_sum / m;
    }
    values[i] = stratum_total / n;
  }
  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

std::vector<int> SmallestFirstAllocation(int n, int total_rounds) {
  FEDSHAP_CHECK(n >= 1);
  FEDSHAP_CHECK(total_rounds >= 0);
  std::vector<uint64_t> capacity(n);
  for (int k = 1; k <= n; ++k) capacity[k - 1] = BinomialU64(n, k);
  // Stratum indices ordered by population, ties broken toward smaller k
  // (singletons before the grand coalition's size-(n-1) mirror).
  std::vector<int> order(n);
  for (int k = 0; k < n; ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (capacity[a] != capacity[b]) return capacity[a] < capacity[b];
    return a < b;
  });
  std::vector<int> allocation(n, 0);
  int remaining = total_rounds;
  // Pass 1: fully cover strata in ascending-population order. Sampling is
  // with replacement, so budget each stratum by the coupon-collector bound
  // N * (ln N + 5): a specific set is then missed with probability ~e^-5/N.
  for (int k : order) {
    if (remaining <= 0) break;
    const double population = static_cast<double>(capacity[k]);
    const double want_d = population * (std::log(population) + 5.0);
    const int want = static_cast<int>(std::min(want_d, 1e6));
    const int take = std::min(remaining, want);
    allocation[k] = take;
    remaining -= take;
  }
  // Pass 2: round-robin any leftover across all strata.
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (int k = 0; k < n && remaining > 0; ++k) {
      ++allocation[k];
      --remaining;
      progressed = true;
    }
  }
  return allocation;
}

Result<std::vector<int>> NeymanAllocation(UtilitySession& session,
                                          int total_rounds,
                                          int pilot_per_stratum,
                                          uint64_t seed) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (pilot_per_stratum < 2) {
    return Status::InvalidArgument("pilot needs >= 2 samples per stratum");
  }
  if (total_rounds < 2 * n * pilot_per_stratum) {
    return Status::InvalidArgument(
        "total_rounds too small for the requested pilot");
  }
  Rng rng(seed);

  // Pilot: estimate the stddev of marginal contributions per stratum from
  // a few sampled (S, S \ {i}) pairs, accumulated as StratumMoments —
  // the same statistics the adaptive estimator keeps running.
  std::vector<StratumMoments> pilot(n);
  std::vector<double> sigma(n, 0.0);
  int pilot_evaluations = 0;
  for (int k = 1; k <= n; ++k) {
    for (int p = 0; p < pilot_per_stratum; ++p) {
      Coalition s = RandomSubsetOfSize(n, k, rng);
      const std::vector<int> members = s.Members();
      const int i = members[rng.UniformInt(members.size())];
      FEDSHAP_ASSIGN_OR_RETURN(const double u_s, session.Evaluate(s));
      FEDSHAP_ASSIGN_OR_RETURN(const double u_without,
                               session.Evaluate(s.Without(i)));
      pilot[k - 1].Add(u_s - u_without);
      pilot_evaluations += 2;
    }
    sigma[k - 1] = pilot[k - 1].StdDev();
  }

  // Neyman split of the remaining budget: m_k ~ sigma_k (equal stratum
  // weights in the SV average). Degenerate pilots fall back to uniform.
  const int remaining = total_rounds - pilot_evaluations;
  double sigma_total = 0.0;
  for (double s : sigma) sigma_total += s;
  std::vector<int> allocation(n, 0);
  if (sigma_total <= 0.0) {
    return DefaultStratumAllocation(n, remaining);
  }
  int assigned = 0;
  for (int k = 0; k < n; ++k) {
    allocation[k] = static_cast<int>(remaining * sigma[k] / sigma_total);
    assigned += allocation[k];
  }
  // Distribute rounding leftovers to the highest-sigma strata.
  while (assigned < remaining) {
    int best = 0;
    for (int k = 1; k < n; ++k) {
      if (sigma[k] > sigma[best]) best = k;
    }
    ++allocation[best];
    ++assigned;
  }
  return allocation;
}

Result<ValuationResult> StratifiedSamplingShapley(
    UtilitySession& session, const StratifiedConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");

  std::vector<int> rounds = config.rounds_per_stratum;
  if (rounds.empty()) {
    rounds = DefaultStratumAllocation(n, config.total_rounds);
  }
  if (static_cast<int>(rounds.size()) != n) {
    return Status::InvalidArgument(
        "rounds_per_stratum must have n entries (m_1..m_n)");
  }

  Stopwatch timer;
  Rng rng(config.seed);

  // ---- Lines 1-8: sample and evaluate each stratum. ----
  // sampled[k] holds the distinct coalitions drawn for stratum k (k=1..n):
  // the paper's S_k is a set, so repeated i.i.d. draws collapse. Stratum 0
  // is the empty coalition, treated as always available. All draws are
  // made first (the rng stream does not depend on utilities), then
  // evaluated as one batch across the session's thread pool.
  std::vector<std::unordered_set<Coalition, CoalitionHash>> sampled(n + 1);
  std::vector<std::vector<Coalition>> draws(n + 1);  // distinct, in order
  sampled[0].insert(Coalition());
  draws[0].push_back(Coalition());
  std::vector<Coalition> to_evaluate;
  to_evaluate.push_back(Coalition());
  for (int k = 1; k <= n; ++k) {
    const int m_k = rounds[k - 1];
    for (int s = 0; s < m_k; ++s) {
      Coalition c = RandomSubsetOfSize(n, k, rng);
      if (!sampled[k].insert(c).second) continue;  // duplicate draw
      draws[k].push_back(c);
      to_evaluate.push_back(c);
    }
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> batch_u,
                           session.EvaluateBatch(to_evaluate));
  (void)batch_u;  // re-read as cache hits by the pairing pass below

  // ---- Lines 9-17: average paired differences within each stratum. ----
  FEDSHAP_ASSIGN_OR_RETURN(
      std::vector<double> values,
      StratifiedEstimateFromDraws(
          n, config.scheme, config.pair_policy, draws,
          [&session](const Coalition& c) { return session.Evaluate(c); }));

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

// ---------------------------------------------------------------------------
// Adaptive allocation

double StratumMoments::StdDev() const { return std::sqrt(Variance()); }

namespace {

/// Remaining population per stratum: C(n, k) clamped to int range, minus
/// what was already granted, floored at zero.
std::vector<int64_t> RemainingCapacity(
    int n, const std::vector<int64_t>& already_allocated) {
  std::vector<int64_t> cap(n);
  for (int k = 1; k <= n; ++k) {
    const uint64_t population = BinomialU64(n, k);
    int64_t c = population > static_cast<uint64_t>(
                                 std::numeric_limits<int>::max())
                    ? std::numeric_limits<int>::max()
                    : static_cast<int64_t>(population);
    if (!already_allocated.empty()) c -= already_allocated[k - 1];
    cap[k - 1] = std::max<int64_t>(c, 0);
  }
  return cap;
}

/// Uniform round-robin over strata with headroom — the shape of
/// DefaultStratumAllocation generalized to arbitrary per-stratum caps
/// (identical to it when the caps are the full C(n, k) populations).
std::vector<int> RoundRobinOverCaps(const std::vector<int64_t>& cap,
                                    int budget) {
  const int n = static_cast<int>(cap.size());
  std::vector<int> allocation(n, 0);
  int remaining = budget;
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (int k = 0; k < n && remaining > 0; ++k) {
      if (static_cast<int64_t>(allocation[k]) < cap[k]) {
        ++allocation[k];
        --remaining;
        progressed = true;
      }
    }
  }
  return allocation;
}

}  // namespace

std::vector<int> NeymanStratumAllocation(
    int n, int budget, const std::vector<StratumMoments>& moments,
    const std::vector<int64_t>& already_allocated) {
  FEDSHAP_CHECK(n >= 1);
  FEDSHAP_CHECK(budget >= 0);
  FEDSHAP_CHECK(static_cast<int>(moments.size()) == n);
  FEDSHAP_CHECK(already_allocated.empty() ||
                static_cast<int>(already_allocated.size()) == n);
  const std::vector<int64_t> cap = RemainingCapacity(n, already_allocated);

  // Sigma per stratum: measured where >= 2 observations exist; the rest
  // borrow the observation-weighted mean sigma so unexplored strata keep
  // receiving budget instead of starving on "no data".
  std::vector<double> sigma(n, 0.0);
  double sigma_weighted_sum = 0.0;
  uint64_t observations = 0;
  bool any_measured = false;
  for (int k = 0; k < n; ++k) {
    if (moments[k].count >= 2) {
      sigma[k] = moments[k].StdDev();
      sigma_weighted_sum += static_cast<double>(moments[k].count) * sigma[k];
      observations += moments[k].count;
      any_measured = true;
    }
  }
  const double borrowed =
      observations > 0 ? sigma_weighted_sum / static_cast<double>(observations)
                       : 0.0;
  double sigma_min = std::numeric_limits<double>::infinity();
  double sigma_max = 0.0;
  for (int k = 0; k < n; ++k) {
    if (moments[k].count < 2) sigma[k] = borrowed;
    sigma_min = std::min(sigma_min, sigma[k]);
    sigma_max = std::max(sigma_max, sigma[k]);
  }

  // Degenerate moment state — nothing measured, all-zero sigmas, or every
  // sigma equal (the weights then carry no information beyond the
  // populations the default already respects): fall back to the uniform
  // round-robin default so adaptive never loses to fixed for lack of
  // data.
  const bool informative = any_measured && sigma_max > 0.0 &&
                           (sigma_max - sigma_min) > 1e-12 * sigma_max;
  if (!informative) return RoundRobinOverCaps(cap, budget);

  // Neyman weights w_k = N_k * sigma_k (the stratum's term in the
  // Theorem 1/2 error bound). Apportion the budget proportionally with
  // largest-floor passes, respecting each stratum's remaining
  // population; capped strata drop out and their share redistributes.
  std::vector<double> weight(n, 0.0);
  for (int k = 0; k < n; ++k) {
    weight[k] = BinomialDouble(n, k + 1) * sigma[k];
  }
  std::vector<int64_t> alloc(n, 0);
  int64_t total_cap = 0;
  for (int64_t c : cap) total_cap += c;
  int remaining =
      static_cast<int>(std::min<int64_t>(budget, total_cap));
  while (remaining > 0) {
    double active_weight = 0.0;
    for (int k = 0; k < n; ++k) {
      if (alloc[k] < cap[k] && weight[k] > 0.0) active_weight += weight[k];
    }
    if (active_weight <= 0.0) break;  // only zero-weight headroom left
    int64_t given = 0;
    for (int k = 0; k < n; ++k) {
      if (alloc[k] >= cap[k] || weight[k] <= 0.0) continue;
      int64_t share = static_cast<int64_t>(
          std::floor(static_cast<double>(remaining) *
                     (weight[k] / active_weight)));
      share = std::min(share, cap[k] - alloc[k]);
      share = std::min(share, static_cast<int64_t>(remaining) - given);
      alloc[k] += share;
      given += share;
    }
    if (given == 0) {
      // Every proportional floor rounded to zero: hand one round to the
      // heaviest stratum with headroom (ties toward smaller k).
      int best = -1;
      for (int k = 0; k < n; ++k) {
        if (alloc[k] >= cap[k] || weight[k] <= 0.0) continue;
        if (best < 0 || weight[k] > weight[best]) best = k;
      }
      ++alloc[best];
      given = 1;
    }
    remaining -= static_cast<int>(given);
  }
  // Zero-sigma strata absorb whatever the weighted pass could not place.
  std::vector<int> result(n, 0);
  if (remaining > 0) {
    std::vector<int64_t> leftover_cap(n);
    for (int k = 0; k < n; ++k) leftover_cap[k] = cap[k] - alloc[k];
    const std::vector<int> extra = RoundRobinOverCaps(leftover_cap, remaining);
    for (int k = 0; k < n; ++k) alloc[k] += extra[k];
  }
  for (int k = 0; k < n; ++k) result[k] = static_cast<int>(alloc[k]);
  return result;
}

std::vector<int> CoverageFloorAllocation(int n, int budget,
                                         const std::vector<int64_t>& granted,
                                         double per_client) {
  FEDSHAP_CHECK(n >= 1);
  FEDSHAP_CHECK(static_cast<int>(granted.size()) == n);
  std::vector<int64_t> deficit(n, 0);
  if (budget > 0 && per_client > 0.0) {
    const std::vector<int64_t> cap = RemainingCapacity(n, granted);
    for (int k = 1; k <= n; ++k) {
      const int64_t quota = static_cast<int64_t>(
          std::ceil(per_client * static_cast<double>(n) / k));
      deficit[k - 1] = std::min(
          cap[k - 1], std::max<int64_t>(quota - granted[k - 1], 0));
    }
  }
  return RoundRobinOverCaps(deficit, std::max(budget, 0));
}

std::vector<AllocationBucket> InitialAllocationBuckets(int n, int count) {
  FEDSHAP_CHECK(n >= 1);
  count = std::max(1, std::min(count, n));
  std::vector<AllocationBucket> buckets;
  buckets.reserve(count);
  for (int b = 0; b < count; ++b) {
    AllocationBucket bucket;
    bucket.lo = 1 + (b * n) / count;
    bucket.hi = ((b + 1) * n) / count;
    buckets.push_back(bucket);
  }
  return buckets;
}

StratumMoments PoolStratumMoments(const std::vector<StratumMoments>& moments,
                                  int lo, int hi) {
  FEDSHAP_CHECK(lo >= 1 && hi >= lo &&
                hi <= static_cast<int>(moments.size()));
  StratumMoments pooled;
  for (int k = lo; k <= hi; ++k) pooled.Merge(moments[k - 1]);
  return pooled;
}

double BucketErrorBound(int n, const AllocationBucket& bucket,
                        const std::vector<StratumMoments>& moments) {
  const StratumMoments pooled = PoolStratumMoments(moments, bucket.lo,
                                                   bucket.hi);
  double population = 0.0;
  for (int k = bucket.lo; k <= bucket.hi; ++k) {
    population += BinomialDouble(n, k);
  }
  const double weighted = population * pooled.StdDev();
  const double samples =
      static_cast<double>(std::max<uint64_t>(pooled.count, 1));
  return weighted * weighted / samples;
}

bool RefineDominantBucket(int n, std::vector<AllocationBucket>& buckets,
                          const std::vector<StratumMoments>& moments,
                          double dominance) {
  if (buckets.empty()) return false;
  double total = 0.0;
  std::vector<double> bound(buckets.size(), 0.0);
  for (size_t b = 0; b < buckets.size(); ++b) {
    bound[b] = BucketErrorBound(n, buckets[b], moments);
    total += bound[b];
  }
  if (total <= 0.0) return false;
  size_t top = 0;
  for (size_t b = 1; b < buckets.size(); ++b) {
    if (bound[b] > bound[top]) top = b;
  }
  const AllocationBucket bucket = buckets[top];
  if (bound[top] <= dominance * total) return false;
  if (bucket.lo >= bucket.hi) return false;  // already a single size
  if (PoolStratumMoments(moments, bucket.lo, bucket.hi).count < 2) {
    return false;
  }
  // Split at the population midpoint so both halves carry comparable
  // sampling mass (a plain width midpoint would leave the binomial bulge
  // on one side).
  double population = 0.0;
  for (int k = bucket.lo; k <= bucket.hi; ++k) {
    population += BinomialDouble(n, k);
  }
  int mid = bucket.lo;
  double below = 0.0;
  for (int k = bucket.lo; k < bucket.hi; ++k) {
    below += BinomialDouble(n, k);
    if (below >= population / 2.0) {
      mid = k;
      break;
    }
    mid = k;
  }
  AllocationBucket left{bucket.lo, mid};
  AllocationBucket right{mid + 1, bucket.hi};
  buckets[top] = left;
  buckets.insert(buckets.begin() + static_cast<ptrdiff_t>(top) + 1, right);
  return true;
}

Result<ValuationResult> AdaptiveStratifiedShapley(
    UtilitySession& session, const AdaptiveAllocationConfig& config) {
  // Delegates to the resumable sweep so the one-shot path and a
  // checkpoint/restore path execute the identical draw/reallocate
  // sequence (the bit-identity the resumability tests assert).
  AdaptiveStratifiedSweep sweep(session.num_clients(), config);
  return sweep.Run(session);
}

Result<std::vector<double>> StratifiedEstimateFromDraws(
    int n, SvScheme scheme, PairPolicy pair_policy,
    const std::vector<std::vector<Coalition>>& draws,
    const std::function<Result<double>(const Coalition&)>& utility) {
  if (static_cast<int>(draws.size()) != n + 1) {
    return Status::InvalidArgument("draws must have n+1 strata (0..n)");
  }
  if (draws[0].size() != 1 || !draws[0][0].Empty()) {
    return Status::InvalidArgument(
        "draws[0] must hold exactly the empty coalition");
  }
  // Membership sets per stratum, for the pair-availability test.
  std::vector<std::unordered_set<Coalition, CoalitionHash>> sampled(n + 1);
  for (int k = 0; k <= n; ++k) {
    sampled[k].insert(draws[k].begin(), draws[k].end());
  }
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double stratum_sum_total = 0.0;
    for (int k = 1; k <= n; ++k) {
      double stratum_sum = 0.0;
      int stratum_count = 0;
      for (const Coalition& s : draws[k]) {
        if (!s.Contains(i)) continue;
        Coalition paired;
        bool pair_available = false;
        switch (scheme) {
          case SvScheme::kMarginal: {
            paired = s.Without(i);
            pair_available = sampled[k - 1].count(paired) > 0;
            break;
          }
          case SvScheme::kComplementary: {
            paired = s.ComplementIn(n);
            const int pk = paired.Count();
            pair_available = pk <= n && sampled[pk].count(paired) > 0;
            break;
          }
        }
        if (!pair_available && pair_policy == PairPolicy::kRequireSampled) {
          continue;
        }
        FEDSHAP_ASSIGN_OR_RETURN(double u_s, utility(s));
        FEDSHAP_ASSIGN_OR_RETURN(double u_pair, utility(paired));
        stratum_sum += u_s - u_pair;
        ++stratum_count;
      }
      if (stratum_count > 0) {
        stratum_sum_total += stratum_sum / stratum_count;
      }
    }
    values[i] = stratum_sum_total / n;
  }
  return values;
}

}  // namespace fedshap
