#include "core/stratified.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

const char* SvSchemeName(SvScheme scheme) {
  switch (scheme) {
    case SvScheme::kMarginal:
      return "MC-SV";
    case SvScheme::kComplementary:
      return "CC-SV";
  }
  return "unknown";
}

std::vector<int> DefaultStratumAllocation(int n, int total_rounds) {
  FEDSHAP_CHECK(n >= 1);
  FEDSHAP_CHECK(total_rounds >= 0);
  std::vector<int> allocation(n, 0);
  std::vector<uint64_t> capacity(n);
  for (int k = 1; k <= n; ++k) capacity[k - 1] = BinomialU64(n, k);
  int remaining = total_rounds;
  // Round-robin one sample at a time so small budgets still touch every
  // stratum (matching the framework's "each stratum gets m_k" spirit).
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (int k = 0; k < n && remaining > 0; ++k) {
      if (static_cast<uint64_t>(allocation[k]) < capacity[k]) {
        ++allocation[k];
        --remaining;
        progressed = true;
      }
    }
  }
  return allocation;
}

Result<ValuationResult> PerClientStratifiedShapley(
    UtilitySession& session, const PerClientStratifiedConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.samples_per_stratum < 1) {
    return Status::InvalidArgument("samples_per_stratum must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  // Draw every stratum sample up front (the rng stream is independent of
  // the utilities), recording the evaluation order a sequential run would
  // use: per draw, U(S u {i}) then its scheme pair. One batch then fans
  // the trainings over the session's thread pool with identical
  // accounting.
  std::vector<Coalition> order;
  for (int i = 0; i < n; ++i) {
    // Stratum k holds the coalitions S with |S| = k that exclude i.
    for (int k = 0; k <= n - 1; ++k) {
      const uint64_t population = BinomialU64(n - 1, k);
      const int m = static_cast<int>(std::min<uint64_t>(
          population, static_cast<uint64_t>(config.samples_per_stratum)));
      for (int draw = 0; draw < m; ++draw) {
        const Coalition s = RandomSubsetOfSizeExcluding(n, k, i, rng);
        order.push_back(s.With(i));
        switch (config.scheme) {
          case SvScheme::kMarginal:
            order.push_back(s);
            break;
          case SvScheme::kComplementary:
            order.push_back(s.With(i).ComplementIn(n));
            break;
        }
      }
    }
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u, session.EvaluateBatch(order));

  std::vector<double> values(n, 0.0);
  size_t cursor = 0;
  for (int i = 0; i < n; ++i) {
    double stratum_total = 0.0;
    for (int k = 0; k <= n - 1; ++k) {
      const uint64_t population = BinomialU64(n - 1, k);
      const int m = static_cast<int>(std::min<uint64_t>(
          population, static_cast<uint64_t>(config.samples_per_stratum)));
      double stratum_sum = 0.0;
      for (int draw = 0; draw < m; ++draw) {
        const double u_with = u[cursor++];
        const double u_pair = u[cursor++];
        stratum_sum += u_with - u_pair;
      }
      stratum_total += stratum_sum / m;
    }
    values[i] = stratum_total / n;
  }
  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

std::vector<int> SmallestFirstAllocation(int n, int total_rounds) {
  FEDSHAP_CHECK(n >= 1);
  FEDSHAP_CHECK(total_rounds >= 0);
  std::vector<uint64_t> capacity(n);
  for (int k = 1; k <= n; ++k) capacity[k - 1] = BinomialU64(n, k);
  // Stratum indices ordered by population, ties broken toward smaller k
  // (singletons before the grand coalition's size-(n-1) mirror).
  std::vector<int> order(n);
  for (int k = 0; k < n; ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (capacity[a] != capacity[b]) return capacity[a] < capacity[b];
    return a < b;
  });
  std::vector<int> allocation(n, 0);
  int remaining = total_rounds;
  // Pass 1: fully cover strata in ascending-population order. Sampling is
  // with replacement, so budget each stratum by the coupon-collector bound
  // N * (ln N + 5): a specific set is then missed with probability ~e^-5/N.
  for (int k : order) {
    if (remaining <= 0) break;
    const double population = static_cast<double>(capacity[k]);
    const double want_d = population * (std::log(population) + 5.0);
    const int want = static_cast<int>(std::min(want_d, 1e6));
    const int take = std::min(remaining, want);
    allocation[k] = take;
    remaining -= take;
  }
  // Pass 2: round-robin any leftover across all strata.
  bool progressed = true;
  while (remaining > 0 && progressed) {
    progressed = false;
    for (int k = 0; k < n && remaining > 0; ++k) {
      ++allocation[k];
      --remaining;
      progressed = true;
    }
  }
  return allocation;
}

Result<std::vector<int>> NeymanAllocation(UtilitySession& session,
                                          int total_rounds,
                                          int pilot_per_stratum,
                                          uint64_t seed) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (pilot_per_stratum < 2) {
    return Status::InvalidArgument("pilot needs >= 2 samples per stratum");
  }
  if (total_rounds < 2 * n * pilot_per_stratum) {
    return Status::InvalidArgument(
        "total_rounds too small for the requested pilot");
  }
  Rng rng(seed);

  // Pilot: estimate the stddev of marginal contributions per stratum from
  // a few sampled (S, S \ {i}) pairs.
  std::vector<double> sigma(n, 0.0);
  int pilot_evaluations = 0;
  for (int k = 1; k <= n; ++k) {
    std::vector<double> marginals;
    for (int p = 0; p < pilot_per_stratum; ++p) {
      Coalition s = RandomSubsetOfSize(n, k, rng);
      const std::vector<int> members = s.Members();
      const int i = members[rng.UniformInt(members.size())];
      FEDSHAP_ASSIGN_OR_RETURN(const double u_s, session.Evaluate(s));
      FEDSHAP_ASSIGN_OR_RETURN(const double u_without,
                               session.Evaluate(s.Without(i)));
      marginals.push_back(u_s - u_without);
      pilot_evaluations += 2;
    }
    double mean = 0.0;
    for (double m : marginals) mean += m;
    mean /= marginals.size();
    double var = 0.0;
    for (double m : marginals) var += (m - mean) * (m - mean);
    sigma[k - 1] = std::sqrt(var / (marginals.size() - 1));
  }

  // Neyman split of the remaining budget: m_k ~ sigma_k (equal stratum
  // weights in the SV average). Degenerate pilots fall back to uniform.
  const int remaining = total_rounds - pilot_evaluations;
  double sigma_total = 0.0;
  for (double s : sigma) sigma_total += s;
  std::vector<int> allocation(n, 0);
  if (sigma_total <= 0.0) {
    return DefaultStratumAllocation(n, remaining);
  }
  int assigned = 0;
  for (int k = 0; k < n; ++k) {
    allocation[k] = static_cast<int>(remaining * sigma[k] / sigma_total);
    assigned += allocation[k];
  }
  // Distribute rounding leftovers to the highest-sigma strata.
  while (assigned < remaining) {
    int best = 0;
    for (int k = 1; k < n; ++k) {
      if (sigma[k] > sigma[best]) best = k;
    }
    ++allocation[best];
    ++assigned;
  }
  return allocation;
}

Result<ValuationResult> StratifiedSamplingShapley(
    UtilitySession& session, const StratifiedConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");

  std::vector<int> rounds = config.rounds_per_stratum;
  if (rounds.empty()) {
    rounds = DefaultStratumAllocation(n, config.total_rounds);
  }
  if (static_cast<int>(rounds.size()) != n) {
    return Status::InvalidArgument(
        "rounds_per_stratum must have n entries (m_1..m_n)");
  }

  Stopwatch timer;
  Rng rng(config.seed);

  // ---- Lines 1-8: sample and evaluate each stratum. ----
  // sampled[k] holds the distinct coalitions drawn for stratum k (k=1..n):
  // the paper's S_k is a set, so repeated i.i.d. draws collapse. Stratum 0
  // is the empty coalition, treated as always available. All draws are
  // made first (the rng stream does not depend on utilities), then
  // evaluated as one batch across the session's thread pool.
  std::vector<std::unordered_set<Coalition, CoalitionHash>> sampled(n + 1);
  std::vector<std::vector<Coalition>> draws(n + 1);  // distinct, in order
  sampled[0].insert(Coalition());
  draws[0].push_back(Coalition());
  std::vector<Coalition> to_evaluate;
  to_evaluate.push_back(Coalition());
  for (int k = 1; k <= n; ++k) {
    const int m_k = rounds[k - 1];
    for (int s = 0; s < m_k; ++s) {
      Coalition c = RandomSubsetOfSize(n, k, rng);
      if (!sampled[k].insert(c).second) continue;  // duplicate draw
      draws[k].push_back(c);
      to_evaluate.push_back(c);
    }
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> batch_u,
                           session.EvaluateBatch(to_evaluate));
  (void)batch_u;  // re-read as cache hits by the pairing pass below

  // ---- Lines 9-17: average paired differences within each stratum. ----
  FEDSHAP_ASSIGN_OR_RETURN(
      std::vector<double> values,
      StratifiedEstimateFromDraws(
          n, config.scheme, config.pair_policy, draws,
          [&session](const Coalition& c) { return session.Evaluate(c); }));

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

Result<std::vector<double>> StratifiedEstimateFromDraws(
    int n, SvScheme scheme, PairPolicy pair_policy,
    const std::vector<std::vector<Coalition>>& draws,
    const std::function<Result<double>(const Coalition&)>& utility) {
  if (static_cast<int>(draws.size()) != n + 1) {
    return Status::InvalidArgument("draws must have n+1 strata (0..n)");
  }
  if (draws[0].size() != 1 || !draws[0][0].Empty()) {
    return Status::InvalidArgument(
        "draws[0] must hold exactly the empty coalition");
  }
  // Membership sets per stratum, for the pair-availability test.
  std::vector<std::unordered_set<Coalition, CoalitionHash>> sampled(n + 1);
  for (int k = 0; k <= n; ++k) {
    sampled[k].insert(draws[k].begin(), draws[k].end());
  }
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double stratum_sum_total = 0.0;
    for (int k = 1; k <= n; ++k) {
      double stratum_sum = 0.0;
      int stratum_count = 0;
      for (const Coalition& s : draws[k]) {
        if (!s.Contains(i)) continue;
        Coalition paired;
        bool pair_available = false;
        switch (scheme) {
          case SvScheme::kMarginal: {
            paired = s.Without(i);
            pair_available = sampled[k - 1].count(paired) > 0;
            break;
          }
          case SvScheme::kComplementary: {
            paired = s.ComplementIn(n);
            const int pk = paired.Count();
            pair_available = pk <= n && sampled[pk].count(paired) > 0;
            break;
          }
        }
        if (!pair_available && pair_policy == PairPolicy::kRequireSampled) {
          continue;
        }
        FEDSHAP_ASSIGN_OR_RETURN(double u_s, utility(s));
        FEDSHAP_ASSIGN_OR_RETURN(double u_pair, utility(paired));
        stratum_sum += u_s - u_pair;
        ++stratum_count;
      }
      if (stratum_count > 0) {
        stratum_sum_total += stratum_sum / stratum_count;
      }
    }
    values[i] = stratum_sum_total / n;
  }
  return values;
}

}  // namespace fedshap
