#include "core/resumable.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/exact.h"
#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/serialization.h"
#include "util/stopwatch.h"

namespace fedshap {

namespace {

/// Frame tag of snapshot files/strings ("FSSN" little-endian).
constexpr uint32_t kSnapshotMagic = 0x4e535346u;
constexpr uint32_t kSnapshotVersion = 1;

/// The common snapshot header: algorithm name + configuration hash.
void PutSnapshotHeader(ByteWriter& payload, const char* algorithm,
                       uint64_t config_hash) {
  payload.PutString(algorithm);
  payload.PutU64(config_hash);
}

/// Validates the frame and the common header against the restoring
/// estimator's identity; returns the remaining payload reader on match.
Result<ByteReader> CheckSnapshotHeader(std::string_view snapshot,
                                       const char* algorithm,
                                       uint64_t config_hash) {
  FEDSHAP_ASSIGN_OR_RETURN(
      std::string_view payload,
      DecodeFramed(kSnapshotMagic, kSnapshotVersion, snapshot));
  ByteReader reader(payload);
  FEDSHAP_ASSIGN_OR_RETURN(std::string name, reader.GetString());
  if (name != algorithm) {
    return Status::FailedPrecondition("snapshot was taken by '" + name +
                                      "', not '" + algorithm + "'");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t stored_hash, reader.GetU64());
  if (stored_hash != config_hash) {
    return Status::FailedPrecondition(
        "snapshot configuration does not match this sweep");
  }
  return reader;
}

}  // namespace

Result<ValuationResult> ResumableEstimator::Run(UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(Step(session, 0));
  return Finish(session);
}

Status SaveSnapshot(const ResumableEstimator& estimator,
                    const std::string& path) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string snapshot, estimator.Snapshot());
  return WriteFileAtomic(path, snapshot);
}

Status LoadSnapshot(ResumableEstimator& estimator, const std::string& path) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string snapshot, ReadFileToString(path));
  return estimator.Restore(snapshot);
}

namespace {
/// Frame tag of persisted ValuationResults ("FSVR" little-endian).
constexpr uint32_t kResultMagic = 0x52565346u;
constexpr uint32_t kResultVersion = 1;
}  // namespace

std::string EncodeValuationResult(const ValuationResult& result) {
  ByteWriter payload;
  payload.PutVarint(result.values.size());
  for (double value : result.values) payload.PutDouble(value);
  payload.PutVarint(result.num_evaluations);
  payload.PutVarint(result.num_trainings);
  payload.PutVarint(result.num_fresh_trainings);
  payload.PutDouble(result.charged_seconds);
  payload.PutDouble(result.wall_seconds);
  return EncodeFramed(kResultMagic, kResultVersion, payload.bytes());
}

Result<ValuationResult> DecodeValuationResult(std::string_view encoded) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string_view payload,
                           DecodeFramed(kResultMagic, kResultVersion,
                                        encoded));
  ByteReader reader(payload);
  ValuationResult result;
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  result.values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FEDSHAP_ASSIGN_OR_RETURN(double value, reader.GetDouble());
    result.values.push_back(value);
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t evaluations, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t trainings, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t fresh, reader.GetVarint());
  result.num_evaluations = evaluations;
  result.num_trainings = trainings;
  result.num_fresh_trainings = fresh;
  FEDSHAP_ASSIGN_OR_RETURN(result.charged_seconds, reader.GetDouble());
  FEDSHAP_ASSIGN_OR_RETURN(result.wall_seconds, reader.GetDouble());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after ValuationResult");
  }
  return result;
}

// ---------------------------------------------------------------------------
// CoalitionPlanSweep

void CoalitionPlanSweep::SetPlan(std::vector<Coalition> plan) {
  plan_ = std::move(plan);
  utilities_.reserve(plan_.size());
}

void CoalitionPlanSweep::FailInit(Status status) {
  FEDSHAP_CHECK(!status.ok());
  init_status_ = std::move(status);
}

uint64_t CoalitionPlanSweep::PlanHash() const {
  Hasher64 hasher;
  hasher.MixU64(plan_.size());
  for (const Coalition& c : plan_) hasher.MixU64(c.Hash());
  return hasher.digest();
}

Status CoalitionPlanSweep::Step(UtilitySession& session, int max_units) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (cursor_ >= plan_.size()) return Status::OK();
  Stopwatch timer;
  size_t todo = plan_.size() - cursor_;
  if (max_units > 0) todo = std::min(todo, static_cast<size_t>(max_units));
  const std::vector<Coalition> batch(
      plan_.begin() + static_cast<ptrdiff_t>(cursor_),
      plan_.begin() + static_cast<ptrdiff_t>(cursor_ + todo));
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values,
                           session.EvaluateBatch(batch));
  utilities_.insert(utilities_.end(), values.begin(), values.end());
  cursor_ += todo;
  wall_accum_ += timer.ElapsedSeconds();
  return Status::OK();
}

Result<ValuationResult> CoalitionPlanSweep::Finish(UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (cursor_ != plan_.size()) {
    return Status::FailedPrecondition(
        "sweep is not complete: " + std::to_string(cursor_) + "/" +
        std::to_string(plan_.size()) + " evaluations done");
  }
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values, Estimate(session));
  return FinishValuation(std::move(values), session,
                         wall_accum_ + timer.ElapsedSeconds());
}

Result<std::string> CoalitionPlanSweep::Snapshot() const {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  ByteWriter payload;
  PutSnapshotHeader(payload, AlgorithmName(), ConfigHash());
  payload.PutU64(PlanHash());
  payload.PutVarint(plan_.size());
  payload.PutVarint(cursor_);
  for (size_t j = 0; j < cursor_; ++j) payload.PutDouble(utilities_[j]);
  return EncodeFramed(kSnapshotMagic, kSnapshotVersion, payload.bytes());
}

Status CoalitionPlanSweep::Restore(std::string_view snapshot) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  FEDSHAP_ASSIGN_OR_RETURN(
      ByteReader reader,
      CheckSnapshotHeader(snapshot, AlgorithmName(), ConfigHash()));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t plan_hash, reader.GetU64());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t plan_size, reader.GetVarint());
  if (plan_hash != PlanHash() || plan_size != plan_.size()) {
    return Status::FailedPrecondition(
        "snapshot evaluation plan does not match this sweep");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t cursor, reader.GetVarint());
  if (cursor > plan_.size()) {
    return Status::InvalidArgument("snapshot cursor exceeds the plan");
  }
  std::vector<double> utilities;
  utilities.reserve(cursor);
  for (uint64_t j = 0; j < cursor; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(double value, reader.GetDouble());
    utilities.push_back(value);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  // All validated; commit. Wall accounting restarts: the resumed run
  // reports its own process's time, not the dead process's (nor time
  // spent on work a rollback just discarded).
  utilities_ = std::move(utilities);
  cursor_ = cursor;
  wall_accum_ = 0.0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IpssSweep

IpssSweep::IpssSweep(int n, const IpssConfig& config)
    : n_(n), config_(config) {
  if (n < 1) {
    FailInit(Status::InvalidArgument("need at least one client"));
    return;
  }
  if (config.total_rounds < 1) {
    FailInit(Status::InvalidArgument("total_rounds must be >= 1"));
    return;
  }
  // Mirrors IpssShapley exactly: exhaustive strata up to k*, then the
  // balanced sample of the (k*+1)-stratum drawn from Rng(seed).
  k_star_ = IpssKStar(n, config.total_rounds);
  FEDSHAP_CHECK(k_star_ >= 0);
  std::vector<Coalition> plan;
  for (int k = 0; k <= k_star_; ++k) {
    ForEachSubsetOfSize(n, k,
                        [&](const Coalition& c) { plan.push_back(c); });
  }
  exhaustive_count_ = plan.size();
  if (k_star_ + 1 <= n) {
    Rng rng(config.seed);
    const int remaining =
        config.total_rounds - static_cast<int>(exhaustive_count_);
    for (const Coalition& c :
         BalancedCoalitionSample(n, k_star_ + 1, remaining, rng)) {
      plan.push_back(c);
    }
  }
  SetPlan(std::move(plan));
}

uint64_t IpssSweep::ConfigHash() const {
  return Hasher64()
      .MixString("ipss")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.total_rounds))
      .MixU64(config_.seed)
      .digest();
}

Result<std::vector<double>> IpssSweep::Estimate(UtilitySession&) const {
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(plan_.size());
  for (size_t j = 0; j < plan_.size(); ++j) {
    utilities.emplace(plan_[j], utilities_[j]);
  }
  const std::vector<Coalition> pruned_sample(
      plan_.begin() + static_cast<ptrdiff_t>(exhaustive_count_),
      plan_.end());
  return IpssEstimateFromUtilities(n_, k_star_, utilities, pruned_sample);
}

// ---------------------------------------------------------------------------
// StratifiedSweep

StratifiedSweep::StratifiedSweep(int n, const StratifiedConfig& config)
    : n_(n), config_(config) {
  if (n < 1) {
    FailInit(Status::InvalidArgument("need at least one client"));
    return;
  }
  if (config.rounds_per_stratum.empty() && config.total_rounds < 0) {
    FailInit(Status::InvalidArgument("total_rounds must be >= 0"));
    return;
  }
  std::vector<int> rounds = config.rounds_per_stratum;
  if (rounds.empty()) {
    rounds = DefaultStratumAllocation(n, config.total_rounds);
  }
  if (static_cast<int>(rounds.size()) != n) {
    FailInit(Status::InvalidArgument(
        "rounds_per_stratum must have n entries (m_1..m_n)"));
    return;
  }
  // Mirrors StratifiedSamplingShapley's draw loop exactly: repeated
  // i.i.d. draws per stratum, duplicates collapsed, the empty coalition
  // always first.
  Rng rng(config.seed);
  std::vector<std::unordered_set<Coalition, CoalitionHash>> sampled(n + 1);
  std::vector<Coalition> plan;
  plan.push_back(Coalition());
  for (int k = 1; k <= n; ++k) {
    const int m_k = rounds[k - 1];
    for (int s = 0; s < m_k; ++s) {
      Coalition c = RandomSubsetOfSize(n, k, rng);
      if (!sampled[k].insert(c).second) continue;
      plan.push_back(c);
    }
  }
  SetPlan(std::move(plan));
}

uint64_t StratifiedSweep::ConfigHash() const {
  Hasher64 hasher;
  hasher.MixString("stratified")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.scheme))
      .MixU64(static_cast<uint64_t>(config_.pair_policy))
      .MixU64(static_cast<uint64_t>(config_.total_rounds))
      .MixU64(config_.seed);
  hasher.MixU64(config_.rounds_per_stratum.size());
  for (int m : config_.rounds_per_stratum) {
    hasher.MixU64(static_cast<uint64_t>(m));
  }
  return hasher.digest();
}

Result<std::vector<double>> StratifiedSweep::Estimate(
    UtilitySession& session) const {
  // Regroup the flat plan into per-stratum draw lists (plan order is
  // already grouped by ascending stratum).
  std::vector<std::vector<Coalition>> draws(n_ + 1);
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(plan_.size());
  for (size_t j = 0; j < plan_.size(); ++j) {
    draws[plan_[j].Count()].push_back(plan_[j]);
    utilities.emplace(plan_[j], utilities_[j]);
  }
  return StratifiedEstimateFromDraws(
      n_, config_.scheme, config_.pair_policy, draws,
      [&utilities, &session](const Coalition& c) -> Result<double> {
        auto it = utilities.find(c);
        if (it != utilities.end()) return it->second;
        // Only reachable under PairPolicy::kEvaluateOnDemand: the pair
        // of a sampled coalition was never itself drawn.
        return session.Evaluate(c);
      });
}

// ---------------------------------------------------------------------------
// ExactSweep

ExactSweep::ExactSweep(int n, SvScheme scheme) : n_(n), scheme_(scheme) {
  if (n < 1 || n > 20) {
    FailInit(Status::InvalidArgument(
        "resumable exact SV requires 1 <= n <= 20"));
    return;
  }
  const uint64_t total = uint64_t{1} << n;
  std::vector<Coalition> plan;
  plan.reserve(total);
  for (uint64_t mask = 0; mask < total; ++mask) {
    Coalition c;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    plan.push_back(c);
  }
  SetPlan(std::move(plan));
}

uint64_t ExactSweep::ConfigHash() const {
  return Hasher64()
      .MixString("exact")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(scheme_))
      .digest();
}

Result<std::vector<double>> ExactSweep::Estimate(UtilitySession&) const {
  // plan_ is in mask order, so utilities_ already is the subset-utility
  // table u[mask] the exact schemes consume.
  switch (scheme_) {
    case SvScheme::kMarginal:
      return McShapleyFromSubsetUtilities(n_, utilities_);
    case SvScheme::kComplementary:
      return CcShapleyFromSubsetUtilities(n_, utilities_);
  }
  return Status::Internal("unknown scheme");
}

// ---------------------------------------------------------------------------
// PermutationMcSweep

PermutationMcSweep::PermutationMcSweep(int n,
                                       const PermutationMcConfig& config)
    : n_(n), config_(config), sums_(std::max(n, 1), 0.0),
      rng_(config.seed) {
  if (n < 1) {
    init_status_ = Status::InvalidArgument("need at least one client");
    return;
  }
  if (config.permutations < 1) {
    init_status_ = Status::InvalidArgument("permutations must be >= 1");
  }
}

size_t PermutationMcSweep::total_units() const {
  return static_cast<size_t>(std::max(config_.permutations, 0));
}

bool PermutationMcSweep::done() const {
  return init_status_.ok() && permutations_done_ >= total_units();
}

Status PermutationMcSweep::Step(UtilitySession& session, int max_units) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (done()) return Status::OK();
  Stopwatch timer;
  size_t todo = total_units() - permutations_done_;
  if (max_units > 0) todo = std::min(todo, static_cast<size_t>(max_units));
  // Draw the chunk's permutations first — the RNG stream must not depend
  // on evaluation scheduling, or resumption would not be bit-identical.
  std::vector<std::vector<int>> perms;
  perms.reserve(todo);
  for (size_t p = 0; p < todo; ++p) perms.push_back(rng_.Permutation(n_));
  // One batch holding every prefix of every drawn permutation (plus the
  // empty coalition) fans out over the session's thread pool; distinct
  // prefixes deduplicate in the utility cache.
  std::vector<Coalition> order;
  order.reserve(1 + todo * static_cast<size_t>(n_));
  order.push_back(Coalition());
  for (const std::vector<int>& perm : perms) {
    Coalition prefix;
    for (int member : perm) {
      prefix.Add(member);
      order.push_back(prefix);
    }
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           session.EvaluateBatch(order));
  size_t cursor = 1;
  for (const std::vector<int>& perm : perms) {
    double previous = u[0];
    for (int member : perm) {
      const double current = u[cursor++];
      sums_[member] += current - previous;
      previous = current;
    }
  }
  permutations_done_ += todo;
  wall_accum_ += timer.ElapsedSeconds();
  return Status::OK();
}

Result<ValuationResult> PermutationMcSweep::Finish(UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (!done()) {
    return Status::FailedPrecondition(
        "sweep is not complete: " + std::to_string(permutations_done_) +
        "/" + std::to_string(total_units()) + " permutations done");
  }
  Stopwatch timer;
  std::vector<double> values(n_, 0.0);
  for (int i = 0; i < n_; ++i) {
    values[i] = sums_[i] / static_cast<double>(permutations_done_);
  }
  return FinishValuation(std::move(values), session,
                         wall_accum_ + timer.ElapsedSeconds());
}

uint64_t PermutationMcSweep::ConfigHash() const {
  return Hasher64()
      .MixString("perm-mc")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.permutations))
      .MixU64(config_.seed)
      .digest();
}

Result<std::string> PermutationMcSweep::Snapshot() const {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  ByteWriter payload;
  PutSnapshotHeader(payload, AlgorithmName(), ConfigHash());
  payload.PutVarint(permutations_done_);
  payload.PutVarint(sums_.size());
  for (double sum : sums_) payload.PutDouble(sum);
  payload.PutString(rng_.SaveState());
  return EncodeFramed(kSnapshotMagic, kSnapshotVersion, payload.bytes());
}

Status PermutationMcSweep::Restore(std::string_view snapshot) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  FEDSHAP_ASSIGN_OR_RETURN(
      ByteReader reader,
      CheckSnapshotHeader(snapshot, AlgorithmName(), ConfigHash()));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t done_count, reader.GetVarint());
  if (done_count > total_units()) {
    return Status::InvalidArgument("snapshot sample count out of range");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t sum_count, reader.GetVarint());
  if (sum_count != static_cast<uint64_t>(n_)) {
    return Status::InvalidArgument("snapshot running-sum count mismatch");
  }
  std::vector<double> sums;
  sums.reserve(sum_count);
  for (uint64_t j = 0; j < sum_count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(double sum, reader.GetDouble());
    sums.push_back(sum);
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::string rng_state, reader.GetString());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  Rng rng(0);
  FEDSHAP_RETURN_NOT_OK(rng.LoadState(rng_state));
  // All validated; commit (wall accounting restarts with this process).
  permutations_done_ = done_count;
  sums_ = std::move(sums);
  rng_ = rng;
  wall_accum_ = 0.0;
  return Status::OK();
}

}  // namespace fedshap
