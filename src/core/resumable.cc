#include "core/resumable.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "core/exact.h"
#include "fl/utility_store.h"
#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/serialization.h"
#include "util/stopwatch.h"

namespace fedshap {

namespace {

/// The common snapshot header: algorithm name + configuration hash.
void PutSnapshotHeader(ByteWriter& payload, const char* algorithm,
                       uint64_t config_hash) {
  payload.PutString(algorithm);
  payload.PutU64(config_hash);
}

/// Validates the frame and the common header against the restoring
/// estimator's identity; returns the remaining payload reader on match.
/// Accepts any frame version <= kSweepSnapshotVersion: the payload
/// layout of every pre-existing sweep is unchanged since version 1, so
/// old snapshots (written before the adaptive allocation state existed)
/// restore as-is.
Result<ByteReader> CheckSnapshotHeader(std::string_view snapshot,
                                       const char* algorithm,
                                       uint64_t config_hash) {
  FEDSHAP_ASSIGN_OR_RETURN(
      std::string_view payload,
      DecodeFramed(kSweepSnapshotMagic, kSweepSnapshotVersion, snapshot));
  ByteReader reader(payload);
  FEDSHAP_ASSIGN_OR_RETURN(std::string name, reader.GetString());
  if (name != algorithm) {
    return Status::FailedPrecondition("snapshot was taken by '" + name +
                                      "', not '" + algorithm + "'");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t stored_hash, reader.GetU64());
  if (stored_hash != config_hash) {
    return Status::FailedPrecondition(
        "snapshot configuration does not match this sweep");
  }
  return reader;
}

}  // namespace

Result<ValuationResult> ResumableEstimator::Run(UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(Step(session, 0));
  return Finish(session);
}

Status SaveSnapshot(const ResumableEstimator& estimator,
                    const std::string& path) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string snapshot, estimator.Snapshot());
  return WriteFileAtomic(path, snapshot);
}

Status LoadSnapshot(ResumableEstimator& estimator, const std::string& path) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string snapshot, ReadFileToString(path));
  return estimator.Restore(snapshot);
}

namespace {
/// Frame tag of persisted ValuationResults ("FSVR" little-endian).
constexpr uint32_t kResultMagic = 0x52565346u;
constexpr uint32_t kResultVersion = 1;
}  // namespace

std::string EncodeValuationResult(const ValuationResult& result) {
  ByteWriter payload;
  payload.PutVarint(result.values.size());
  for (double value : result.values) payload.PutDouble(value);
  payload.PutVarint(result.num_evaluations);
  payload.PutVarint(result.num_trainings);
  payload.PutVarint(result.num_fresh_trainings);
  payload.PutDouble(result.charged_seconds);
  payload.PutDouble(result.wall_seconds);
  return EncodeFramed(kResultMagic, kResultVersion, payload.bytes());
}

Result<ValuationResult> DecodeValuationResult(std::string_view encoded) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string_view payload,
                           DecodeFramed(kResultMagic, kResultVersion,
                                        encoded));
  ByteReader reader(payload);
  ValuationResult result;
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  result.values.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    FEDSHAP_ASSIGN_OR_RETURN(double value, reader.GetDouble());
    result.values.push_back(value);
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t evaluations, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t trainings, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t fresh, reader.GetVarint());
  result.num_evaluations = evaluations;
  result.num_trainings = trainings;
  result.num_fresh_trainings = fresh;
  FEDSHAP_ASSIGN_OR_RETURN(result.charged_seconds, reader.GetDouble());
  FEDSHAP_ASSIGN_OR_RETURN(result.wall_seconds, reader.GetDouble());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after ValuationResult");
  }
  return result;
}

// ---------------------------------------------------------------------------
// CoalitionPlanSweep

void CoalitionPlanSweep::SetPlan(std::vector<Coalition> plan) {
  plan_ = std::move(plan);
  utilities_.reserve(plan_.size());
}

void CoalitionPlanSweep::FailInit(Status status) {
  FEDSHAP_CHECK(!status.ok());
  init_status_ = std::move(status);
}

uint64_t CoalitionPlanSweep::PlanHash() const {
  Hasher64 hasher;
  hasher.MixU64(plan_.size());
  for (const Coalition& c : plan_) hasher.MixU64(c.Hash());
  return hasher.digest();
}

Status CoalitionPlanSweep::Step(UtilitySession& session, int max_units) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (cursor_ >= plan_.size()) return Status::OK();
  Stopwatch timer;
  size_t todo = plan_.size() - cursor_;
  if (max_units > 0) todo = std::min(todo, static_cast<size_t>(max_units));
  const std::vector<Coalition> batch(
      plan_.begin() + static_cast<ptrdiff_t>(cursor_),
      plan_.begin() + static_cast<ptrdiff_t>(cursor_ + todo));
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values,
                           session.EvaluateBatch(batch));
  utilities_.insert(utilities_.end(), values.begin(), values.end());
  cursor_ += todo;
  wall_accum_ += timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<Coalition> CoalitionPlanSweep::PeekNext(size_t max_units) const {
  if (!init_status_.ok() || cursor_ >= plan_.size()) return {};
  const size_t todo = std::min(max_units, plan_.size() - cursor_);
  return std::vector<Coalition>(
      plan_.begin() + static_cast<ptrdiff_t>(cursor_),
      plan_.begin() + static_cast<ptrdiff_t>(cursor_ + todo));
}

Result<ValuationResult> CoalitionPlanSweep::Finish(UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (cursor_ != plan_.size()) {
    return Status::FailedPrecondition(
        "sweep is not complete: " + std::to_string(cursor_) + "/" +
        std::to_string(plan_.size()) + " evaluations done");
  }
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values, Estimate(session));
  return FinishValuation(std::move(values), session,
                         wall_accum_ + timer.ElapsedSeconds());
}

Result<std::string> CoalitionPlanSweep::Snapshot() const {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  ByteWriter payload;
  PutSnapshotHeader(payload, AlgorithmName(), ConfigHash());
  payload.PutU64(PlanHash());
  payload.PutVarint(plan_.size());
  payload.PutVarint(cursor_);
  for (size_t j = 0; j < cursor_; ++j) payload.PutDouble(utilities_[j]);
  return EncodeFramed(kSweepSnapshotMagic, kSweepSnapshotVersion, payload.bytes());
}

Status CoalitionPlanSweep::Restore(std::string_view snapshot) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  FEDSHAP_ASSIGN_OR_RETURN(
      ByteReader reader,
      CheckSnapshotHeader(snapshot, AlgorithmName(), ConfigHash()));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t plan_hash, reader.GetU64());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t plan_size, reader.GetVarint());
  if (plan_hash != PlanHash() || plan_size != plan_.size()) {
    return Status::FailedPrecondition(
        "snapshot evaluation plan does not match this sweep");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t cursor, reader.GetVarint());
  if (cursor > plan_.size()) {
    return Status::InvalidArgument("snapshot cursor exceeds the plan");
  }
  std::vector<double> utilities;
  utilities.reserve(cursor);
  for (uint64_t j = 0; j < cursor; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(double value, reader.GetDouble());
    utilities.push_back(value);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  // All validated; commit. Wall accounting restarts: the resumed run
  // reports its own process's time, not the dead process's (nor time
  // spent on work a rollback just discarded).
  utilities_ = std::move(utilities);
  cursor_ = cursor;
  wall_accum_ = 0.0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IpssSweep

IpssSweep::IpssSweep(int n, const IpssConfig& config)
    : n_(n), config_(config) {
  if (n < 1) {
    FailInit(Status::InvalidArgument("need at least one client"));
    return;
  }
  if (config.total_rounds < 1) {
    FailInit(Status::InvalidArgument("total_rounds must be >= 1"));
    return;
  }
  // Mirrors IpssShapley exactly: exhaustive strata up to k*, then the
  // balanced sample of the (k*+1)-stratum drawn from Rng(seed).
  k_star_ = IpssKStar(n, config.total_rounds);
  FEDSHAP_CHECK(k_star_ >= 0);
  std::vector<Coalition> plan;
  for (int k = 0; k <= k_star_; ++k) {
    ForEachSubsetOfSize(n, k,
                        [&](const Coalition& c) { plan.push_back(c); });
  }
  exhaustive_count_ = plan.size();
  if (k_star_ + 1 <= n) {
    Rng rng(config.seed);
    const int remaining =
        config.total_rounds - static_cast<int>(exhaustive_count_);
    for (const Coalition& c :
         BalancedCoalitionSample(n, k_star_ + 1, remaining, rng)) {
      plan.push_back(c);
    }
  }
  SetPlan(std::move(plan));
}

uint64_t IpssSweep::ConfigHash() const {
  return Hasher64()
      .MixString("ipss")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.total_rounds))
      .MixU64(config_.seed)
      .digest();
}

Result<std::vector<double>> IpssSweep::Estimate(UtilitySession&) const {
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(plan_.size());
  for (size_t j = 0; j < plan_.size(); ++j) {
    utilities.emplace(plan_[j], utilities_[j]);
  }
  const std::vector<Coalition> pruned_sample(
      plan_.begin() + static_cast<ptrdiff_t>(exhaustive_count_),
      plan_.end());
  return IpssEstimateFromUtilities(n_, k_star_, utilities, pruned_sample);
}

// ---------------------------------------------------------------------------
// StratifiedSweep

StratifiedSweep::StratifiedSweep(int n, const StratifiedConfig& config)
    : n_(n), config_(config) {
  if (n < 1) {
    FailInit(Status::InvalidArgument("need at least one client"));
    return;
  }
  if (config.rounds_per_stratum.empty() && config.total_rounds < 0) {
    FailInit(Status::InvalidArgument("total_rounds must be >= 0"));
    return;
  }
  std::vector<int> rounds = config.rounds_per_stratum;
  if (rounds.empty()) {
    rounds = DefaultStratumAllocation(n, config.total_rounds);
  }
  if (static_cast<int>(rounds.size()) != n) {
    FailInit(Status::InvalidArgument(
        "rounds_per_stratum must have n entries (m_1..m_n)"));
    return;
  }
  // Mirrors StratifiedSamplingShapley's draw loop exactly: repeated
  // i.i.d. draws per stratum, duplicates collapsed, the empty coalition
  // always first.
  Rng rng(config.seed);
  std::vector<std::unordered_set<Coalition, CoalitionHash>> sampled(n + 1);
  std::vector<Coalition> plan;
  plan.push_back(Coalition());
  for (int k = 1; k <= n; ++k) {
    const int m_k = rounds[k - 1];
    for (int s = 0; s < m_k; ++s) {
      Coalition c = RandomSubsetOfSize(n, k, rng);
      if (!sampled[k].insert(c).second) continue;
      plan.push_back(c);
    }
  }
  SetPlan(std::move(plan));
}

uint64_t StratifiedSweep::ConfigHash() const {
  Hasher64 hasher;
  hasher.MixString("stratified")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.scheme))
      .MixU64(static_cast<uint64_t>(config_.pair_policy))
      .MixU64(static_cast<uint64_t>(config_.total_rounds))
      .MixU64(config_.seed);
  hasher.MixU64(config_.rounds_per_stratum.size());
  for (int m : config_.rounds_per_stratum) {
    hasher.MixU64(static_cast<uint64_t>(m));
  }
  return hasher.digest();
}

Result<std::vector<double>> StratifiedSweep::Estimate(
    UtilitySession& session) const {
  // Regroup the flat plan into per-stratum draw lists (plan order is
  // already grouped by ascending stratum).
  std::vector<std::vector<Coalition>> draws(n_ + 1);
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(plan_.size());
  for (size_t j = 0; j < plan_.size(); ++j) {
    draws[plan_[j].Count()].push_back(plan_[j]);
    utilities.emplace(plan_[j], utilities_[j]);
  }
  return StratifiedEstimateFromDraws(
      n_, config_.scheme, config_.pair_policy, draws,
      [&utilities, &session](const Coalition& c) -> Result<double> {
        auto it = utilities.find(c);
        if (it != utilities.end()) return it->second;
        // Only reachable under PairPolicy::kEvaluateOnDemand: the pair
        // of a sampled coalition was never itself drawn.
        return session.Evaluate(c);
      });
}

// ---------------------------------------------------------------------------
// ExactSweep

ExactSweep::ExactSweep(int n, SvScheme scheme) : n_(n), scheme_(scheme) {
  if (n < 1 || n > 20) {
    FailInit(Status::InvalidArgument(
        "resumable exact SV requires 1 <= n <= 20"));
    return;
  }
  const uint64_t total = uint64_t{1} << n;
  std::vector<Coalition> plan;
  plan.reserve(total);
  for (uint64_t mask = 0; mask < total; ++mask) {
    Coalition c;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    plan.push_back(c);
  }
  SetPlan(std::move(plan));
}

uint64_t ExactSweep::ConfigHash() const {
  return Hasher64()
      .MixString("exact")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(scheme_))
      .digest();
}

Result<std::vector<double>> ExactSweep::Estimate(UtilitySession&) const {
  // plan_ is in mask order, so utilities_ already is the subset-utility
  // table u[mask] the exact schemes consume.
  switch (scheme_) {
    case SvScheme::kMarginal:
      return McShapleyFromSubsetUtilities(n_, utilities_);
    case SvScheme::kComplementary:
      return CcShapleyFromSubsetUtilities(n_, utilities_);
  }
  return Status::Internal("unknown scheme");
}

// ---------------------------------------------------------------------------
// PermutationMcSweep

PermutationMcSweep::PermutationMcSweep(int n,
                                       const PermutationMcConfig& config)
    : n_(n), config_(config), sums_(std::max(n, 1), 0.0),
      rng_(config.seed) {
  if (n < 1) {
    init_status_ = Status::InvalidArgument("need at least one client");
    return;
  }
  if (config.permutations < 1) {
    init_status_ = Status::InvalidArgument("permutations must be >= 1");
  }
}

size_t PermutationMcSweep::total_units() const {
  return static_cast<size_t>(std::max(config_.permutations, 0));
}

bool PermutationMcSweep::done() const {
  return init_status_.ok() && permutations_done_ >= total_units();
}

Status PermutationMcSweep::Step(UtilitySession& session, int max_units) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (done()) return Status::OK();
  Stopwatch timer;
  size_t todo = total_units() - permutations_done_;
  if (max_units > 0) todo = std::min(todo, static_cast<size_t>(max_units));
  // Draw the chunk's permutations first — the RNG stream must not depend
  // on evaluation scheduling, or resumption would not be bit-identical.
  std::vector<std::vector<int>> perms;
  perms.reserve(todo);
  for (size_t p = 0; p < todo; ++p) perms.push_back(rng_.Permutation(n_));
  // One batch holding every prefix of every drawn permutation (plus the
  // empty coalition) fans out over the session's thread pool; distinct
  // prefixes deduplicate in the utility cache.
  std::vector<Coalition> order;
  order.reserve(1 + todo * static_cast<size_t>(n_));
  order.push_back(Coalition());
  for (const std::vector<int>& perm : perms) {
    Coalition prefix;
    for (int member : perm) {
      prefix.Add(member);
      order.push_back(prefix);
    }
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           session.EvaluateBatch(order));
  size_t cursor = 1;
  for (const std::vector<int>& perm : perms) {
    double previous = u[0];
    for (int member : perm) {
      const double current = u[cursor++];
      sums_[member] += current - previous;
      previous = current;
    }
  }
  permutations_done_ += todo;
  wall_accum_ += timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<Coalition> PermutationMcSweep::PeekNext(size_t max_units) const {
  if (!init_status_.ok() || done() || max_units == 0) return {};
  const size_t todo =
      std::min(max_units, total_units() - permutations_done_);
  // A copy of the live RNG replays exactly the permutations the next
  // Step will draw; the real stream is untouched.
  Rng rng = rng_;
  std::vector<Coalition> order;
  order.reserve(1 + todo * static_cast<size_t>(n_));
  order.push_back(Coalition());
  for (size_t p = 0; p < todo; ++p) {
    Coalition prefix;
    for (int member : rng.Permutation(n_)) {
      prefix.Add(member);
      order.push_back(prefix);
    }
  }
  return order;
}

Result<ValuationResult> PermutationMcSweep::Finish(UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (!done()) {
    return Status::FailedPrecondition(
        "sweep is not complete: " + std::to_string(permutations_done_) +
        "/" + std::to_string(total_units()) + " permutations done");
  }
  Stopwatch timer;
  std::vector<double> values(n_, 0.0);
  for (int i = 0; i < n_; ++i) {
    values[i] = sums_[i] / static_cast<double>(permutations_done_);
  }
  return FinishValuation(std::move(values), session,
                         wall_accum_ + timer.ElapsedSeconds());
}

uint64_t PermutationMcSweep::ConfigHash() const {
  return Hasher64()
      .MixString("perm-mc")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.permutations))
      .MixU64(config_.seed)
      .digest();
}

Result<std::string> PermutationMcSweep::Snapshot() const {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  ByteWriter payload;
  PutSnapshotHeader(payload, AlgorithmName(), ConfigHash());
  payload.PutVarint(permutations_done_);
  payload.PutVarint(sums_.size());
  for (double sum : sums_) payload.PutDouble(sum);
  payload.PutString(rng_.SaveState());
  return EncodeFramed(kSweepSnapshotMagic, kSweepSnapshotVersion, payload.bytes());
}

Status PermutationMcSweep::Restore(std::string_view snapshot) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  FEDSHAP_ASSIGN_OR_RETURN(
      ByteReader reader,
      CheckSnapshotHeader(snapshot, AlgorithmName(), ConfigHash()));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t done_count, reader.GetVarint());
  if (done_count > total_units()) {
    return Status::InvalidArgument("snapshot sample count out of range");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t sum_count, reader.GetVarint());
  if (sum_count != static_cast<uint64_t>(n_)) {
    return Status::InvalidArgument("snapshot running-sum count mismatch");
  }
  std::vector<double> sums;
  sums.reserve(sum_count);
  for (uint64_t j = 0; j < sum_count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(double sum, reader.GetDouble());
    sums.push_back(sum);
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::string rng_state, reader.GetString());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  Rng rng(0);
  FEDSHAP_RETURN_NOT_OK(rng.LoadState(rng_state));
  // All validated; commit (wall accounting restarts with this process).
  permutations_done_ = done_count;
  sums_ = std::move(sums);
  rng_ = rng;
  wall_accum_ = 0.0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// AdaptiveStratifiedSweep

AdaptiveStratifiedSweep::AdaptiveStratifiedSweep(
    int n, const AdaptiveAllocationConfig& config)
    : n_(n), config_(config), rng_(config.seed) {
  if (n < 1) {
    init_status_ = Status::InvalidArgument("need at least one client");
    return;
  }
  if (config.total_rounds < 1) {
    init_status_ = Status::InvalidArgument("total_rounds must be >= 1");
    return;
  }
  if (config.pilot_rounds_per_stratum < 1) {
    init_status_ =
        Status::InvalidArgument("pilot_rounds_per_stratum must be >= 1");
    return;
  }
  if (config.reallocate_every < 1) {
    init_status_ = Status::InvalidArgument("reallocate_every must be >= 1");
    return;
  }
  if (!(config.refine_dominance > 0.0 && config.refine_dominance <= 1.0)) {
    init_status_ =
        Status::InvalidArgument("refine_dominance must be in (0, 1]");
    return;
  }
  if (!(config.coverage_per_client >= 0.0)) {
    init_status_ =
        Status::InvalidArgument("coverage_per_client must be >= 0");
    return;
  }
  // The run can place at most sum_k C(n, k) rounds (the clip every epoch
  // plan respects); a larger total_rounds would loop forever asking for
  // budget no stratum can absorb.
  int64_t capacity = 0;
  for (int k = 1; k <= n; ++k) {
    const uint64_t population = BinomialU64(n, k);
    capacity += population > static_cast<uint64_t>(
                                 std::numeric_limits<int>::max())
                    ? std::numeric_limits<int>::max()
                    : static_cast<int64_t>(population);
    if (capacity >= config.total_rounds) break;
  }
  effective_total_ = static_cast<size_t>(
      std::min<int64_t>(config.total_rounds, capacity));
  moments_.assign(n, StratumMoments());
  rounds_per_size_.assign(n, 0);
}

size_t AdaptiveStratifiedSweep::total_units() const {
  return effective_total_;
}

bool AdaptiveStratifiedSweep::done() const {
  return init_status_.ok() && rounds_spent_ >= effective_total_;
}

uint64_t AdaptiveStratifiedSweep::ConfigHash() const {
  return Hasher64()
      .MixString("adaptive-stratified")
      .MixU64(static_cast<uint64_t>(n_))
      .MixU64(static_cast<uint64_t>(config_.scheme))
      .MixU64(static_cast<uint64_t>(config_.pair_policy))
      .MixU64(static_cast<uint64_t>(config_.total_rounds))
      .MixU64(config_.seed)
      .MixU64(static_cast<uint64_t>(config_.pilot_rounds_per_stratum))
      .MixU64(static_cast<uint64_t>(config_.reallocate_every))
      .MixU64(static_cast<uint64_t>(config_.initial_buckets))
      .MixDouble(config_.refine_dominance)
      .MixDouble(config_.coverage_per_client)
      .digest();
}

void AdaptiveStratifiedSweep::BeginEpoch() {
  const int remaining =
      static_cast<int>(effective_total_ - rounds_spent_);
  FEDSHAP_CHECK(remaining > 0);
  if (rounds_spent_ == 0) {
    // Pilot epoch: a few rounds per stratum (clipped at the stratum
    // population and the total budget) to seed the moments. Sigma
    // pooling starts at the configured coarse bucket granularity.
    buckets_ = InitialAllocationBuckets(n_, config_.initial_buckets);
    epoch_plan_.assign(n_, 0);
    int budget = remaining;
    for (int k = 1; k <= n_ && budget > 0; ++k) {
      const uint64_t population = BinomialU64(n_, k);
      int64_t take = std::min<int64_t>(
          config_.pilot_rounds_per_stratum,
          population > static_cast<uint64_t>(
                           std::numeric_limits<int>::max())
              ? std::numeric_limits<int>::max()
              : static_cast<int64_t>(population));
      take = std::min<int64_t>(take, budget);
      epoch_plan_[k - 1] = static_cast<int>(take);
      budget -= static_cast<int>(take);
      rounds_per_size_[k - 1] += take;
    }
  } else {
    // Refinement first (sharper sigma pooling), then Neyman reallocation
    // of the next epoch's budget over the refreshed moment state.
    if (RefineDominantBucket(n_, buckets_, moments_,
                             config_.refine_dominance)) {
      FEDSHAP_LOG(Debug) << "[adaptive] split bucket: buckets="
                         << buckets_.size();
    }
    const int budget = std::min(config_.reallocate_every, remaining);
    // Coverage floor first: strata below their quota are topped up before
    // any variance chasing, keeping the run in the m_{i,k} > 0 regime
    // Theorem 1's unbiasedness (and the Neyman bound itself) assumes.
    epoch_plan_ = CoverageFloorAllocation(
        n_, budget, rounds_per_size_, config_.coverage_per_client);
    int floored = 0;
    for (int k = 0; k < n_; ++k) {
      rounds_per_size_[k] += epoch_plan_[k];
      floored += epoch_plan_[k];
    }
    // Then the Neyman split of the surplus over the refreshed moments.
    std::vector<StratumMoments> pooled(n_);
    for (const AllocationBucket& bucket : buckets_) {
      const StratumMoments m =
          PoolStratumMoments(moments_, bucket.lo, bucket.hi);
      for (int k = bucket.lo; k <= bucket.hi; ++k) pooled[k - 1] = m;
    }
    const std::vector<int> neyman = NeymanStratumAllocation(
        n_, budget - floored, pooled, rounds_per_size_);
    for (int k = 0; k < n_; ++k) {
      epoch_plan_[k] += neyman[k];
      rounds_per_size_[k] += neyman[k];
    }
    ++reallocations_;
    FEDSHAP_LOG(Debug) << "[adaptive] reallocated: epoch="
                       << reallocations_ << " spent=" << rounds_spent_
                       << "/" << effective_total_
                       << " buckets=" << buckets_.size()
                       << " epoch_rounds=" << budget;
  }
  epoch_cursor_ = 0;
}

Status AdaptiveStratifiedSweep::RunRounds(UtilitySession& session,
                                          size_t count) {
  std::vector<Coalition> batch;
  if (draws_.empty()) {
    // The empty coalition anchors every run (Alg. 1 treats it as always
    // sampled); it is recorded as draw 0 before any stratum draw.
    draws_.push_back(Coalition());
    index_of_.emplace(Coalition(), 0);
    batch.push_back(Coalition());
  }
  // Locate the epoch cursor in the plan (rounds are laid out stratum by
  // stratum, ascending k), then draw `count` rounds forward. The RNG is
  // consumed once per round in this fixed order, so any chunking of the
  // same epoch draws the identical stream.
  size_t within = epoch_cursor_;
  int k = 1;
  for (; k <= n_; ++k) {
    const size_t m_k = static_cast<size_t>(epoch_plan_[k - 1]);
    if (within < m_k) break;
    within -= m_k;
  }
  size_t drawn = 0;
  while (drawn < count) {
    FEDSHAP_CHECK(k <= n_);
    if (within >= static_cast<size_t>(epoch_plan_[k - 1])) {
      within = 0;
      ++k;
      continue;
    }
    const Coalition c = RandomSubsetOfSize(n_, k, rng_);
    ++within;
    ++drawn;
    const auto inserted = index_of_.emplace(c, draws_.size());
    if (inserted.second) {
      draws_.push_back(c);
      batch.push_back(c);
    }
  }
  epoch_cursor_ += count;
  rounds_spent_ += count;
  if (!batch.empty()) {
    FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values,
                             session.EvaluateBatch(batch));
    utilities_.insert(utilities_.end(), values.begin(), values.end());
  }
  return FoldNewDraws(session);
}

Status AdaptiveStratifiedSweep::FoldNewDraws(UtilitySession& session) {
  // Under kRequireSampled a draw's pair contributes to the moments iff
  // the pair sits strictly earlier in the global draw order — exactly
  // the differences the final estimate averages. Under kEvaluateOnDemand
  // the estimate averages every pair, so the moments do too: missing
  // pairs are evaluated on the spot (the same evaluations Finish needs
  // anyway; the cache makes them free there). Either way the folded
  // state after any prefix is a pure function of the draw sequence —
  // independent of how Step calls chunked it — which is what keeps
  // reallocation (and so resumption) bit-identical. Members iterate
  // ascending, fixing the float summation order.
  const bool on_demand =
      config_.pair_policy == PairPolicy::kEvaluateOnDemand;
  std::unordered_map<Coalition, double, CoalitionHash> extra;
  if (on_demand) {
    std::vector<Coalition> missing;
    const auto want = [&](const Coalition& pair, size_t j) {
      const auto it = index_of_.find(pair);
      if (it != index_of_.end() && it->second < j) return;
      if (extra.emplace(pair, 0.0).second) missing.push_back(pair);
    };
    for (size_t j = moments_folded_; j < draws_.size(); ++j) {
      const Coalition& s = draws_[j];
      if (s.Count() == 0) continue;
      if (config_.scheme == SvScheme::kMarginal) {
        for (int i : s.Members()) want(s.Without(i), j);
      } else {
        want(s.ComplementIn(n_), j);
      }
    }
    if (!missing.empty()) {
      FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> values,
                               session.EvaluateBatch(missing));
      for (size_t m = 0; m < missing.size(); ++m) {
        extra[missing[m]] = values[m];
      }
    }
  }
  // The pair's utility: recorded when the pair was drawn earlier, the
  // on-demand evaluation otherwise (when the policy allows one).
  const auto pair_utility = [&](const Coalition& pair, size_t j,
                                double* out) {
    const auto it = index_of_.find(pair);
    if (it != index_of_.end() && it->second < j) {
      *out = utilities_[it->second];
      return true;
    }
    const auto ex = extra.find(pair);
    if (ex == extra.end()) return false;
    *out = ex->second;
    return true;
  };
  for (size_t j = moments_folded_; j < draws_.size(); ++j) {
    const Coalition& s = draws_[j];
    const int k = s.Count();
    if (k == 0) continue;
    double u_pair = 0.0;
    switch (config_.scheme) {
      case SvScheme::kMarginal: {
        for (int i : s.Members()) {
          if (pair_utility(s.Without(i), j, &u_pair)) {
            moments_[k - 1].Add(utilities_[j] - u_pair);
          }
        }
        break;
      }
      case SvScheme::kComplementary: {
        if (pair_utility(s.ComplementIn(n_), j, &u_pair)) {
          moments_[k - 1].Add(utilities_[j] - u_pair);
        }
        break;
      }
    }
  }
  moments_folded_ = draws_.size();
  return Status::OK();
}

Status AdaptiveStratifiedSweep::Step(UtilitySession& session,
                                     int max_units) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (done()) return Status::OK();
  Stopwatch timer;
  size_t todo = effective_total_ - rounds_spent_;
  if (max_units > 0) todo = std::min(todo, static_cast<size_t>(max_units));
  while (todo > 0) {
    size_t epoch_total = 0;
    for (int m : epoch_plan_) epoch_total += static_cast<size_t>(m);
    if (epoch_cursor_ >= epoch_total) {
      BeginEpoch();
      epoch_total = 0;
      for (int m : epoch_plan_) epoch_total += static_cast<size_t>(m);
    }
    // A batch never crosses an epoch boundary: the next epoch's plan
    // depends on utilities this batch is about to observe.
    const size_t chunk = std::min(todo, epoch_total - epoch_cursor_);
    FEDSHAP_RETURN_NOT_OK(RunRounds(session, chunk));
    todo -= chunk;
  }
  wall_accum_ += timer.ElapsedSeconds();
  return Status::OK();
}

std::vector<Coalition> AdaptiveStratifiedSweep::PeekNext(
    size_t max_units) const {
  if (!init_status_.ok() || done() || max_units == 0) return {};
  size_t epoch_total = 0;
  for (int m : epoch_plan_) epoch_total += static_cast<size_t>(m);
  // At an epoch boundary (including before the first step) the next
  // plan depends on utilities not yet observed — nothing is determined.
  if (epoch_cursor_ >= epoch_total) return {};
  const size_t todo =
      std::min({max_units, epoch_total - epoch_cursor_,
                effective_total_ - rounds_spent_});
  // Mirror RunRounds on copies: same stratum walk, same RNG consumption
  // (one draw per round), no state mutated. Draws already recorded are
  // duplicates a prefetch would hit in cache anyway, so they are skipped.
  Rng rng = rng_;
  std::vector<Coalition> batch;
  std::unordered_set<Coalition, CoalitionHash> peeked;
  if (draws_.empty()) batch.push_back(Coalition());
  size_t within = epoch_cursor_;
  int k = 1;
  for (; k <= n_; ++k) {
    const size_t m_k = static_cast<size_t>(epoch_plan_[k - 1]);
    if (within < m_k) break;
    within -= m_k;
  }
  size_t drawn = 0;
  while (drawn < todo) {
    FEDSHAP_CHECK(k <= n_);
    if (within >= static_cast<size_t>(epoch_plan_[k - 1])) {
      within = 0;
      ++k;
      continue;
    }
    const Coalition c = RandomSubsetOfSize(n_, k, rng);
    ++within;
    ++drawn;
    if (index_of_.find(c) == index_of_.end() && peeked.insert(c).second) {
      batch.push_back(c);
    }
  }
  return batch;
}

Result<ValuationResult> AdaptiveStratifiedSweep::Finish(
    UtilitySession& session) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  if (!done()) {
    return Status::FailedPrecondition(
        "sweep is not complete: " + std::to_string(rounds_spent_) + "/" +
        std::to_string(effective_total_) + " rounds done");
  }
  Stopwatch timer;
  // Regroup the accumulated draws by stratum (evaluation order within
  // each stratum is draw order) and run the shared pairing pass.
  std::vector<std::vector<Coalition>> grouped(n_ + 1);
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(draws_.size());
  for (size_t j = 0; j < draws_.size(); ++j) {
    grouped[draws_[j].Count()].push_back(draws_[j]);
    utilities.emplace(draws_[j], utilities_[j]);
  }
  FEDSHAP_ASSIGN_OR_RETURN(
      std::vector<double> values,
      StratifiedEstimateFromDraws(
          n_, config_.scheme, config_.pair_policy, grouped,
          [&utilities, &session](const Coalition& c) -> Result<double> {
            const auto it = utilities.find(c);
            if (it != utilities.end()) return it->second;
            // Only reachable under PairPolicy::kEvaluateOnDemand.
            return session.Evaluate(c);
          }));
  return FinishValuation(std::move(values), session,
                         wall_accum_ + timer.ElapsedSeconds());
}

Result<std::string> AdaptiveStratifiedSweep::Snapshot() const {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  ByteWriter payload;
  PutSnapshotHeader(payload, AlgorithmName(), ConfigHash());
  payload.PutString(rng_.SaveState());
  payload.PutVarint(rounds_spent_);
  payload.PutVarint(static_cast<uint64_t>(reallocations_));
  payload.PutVarint(epoch_cursor_);
  payload.PutVarint(epoch_plan_.size());
  for (int m : epoch_plan_) payload.PutVarint(static_cast<uint64_t>(m));
  for (int64_t r : rounds_per_size_) {
    payload.PutVarint(static_cast<uint64_t>(r));
  }
  payload.PutVarint(buckets_.size());
  for (const AllocationBucket& bucket : buckets_) {
    payload.PutVarint(static_cast<uint64_t>(bucket.lo));
    payload.PutVarint(static_cast<uint64_t>(bucket.hi));
  }
  for (const StratumMoments& m : moments_) {
    payload.PutVarint(m.count);
    payload.PutDouble(m.sum);
    payload.PutDouble(m.sum_squares);
  }
  payload.PutVarint(draws_.size());
  for (size_t j = 0; j < draws_.size(); ++j) {
    PutCoalition(payload, draws_[j]);
    payload.PutDouble(utilities_[j]);
  }
  return EncodeFramed(kSweepSnapshotMagic, kSweepSnapshotVersion,
                      payload.bytes());
}

Status AdaptiveStratifiedSweep::Restore(std::string_view snapshot) {
  FEDSHAP_RETURN_NOT_OK(init_status_);
  FEDSHAP_ASSIGN_OR_RETURN(
      ByteReader reader,
      CheckSnapshotHeader(snapshot, AlgorithmName(), ConfigHash()));
  FEDSHAP_ASSIGN_OR_RETURN(std::string rng_state, reader.GetString());
  Rng rng(0);
  FEDSHAP_RETURN_NOT_OK(rng.LoadState(rng_state));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t spent, reader.GetVarint());
  if (spent > effective_total_) {
    return Status::InvalidArgument("snapshot round count out of range");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t reallocations, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t epoch_cursor, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t plan_size, reader.GetVarint());
  if (plan_size != 0 && plan_size != static_cast<uint64_t>(n_)) {
    return Status::InvalidArgument("snapshot epoch plan size mismatch");
  }
  std::vector<int> epoch_plan(plan_size, 0);
  uint64_t epoch_total = 0;
  for (uint64_t k = 0; k < plan_size; ++k) {
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t m, reader.GetVarint());
    if (m > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return Status::InvalidArgument("snapshot epoch plan entry overflow");
    }
    epoch_plan[k] = static_cast<int>(m);
    epoch_total += m;
  }
  if (epoch_cursor > epoch_total) {
    return Status::InvalidArgument("snapshot epoch cursor out of range");
  }
  std::vector<int64_t> rounds_per_size(n_, 0);
  for (int k = 0; k < n_; ++k) {
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t r, reader.GetVarint());
    rounds_per_size[k] = static_cast<int64_t>(r);
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t bucket_count, reader.GetVarint());
  if (bucket_count > static_cast<uint64_t>(n_)) {
    return Status::InvalidArgument("snapshot bucket count out of range");
  }
  std::vector<AllocationBucket> buckets(bucket_count);
  for (uint64_t b = 0; b < bucket_count; ++b) {
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t lo, reader.GetVarint());
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t hi, reader.GetVarint());
    if (lo < 1 || hi < lo || hi > static_cast<uint64_t>(n_)) {
      return Status::InvalidArgument("snapshot bucket range invalid");
    }
    buckets[b].lo = static_cast<int>(lo);
    buckets[b].hi = static_cast<int>(hi);
  }
  std::vector<StratumMoments> moments(n_);
  for (int k = 0; k < n_; ++k) {
    FEDSHAP_ASSIGN_OR_RETURN(moments[k].count, reader.GetVarint());
    FEDSHAP_ASSIGN_OR_RETURN(moments[k].sum, reader.GetDouble());
    FEDSHAP_ASSIGN_OR_RETURN(moments[k].sum_squares, reader.GetDouble());
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t draw_count, reader.GetVarint());
  std::vector<Coalition> draws;
  std::vector<double> utilities;
  std::unordered_map<Coalition, size_t, CoalitionHash> index_of;
  draws.reserve(draw_count);
  utilities.reserve(draw_count);
  for (uint64_t j = 0; j < draw_count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(Coalition c, GetCoalition(reader));
    FEDSHAP_ASSIGN_OR_RETURN(double u, reader.GetDouble());
    if (j == 0 && !c.Empty()) {
      return Status::InvalidArgument(
          "snapshot draw 0 must be the empty coalition");
    }
    if (!index_of.emplace(c, draws.size()).second) {
      return Status::InvalidArgument("snapshot has duplicate draws");
    }
    draws.push_back(c);
    utilities.push_back(u);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  // All validated; commit (wall accounting restarts with this process).
  rng_ = rng;
  rounds_spent_ = spent;
  reallocations_ = static_cast<int>(reallocations);
  epoch_cursor_ = epoch_cursor;
  epoch_plan_ = std::move(epoch_plan);
  rounds_per_size_ = std::move(rounds_per_size);
  buckets_ = std::move(buckets);
  moments_ = std::move(moments);
  draws_ = std::move(draws);
  utilities_ = std::move(utilities);
  index_of_ = std::move(index_of);
  moments_folded_ = draws_.size();
  wall_accum_ = 0.0;
  return Status::OK();
}

}  // namespace fedshap
