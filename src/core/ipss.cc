#include "core/ipss.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/stratified.h"
#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

int IpssKStar(int n, int total_rounds) {
  if (total_rounds < 1) return -1;
  int k_star = -1;
  uint64_t used = 0;
  for (int k = 0; k <= n; ++k) {
    const uint64_t stratum = BinomialU64(n, k);
    if (used + stratum > static_cast<uint64_t>(total_rounds)) break;
    used += stratum;
    k_star = k;
  }
  return k_star;
}

std::vector<Coalition> BalancedCoalitionSample(int n, int size, int count,
                                               Rng& rng) {
  FEDSHAP_CHECK(size >= 1 && size <= n);
  FEDSHAP_CHECK(count >= 0);
  std::vector<Coalition> sample;
  std::unordered_set<Coalition, CoalitionHash> used;
  std::vector<int> coverage(n, 0);

  constexpr int kMaxTries = 64;
  for (int s = 0; s < count; ++s) {
    Coalition chosen;
    bool accepted = false;
    for (int attempt = 0; attempt < kMaxTries && !accepted; ++attempt) {
      // Constraint (3): equal per-client frequency. Greedily prefer the
      // clients with the lowest coverage so far; random jitter breaks ties
      // and, on retries, increasingly randomizes to escape duplicates.
      std::vector<std::pair<double, int>> keyed(n);
      const double jitter = 0.25 + attempt;  // grows with each retry
      for (int i = 0; i < n; ++i) {
        keyed[i] = {coverage[i] + jitter * rng.Uniform(), i};
      }
      std::sort(keyed.begin(), keyed.end());
      Coalition candidate;
      for (int j = 0; j < size; ++j) candidate.Add(keyed[j].second);
      if (used.count(candidate) == 0) {
        chosen = candidate;
        accepted = true;
      }
    }
    if (!accepted) break;  // stratum effectively exhausted
    used.insert(chosen);
    chosen.ForEach([&](int member) { ++coverage[member]; });
    sample.push_back(chosen);
  }
  return sample;
}

Result<ValuationResult> AdaptiveIpssShapley(
    UtilitySession& session, const AdaptiveIpssConfig& config) {
  if (config.initial_rounds < 1) {
    return Status::InvalidArgument("initial_rounds must be >= 1");
  }
  if (config.max_rounds < config.initial_rounds) {
    return Status::InvalidArgument("max_rounds must be >= initial_rounds");
  }
  if (config.tolerance < 0.0) {
    return Status::InvalidArgument("tolerance must be >= 0");
  }
  Stopwatch timer;

  std::vector<double> previous;
  ValuationResult current;
  int gamma = config.initial_rounds;
  while (true) {
    IpssConfig step;
    step.total_rounds = gamma;
    step.seed = config.seed;
    FEDSHAP_ASSIGN_OR_RETURN(current, IpssShapley(session, step));
    if (!previous.empty()) {
      // Relative l2 change between consecutive estimates.
      double diff_sq = 0.0, norm_sq = 0.0;
      for (size_t i = 0; i < current.values.size(); ++i) {
        const double d = current.values[i] - previous[i];
        diff_sq += d * d;
        norm_sq += current.values[i] * current.values[i];
      }
      const bool converged =
          norm_sq == 0.0 ? diff_sq == 0.0
                         : std::sqrt(diff_sq / norm_sq) < config.tolerance;
      if (converged) break;
    }
    if (gamma >= config.max_rounds) break;
    previous = current.values;
    gamma = std::min(config.max_rounds, gamma * 2);
  }
  // The session accumulated every evaluation across doublings; override
  // the last step's partial accounting with the session totals.
  current.num_evaluations = session.num_evaluations();
  current.num_trainings = session.num_distinct();
  current.charged_seconds = session.charged_seconds();
  current.wall_seconds = timer.ElapsedSeconds();
  return current;
}

Result<ValuationResult> IpssShapley(UtilitySession& session,
                                    const IpssConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.total_rounds < 1) {
    return Status::InvalidArgument("total_rounds must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  // ---- Line 1: the largest fully-evaluated stratum. ----
  const int k_star = IpssKStar(n, config.total_rounds);
  FEDSHAP_CHECK(k_star >= 0);  // total_rounds >= 1 admits the empty set

  // ---- Lines 2-7: evaluate every coalition with <= k_star clients. ----
  // The whole exhaustive prefix is one independent batch: the session fans
  // it out over its thread pool (one FL training per coalition).
  std::vector<Coalition> exhaustive;
  for (int k = 0; k <= k_star; ++k) {
    ForEachSubsetOfSize(n, k,
                        [&](const Coalition& c) { exhaustive.push_back(c); });
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> exhaustive_u,
                           session.EvaluateBatch(exhaustive));
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(static_cast<size_t>(config.total_rounds));
  for (size_t j = 0; j < exhaustive.size(); ++j) {
    utilities.emplace(exhaustive[j], exhaustive_u[j]);
  }
  const uint64_t evaluated = exhaustive.size();

  // ---- Lines 8-14: balanced sampling of the (k*+1)-stratum. ----
  std::vector<Coalition> pruned_sample;
  if (k_star + 1 <= n) {
    const int remaining =
        config.total_rounds - static_cast<int>(evaluated);
    pruned_sample = BalancedCoalitionSample(n, k_star + 1, remaining, rng);
    FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> pruned_u,
                             session.EvaluateBatch(pruned_sample));
    for (size_t j = 0; j < pruned_sample.size(); ++j) {
      utilities.emplace(pruned_sample[j], pruned_u[j]);
    }
    // Observability: the sampled stratum's marginal-contribution spread,
    // accumulated as the stratified framework's running moments (every
    // pair S \ {i} has size k* and is exhaustively evaluated). The
    // adaptive allocator (core/stratified.h) reads the same statistic
    // when it decides where the next rounds go; here it tells an
    // operator how noisy IPSS's one sampled stratum actually was.
    StratumMoments pruned_moments;
    for (size_t j = 0; j < pruned_sample.size(); ++j) {
      for (int i : pruned_sample[j].Members()) {
        const auto it = utilities.find(pruned_sample[j].Without(i));
        if (it != utilities.end()) {
          pruned_moments.Add(pruned_u[j] - it->second);
        }
      }
    }
    FEDSHAP_LOG(Debug) << "[ipss] pruned stratum k=" << (k_star + 1)
                       << " samples=" << pruned_moments.count
                       << " sigma=" << pruned_moments.StdDev();
  }

  // ---- Lines 15-17: MC-SV estimate over the evaluated coalitions. ----
  FEDSHAP_ASSIGN_OR_RETURN(
      std::vector<double> values,
      IpssEstimateFromUtilities(n, k_star, utilities, pruned_sample));

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

Result<std::vector<double>> IpssEstimateFromUtilities(
    int n, int k_star,
    const std::unordered_map<Coalition, double, CoalitionHash>& utilities,
    const std::vector<Coalition>& pruned_sample) {
  const auto utility_of = [&utilities](const Coalition& c) -> Result<double> {
    auto it = utilities.find(c);
    if (it == utilities.end()) {
      return Status::Internal("IPSS estimate is missing the utility of " +
                              c.ToString());
    }
    return it->second;
  };
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    // Exhaustive strata: S excludes i, |S| < k*; S u {i} has size <= k*,
    // so both utilities are known.
    for (int k = 0; k < k_star; ++k) {
      const double weight = 1.0 / BinomialDouble(n - 1, k);
      Status failed = Status::OK();
      ForEachSubsetOfSize(n, k, [&](const Coalition& s) {
        if (s.Contains(i) || !failed.ok()) return;
        Result<double> with_i = utility_of(s.With(i));
        Result<double> without = utility_of(s);
        if (!with_i.ok() || !without.ok()) {
          failed = with_i.ok() ? without.status() : with_i.status();
          return;
        }
        total += weight * (*with_i - *without);
      });
      FEDSHAP_RETURN_NOT_OK(failed);
    }
    // Pruned stratum: S u {i} sampled in P, |S| = k*.
    if (k_star < n) {
      const double weight = 1.0 / BinomialDouble(n - 1, k_star);
      for (const Coalition& p : pruned_sample) {
        if (!p.Contains(i)) continue;
        FEDSHAP_ASSIGN_OR_RETURN(const double u_p, utility_of(p));
        FEDSHAP_ASSIGN_OR_RETURN(const double u_s,
                                 utility_of(p.Without(i)));
        total += weight * (u_p - u_s);
      }
    }
    values[i] = total / n;
  }
  return values;
}

}  // namespace fedshap
