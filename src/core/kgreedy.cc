#include "core/kgreedy.h"

#include "util/combinatorics.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> KGreedyShapley(UtilitySession& session, int k_max) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (k_max < 1 || k_max > n) {
    return Status::InvalidArgument("K must be in [1, n]");
  }
  Stopwatch timer;

  // Evaluate all coalitions of size <= K (Alg. 2 lines 2-4) as one batch
  // fanned out over the session's thread pool. Utilities are kept keyed by
  // coalition for the marginal pass.
  std::vector<Coalition> sweep;
  for (int k = 0; k <= k_max; ++k) {
    ForEachSubsetOfSize(n, k,
                        [&](const Coalition& c) { sweep.push_back(c); });
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> sweep_u,
                           session.EvaluateBatch(sweep));
  std::unordered_map<Coalition, double, CoalitionHash> utilities;
  utilities.reserve(sweep.size());
  for (size_t j = 0; j < sweep.size(); ++j) {
    utilities.emplace(sweep[j], sweep_u[j]);
  }

  // Marginal pass (Alg. 2 lines 6-8): exact stratum averages for the first
  // K strata, using the standard MC-SV weight 1/(n * C(n-1, |S|)).
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < k_max; ++k) {
      const double weight = 1.0 / (n * BinomialDouble(n - 1, k));
      double stratum_sum = 0.0;
      ForEachSubsetOfSize(n, k, [&](const Coalition& s) {
        if (s.Contains(i)) return;
        const auto with_i = utilities.find(s.With(i));
        const auto without_i = utilities.find(s);
        stratum_sum += with_i->second - without_i->second;
      });
      values[i] += weight * stratum_sum;
    }
  }

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

}  // namespace fedshap
