#ifndef FEDSHAP_CORE_IPSS_H_
#define FEDSHAP_CORE_IPSS_H_

#include <unordered_map>
#include <vector>

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/coalition.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// IPSS — the paper's contribution (Alg. 3): importance-pruned
/// stratified sampling of the Shapley value, plus the adaptive-budget
/// extension and the estimate-from-recorded-utilities helper shared
/// with the resumable sweep layer (core/resumable.h).

/// Configuration of IPSS (Alg. 3).
struct IpssConfig {
  /// Total sampling rounds gamma: the budget of utility evaluations.
  int total_rounds = 32;
  /// Seed for the balanced sampling of the (k*+1)-stratum.
  uint64_t seed = 1;
};

/// The cutoff stratum k* = max{k : sum_{j<=k} C(n, j) <= gamma} (Alg. 3
/// line 1). Returns -1 when even the empty coalition does not fit
/// (gamma < 1).
int IpssKStar(int n, int total_rounds);

/// Balanced sample of `count` distinct coalitions of size `size` over n
/// clients such that per-client coverage counts C_i are as equal as
/// possible (constraint (3) of Alg. 3). Exposed for tests.
std::vector<Coalition> BalancedCoalitionSample(int n, int size, int count,
                                               Rng& rng);

/// IPSS — Importance-Pruned Stratified Sampling (Alg. 3), the paper's
/// contribution.
///
/// Phase 1 exhaustively evaluates every coalition of size <= k*; the
/// remaining budget samples coalitions of size k*+1 with equal per-client
/// frequency. Phase 2 estimates the MC-SV from exactly the evaluated
/// coalitions:
///
///   phi_hat_i = 1/n * [ sum_{|S| < k*, S !ni i} (U(S u i) - U(S)) / C(n-1,|S|)
///                     + sum_{|S| = k*, S u {i} in P} (U(S u i) - U(S)) / C(n-1,k*) ]
///
/// Utility evaluations: at most `total_rounds` coalitions, exploiting the
/// key-combinations phenomenon (small coalitions dominate the value).
Result<ValuationResult> IpssShapley(UtilitySession& session,
                                    const IpssConfig& config);

/// Phase 2 of IPSS in isolation: the MC-SV estimate (Alg. 3 lines 15-17)
/// computed from already-evaluated utilities. `utilities` must contain
/// every coalition of size <= k_star plus every member of
/// `pruned_sample` (the sampled (k*+1)-stratum) and each sample's
/// size-k* subsets obtained by removing one member. Shared by the
/// one-shot IpssShapley and the resumable IpssSweep so both produce
/// bit-identical estimates from the same evaluations. Fails with
/// Internal when a required utility is missing.
Result<std::vector<double>> IpssEstimateFromUtilities(
    int n, int k_star,
    const std::unordered_map<Coalition, double, CoalitionHash>& utilities,
    const std::vector<Coalition>& pruned_sample);

/// Configuration of the adaptive-budget IPSS extension.
struct AdaptiveIpssConfig {
  /// Starting budget; doubled each round.
  int initial_rounds = 8;
  /// Hard budget ceiling (the last attempt uses at most this).
  int max_rounds = 1024;
  /// Stop when the relative l2 distance between two consecutive estimates
  /// falls below this.
  double tolerance = 0.05;
  /// Seed of the balanced sampling at every budget.
  uint64_t seed = 1;
};

/// Adaptive IPSS (extension; the paper leaves gamma as an input): runs
/// IPSS with a doubling budget until the estimate stabilizes, so callers
/// need not guess gamma. Thanks to the exhaustive-prefix structure of
/// IPSS, every doubling reuses all previously evaluated coalitions (they
/// are cached), so the total charged cost is essentially that of the final
/// budget. Returns the final estimate; the session records the combined
/// evaluation counts.
Result<ValuationResult> AdaptiveIpssShapley(
    UtilitySession& session, const AdaptiveIpssConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_IPSS_H_
