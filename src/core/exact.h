#ifndef FEDSHAP_CORE_EXACT_H_
#define FEDSHAP_CORE_EXACT_H_

#include <vector>

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Exact Shapley value via the marginal-contribution scheme (Def. 3,
/// Eq. 4): evaluates U on all 2^n coalitions. This is the paper's
/// "MC-Shapley" baseline and the ground truth of every experiment.
/// Requires n <= 25.
Result<ValuationResult> ExactShapleyMc(UtilitySession& session);

/// Exact Shapley value via the complementary-contribution scheme (Def. 4,
/// Eq. 5). Identical values to ExactShapleyMc (the schemes are equivalent
/// expressions); exercised by tests and the scheme-comparison benches.
/// Requires n <= 25.
Result<ValuationResult> ExactShapleyCc(UtilitySession& session);

/// Exact Shapley value via the permutation definition ("Perm-Shapley"):
/// averages marginal contributions over all n! client orderings. Requires
/// n <= 8; for larger n use EstimatePermShapleySeconds to extrapolate its
/// cost like the paper's Tables IV/V do.
Result<ValuationResult> ExactShapleyPermutation(UtilitySession& session);

/// Projected cost of Perm-Shapley: n! * n model evaluations at `tau`
/// seconds each (tau = mean train+evaluate cost of one FL model).
double EstimatePermShapleySeconds(int n, double tau);

/// Projected cost of exact MC-Shapley: 2^n evaluations at `tau` seconds.
double EstimateMcShapleySeconds(int n, double tau);

/// The MC-scheme weight loop of ExactShapleyMc in isolation: exact SV
/// from a full subset-utility table `u` where `u[mask]` is U(S) for the
/// coalition whose members are the set bits of `mask` (2^n entries).
/// Shared by the one-shot path and the resumable ExactMcSweep so both
/// produce bit-identical values from the same utilities.
std::vector<double> McShapleyFromSubsetUtilities(
    int n, const std::vector<double>& u);

/// CC-scheme counterpart of McShapleyFromSubsetUtilities.
std::vector<double> CcShapleyFromSubsetUtilities(
    int n, const std::vector<double>& u);

}  // namespace fedshap

#endif  // FEDSHAP_CORE_EXACT_H_
