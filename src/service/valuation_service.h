#ifndef FEDSHAP_SERVICE_VALUATION_SERVICE_H_
#define FEDSHAP_SERVICE_VALUATION_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/resumable.h"
#include "core/valuation_result.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "fl/utility_store.h"
#include "service/job_spec.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// The multi-tenant valuation job service: many concurrent valuation
/// jobs over shared, deduplicated utility evaluations.
///
/// Every job is one valuation run (a JobSpec: workload + estimator +
/// budget). The service keys workloads by content fingerprint and gives
/// all jobs of one workload a single shared UtilityCache (and, when a
/// state directory is configured, a single shared on-disk UtilityStore),
/// so a coalition trained for job A is a free cache hit for job B — the
/// cache's single-flight guarantee holds *across* jobs: under any
/// concurrency each distinct coalition is trained at most once per
/// workload, ever. Per-job accounting stays exact through per-job
/// UtilitySessions (each job still charges the recorded training cost of
/// every coalition it asked for, so reported costs are those of an
/// isolated run; `num_fresh_trainings` records what the job really
/// computed).
///
/// Resumable estimators run in checkpointed slices: after every
/// `JobSpec::checkpoint_every` work units the estimator snapshot is
/// written to the state directory and the job goes to the back of the
/// run queue, which both bounds crash loss and round-robins workers
/// across jobs. A stopped or killed service restarts with `Recover()`:
/// completed jobs are served from their persisted results, in-flight
/// jobs resume from their snapshots and the shared store, and every
/// resumed job finishes bit-identical to an uninterrupted run (the
/// property tests/service_test.cc asserts).

/// Lifecycle state of a job.
enum class JobState {
  kQueued,     ///< Submitted, waiting for a worker.
  kRunning,    ///< A worker is executing a slice right now.
  kDone,       ///< Finished; the result is available.
  kFailed,     ///< The estimator returned an error; see JobStatus::error.
  kCancelled,  ///< Cancelled before completion.
};

/// Stable lowercase name of `state` ("queued", "running", ...).
const char* JobStateName(JobState state);

/// A point-in-time snapshot of one job, as returned by GetStatus/ListJobs.
struct JobStatus {
  /// The job's unique name.
  std::string name;
  /// Current lifecycle state.
  JobState state = JobState::kQueued;
  /// The submitted spec.
  JobSpec spec;
  /// Work units done / total for resumable estimators (0/1 for one-shot
  /// estimators, which cannot report intra-run progress).
  size_t completed_units = 0;
  /// Total work units (0 until the workload is built for one-shots).
  size_t total_units = 0;
  /// The finished result; meaningful only when state == kDone.
  ValuationResult result;
  /// The failure message; meaningful only when state == kFailed.
  std::string error;
  /// Content fingerprint of the job's workload (0 for recovered done
  /// jobs, whose workload is never rebuilt).
  uint64_t workload_fingerprint = 0;
};

/// Aggregate service counters, for throughput reporting and ops.
struct ServiceStats {
  /// Jobs accepted over the service's lifetime (including recovered).
  size_t jobs_submitted = 0;
  /// Jobs currently in a terminal state, by kind.
  size_t jobs_done = 0;
  /// Jobs that failed.
  size_t jobs_failed = 0;
  /// Jobs that were cancelled.
  size_t jobs_cancelled = 0;
  /// Checkpointed slices executed so far.
  size_t slices_executed = 0;
  /// Distinct workload contexts (shared cache+store instances) built.
  size_t workloads = 0;
  /// FL trainings actually computed by this process, across workloads.
  size_t trainings_computed = 0;
  /// Trainings served read-through from persistent stores.
  size_t trainings_preloaded = 0;
  /// Live records across all attached stores.
  size_t store_entries = 0;
  /// Sealed segments across all attached stores.
  size_t store_segments = 0;
  /// On-disk bytes (sealed + active) across all attached stores.
  uint64_t store_bytes = 0;
  /// Memory-mapped bytes across all attached stores.
  uint64_t store_mapped_bytes = 0;
  /// Segment unmaps forced by the mapped-byte budget.
  size_t store_evictions = 0;
  /// Compactions completed across all attached stores.
  size_t store_compactions = 0;
  /// Trainings the speculative prefetcher ran ahead of demand (fresh
  /// cache misses computed by the prefetch thread, across all jobs).
  size_t prefetch_trainings = 0;
  /// Prefetched trainings credited to live jobs' sessions.
  size_t prefetch_credited = 0;
  /// Credited prefetch trainings the owning job went on to evaluate
  /// (the prefetcher's hit-ahead count; see UtilitySession).
  size_t prefetch_consumed = 0;
};

/// Configuration of a ValuationService.
class ClusterDispatcher;

struct ServiceConfig {
  /// Worker threads executing job slices; this is the number of jobs
  /// that make progress concurrently (within a slice, evaluation is
  /// sequential — cross-job concurrency is the parallelism axis, and the
  /// single-flight cache turns overlapping jobs into free hits).
  int workers = 2;
  /// State directory for durable operation: job specs, estimator
  /// snapshots, finished results and the per-workload utility stores all
  /// live here, and Recover() resumes from it after a restart. Empty
  /// runs the service fully in memory (nothing survives the process).
  std::string state_dir;
  /// Flush the utility store to disk after this many appended record
  /// bytes (1 = after every training; the crash-loss bound, see
  /// UtilityCache::AttachStore).
  size_t store_flush_bytes = 1;
  /// Testing hook: when > 0, the service halts (stops scheduling slices,
  /// as if Stop() were called) after this many slices in total —
  /// a deterministic way to simulate a mid-job shutdown.
  size_t max_slices = 0;
  /// Start with scheduling paused: workers idle until Resume(). Lets a
  /// caller Recover() and inspect/cancel jobs (fedshapd --status) without
  /// recovered jobs starting to execute.
  bool paused = false;
  /// When set, the service runs as a cluster coordinator: every
  /// per-workload cache miss is shipped to the dispatcher's sharded
  /// workers instead of training locally. Estimator state, checkpoints
  /// and the fresh-training accounting stay on the coordinator, so
  /// values are bit-identical to a clusterless run at any worker count.
  /// Not owned; must outlive the service.
  ClusterDispatcher* cluster = nullptr;
};

/// The multi-tenant valuation job service. Thread-safe: all public
/// methods may be called from any thread.
class ValuationService {
 public:
  /// Starts `config.workers` worker threads immediately. When
  /// `config.state_dir` is set, the directory layout is created on
  /// first use; call Recover() to load a previous process's jobs.
  explicit ValuationService(const ServiceConfig& config);

  /// Stops the service (checkpointing in-flight jobs) and joins workers.
  ~ValuationService();

  ValuationService(const ValuationService&) = delete;
  ValuationService& operator=(const ValuationService&) = delete;

  /// Re-loads every job persisted in the state directory: jobs with a
  /// saved result enter the table as done; unfinished jobs are
  /// re-submitted, resumable ones restoring their estimator snapshot.
  /// No-op without a state directory. Call before submitting new work.
  Status Recover();

  /// Accepts a job. Builds (or reuses) the workload context
  /// synchronously — expect tens of milliseconds for a "digits" scenario
  /// on first submit — then enqueues the job and returns. Fails with
  /// AlreadyExists when the name is taken (including by a finished job
  /// still in the table: names are durable identities; Purge first to
  /// reuse one).
  Status Submit(const JobSpec& spec);

  /// Snapshot of one job's state. NotFound for unknown names.
  Result<JobStatus> GetStatus(const std::string& name) const;

  /// Snapshot of every known job, in name order.
  std::vector<JobStatus> ListJobs() const;

  /// Requests cancellation. A queued job cancels immediately; a running
  /// job cancels after its current slice (one-shot estimators cannot be
  /// interrupted mid-run and cancel only if still queued). Cancelling
  /// deletes the job's persisted state. FailedPrecondition when the job
  /// is already terminal.
  Status Cancel(const std::string& name);

  /// Removes a *terminal* job from the table and deletes its persisted
  /// state (spec, snapshot, result — not the shared utility store).
  /// FailedPrecondition while the job is queued or running.
  Status Purge(const std::string& name);

  /// Blocks until `name` reaches a terminal state (or the service
  /// halts), then returns its result: the ValuationResult when done, an
  /// error describing the failure/cancellation otherwise.
  Result<ValuationResult> Wait(const std::string& name);

  /// Blocks until every submitted job is terminal. Returns false when
  /// the service halted (Stop() or the max_slices test hook) with jobs
  /// still unfinished.
  bool WaitAll();

  /// Graceful shutdown: workers finish their current slice (writing its
  /// checkpoint), every attached store is flushed, and the worker
  /// threads are joined. Idempotent; implied by the destructor. In-flight
  /// jobs stay queued on disk for the next Recover().
  void Stop();

  /// True once Stop() ran or the max_slices halt tripped.
  bool halted() const;

  /// Starts scheduling when the service was created paused. No-op
  /// otherwise.
  void Resume();

  /// Current aggregate counters.
  ServiceStats stats() const;

 private:
  /// One workload context: the utility function plus the shared
  /// evaluation substrate every job of this workload routes through.
  struct Workload {
    std::string key;                       ///< ScenarioSpec::CanonicalKey().
    uint64_t fingerprint = 0;              ///< Utility content fingerprint.
    std::unique_ptr<UtilityFunction> utility;
    /// Cluster mode only: the ClusterUtility the cache wraps instead of
    /// `utility`, routing misses to the sharded workers. `utility` is
    /// still built locally — it provides the fingerprint the handshake
    /// verifies and the identity the store binds to.
    std::unique_ptr<UtilityFunction> remote;
    std::unique_ptr<UtilityCache> cache;   ///< Shared across jobs.
    std::unique_ptr<UtilityStore> store;   ///< Null without a state dir.
  };

  /// Internal job record. The estimator/session members are only
  /// touched by the worker currently running the job (a job is claimed
  /// by at most one worker at a time); the mirrored progress counters
  /// are what GetStatus reads under the service mutex.
  struct Job {
    JobSpec spec;
    JobState state = JobState::kQueued;
    std::shared_ptr<Workload> workload;
    /// Shared so a pending prefetch plan can keep crediting the session
    /// even if the job is purged before the plan drains.
    std::shared_ptr<UtilitySession> session;
    std::unique_ptr<ResumableEstimator> sweep;  ///< Null for one-shots.
    ValuationResult result;
    std::string error;
    bool cancel_requested = false;
    size_t completed_units = 0;
    size_t total_units = 0;
  };

  /// Returns the shared workload context for `scenario`, building it
  /// (data generation, store open + preload) when absent. The expensive
  /// build runs *outside* the service mutex so workers and status
  /// queries are never stalled behind it; two racing builders of the
  /// same key both build, and the loser's context is discarded.
  /// One unit of speculative work for the prefetch thread: coalitions a
  /// job's estimator has committed to evaluating next (from
  /// ResumableEstimator::PeekNext), plus shared ownership of everything
  /// needed to train and credit them after the job itself is gone.
  struct PrefetchPlan {
    std::shared_ptr<Workload> workload;
    std::shared_ptr<UtilitySession> session;
    std::vector<Coalition> coalitions;
  };

  Result<std::shared_ptr<Workload>> GetOrBuildWorkload(
      const ScenarioSpec& scenario);
  /// Submit with everything expensive (workload build, snapshot
  /// restore, spec persistence) done unlocked; only the name
  /// reservation and queue insertion hold the mutex.
  Status SubmitInternal(const JobSpec& spec, bool restore_snapshot);
  void WorkerLoop();
  /// The speculative prefetch thread: drains queued PrefetchPlans,
  /// training each planned coalition through the workload's shared cache
  /// — but only while WorkerBudget::Global() has an idle slot to lease,
  /// so speculation never starves demand work. Fresh trainings are
  /// credited to the owning job's session (exact num_fresh_trainings).
  void PrefetchLoop();
  /// Queues a prefetch plan for `job` (no-op when the job's spec disables
  /// prefetch or its estimator cannot peek). Caller must hold mutex_ and
  /// guarantee the job's sweep is quiescent (not owned by a worker).
  void QueuePrefetchLocked(Job& job);
  /// Fences the prefetcher for a finishing job: discards its queued
  /// plans and waits out any in-flight plan for `session`, so every
  /// credit lands before the result's counters are materialized
  /// (num_fresh_trainings in the final ValuationResult stays exact).
  /// Must be called without mutex_ held.
  void DrainPrefetchForSession(const UtilitySession* session);
  /// Runs one slice of `job` outside the lock; re-acquires it to record
  /// the transition. `lock` must be held on entry and is held on return.
  void RunSlice(const std::string& name, Job& job,
                std::unique_lock<std::mutex>& lock);
  void FinalizeLocked(const std::string& name, Job& job, JobState state);
  JobStatus StatusOfLocked(const std::string& name, const Job& job) const;
  std::string JobFilePath(const std::string& name, const char* suffix) const;
  void RemoveJobFiles(const std::string& name) const;
  void FlushStoresLocked();

  const ServiceConfig config_;
  mutable std::mutex mutex_;
  /// Serializes Stop()'s join/flush phase so concurrent Stop() calls
  /// (e.g. an explicit Stop racing the destructor) are safe.
  std::mutex stop_mutex_;
  std::condition_variable runnable_;      ///< Signals queue activity.
  std::condition_variable state_changed_; ///< Signals job transitions.
  std::map<std::string, std::unique_ptr<Job>> jobs_;
  std::map<std::string, std::shared_ptr<Workload>> workloads_;
  std::deque<std::string> queue_;
  std::vector<std::thread> workers_;
  std::thread prefetcher_;
  std::condition_variable prefetch_ready_;  ///< Signals prefetch_queue_.
  std::condition_variable prefetch_idle_;   ///< Signals end of a plan.
  std::deque<PrefetchPlan> prefetch_queue_;
  /// Session of the plan the prefetch thread is working right now (null
  /// when idle); what DrainPrefetchForSession waits on.
  const UtilitySession* prefetch_active_session_ = nullptr;
  bool stopping_ = false;
  bool paused_ = false;
  size_t slices_executed_ = 0;
  size_t jobs_submitted_ = 0;
  size_t prefetch_trainings_ = 0;
};

}  // namespace fedshap

#endif  // FEDSHAP_SERVICE_VALUATION_SERVICE_H_
