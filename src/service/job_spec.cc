#include "service/job_spec.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "baselines/cc_shapley.h"
#include "baselines/extended_gtb.h"
#include "baselines/extended_tmc.h"
#include "core/alternatives.h"
#include "core/exact.h"
#include "core/ipss.h"
#include "core/kgreedy.h"
#include "core/stratified.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "ml/logistic_regression.h"

namespace fedshap {

namespace {

// ---------------------------------------------------------------------------
// Scenario building

Result<std::unique_ptr<UtilityFunction>> BuildDigits(
    const ScenarioSpec& spec) {
  DigitsConfig digits;
  digits.image_size = 6;
  digits.num_classes = 5;
  digits.num_writers = 2 * spec.n;
  digits.pixel_noise = 0.3;
  Rng rng(spec.seed);
  FEDSHAP_ASSIGN_OR_RETURN(
      FederatedSource source,
      GenerateDigits(digits, 120 * spec.n + 200, rng));

  const size_t test_rows = 200;
  const size_t train_rows = source.data.size() - test_rows;
  FederatedSource train;
  train.num_groups = source.num_groups;
  train.data = source.data.Head(train_rows);
  train.group_ids.assign(source.group_ids.begin(),
                         source.group_ids.begin() + train_rows);
  std::vector<size_t> test_idx;
  test_idx.reserve(test_rows);
  for (size_t i = train_rows; i < source.data.size(); ++i) {
    test_idx.push_back(i);
  }
  Dataset test = source.data.Subset(test_idx);

  Result<std::vector<Dataset>> clients =
      Status::InvalidArgument("unset partition");
  if (spec.partition == "bygroup") {
    clients = PartitionByGroup(train, spec.n, rng);
  } else {
    PartitionConfig part;
    part.num_clients = spec.n;
    if (spec.partition == "iid") {
      part.scheme = PartitionScheme::kSameSizeSameDist;
    } else if (spec.partition == "skew") {
      part.scheme = PartitionScheme::kSameSizeDiffDist;
    } else if (spec.partition == "sizes") {
      part.scheme = PartitionScheme::kDiffSizeSameDist;
    } else if (spec.partition == "noisy") {
      part.scheme = PartitionScheme::kSameSizeNoisyLabel;
    } else {
      return Status::InvalidArgument("unknown partition '" + spec.partition +
                                     "' (bygroup|iid|skew|sizes|noisy)");
    }
    clients = PartitionDataset(train.data, part, rng);
  }
  FEDSHAP_RETURN_NOT_OK(clients.status());

  LogisticRegression prototype(test.num_features(), test.num_classes());
  Rng init(spec.seed + 17);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = spec.fl_rounds;
  config.local.epochs = spec.local_epochs;
  config.local.batch_size = spec.batch_size;
  config.local.learning_rate = spec.learning_rate;
  config.seed = spec.seed + 29;
  FEDSHAP_ASSIGN_OR_RETURN(
      std::unique_ptr<FedAvgUtility> utility,
      FedAvgUtility::Create(std::move(clients).value(), std::move(test),
                            prototype, config));
  return std::unique_ptr<UtilityFunction>(std::move(utility));
}

Result<std::unique_ptr<UtilityFunction>> BuildLinReg(
    const ScenarioSpec& spec) {
  LinearRegressionUtility::Params params;
  params.num_clients = spec.n;
  params.samples_per_client = spec.samples_per_client;
  params.noise_scale = spec.noise_scale;
  auto utility = std::make_unique<LinearRegressionUtility>(params);
  utility->Reseed(spec.seed);
  return std::unique_ptr<UtilityFunction>(std::move(utility));
}

// ---------------------------------------------------------------------------
// Token parsing

Result<int> ParseInteger(std::string_view key, std::string_view value) {
  errno = 0;
  char* end = nullptr;
  const std::string buffer(value);
  const long long parsed = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end == buffer.c_str() || *end != '\0' ||
      parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max()) {
    // The range check matters: silently truncating 2^32+1 to 1 would run
    // the job with a wrong budget instead of rejecting the line.
    return Status::InvalidArgument("bad integer for '" + std::string(key) +
                                   "': '" + buffer + "'");
  }
  return static_cast<int>(parsed);
}

Result<uint64_t> ParseUnsigned(std::string_view key, std::string_view value) {
  errno = 0;
  char* end = nullptr;
  const std::string buffer(value);
  const unsigned long long parsed = std::strtoull(buffer.c_str(), &end, 10);
  if (errno != 0 || end == buffer.c_str() || *end != '\0' ||
      buffer.find('-') != std::string::npos) {
    return Status::InvalidArgument("bad unsigned integer for '" +
                                   std::string(key) + "': '" + buffer + "'");
  }
  return static_cast<uint64_t>(parsed);
}

Result<double> ParseReal(std::string_view key, std::string_view value) {
  errno = 0;
  char* end = nullptr;
  const std::string buffer(value);
  const double parsed = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end == buffer.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad number for '" + std::string(key) +
                                   "': '" + buffer + "'");
  }
  return parsed;
}

/// %.17g: the shortest printf format that round-trips every double.
std::string FormatReal(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool IsValidName(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

struct EstimatorNameEntry {
  EstimatorKind kind;
  const char* token;
};

constexpr EstimatorNameEntry kEstimatorNames[] = {
    {EstimatorKind::kIpss, "ipss"},
    {EstimatorKind::kAdaptiveIpss, "adaptive-ipss"},
    {EstimatorKind::kStratified, "stratified"},
    {EstimatorKind::kExactMc, "exact-mc"},
    {EstimatorKind::kExactCc, "exact-cc"},
    {EstimatorKind::kExactPerm, "exact-perm"},
    {EstimatorKind::kPermMc, "perm-mc"},
    {EstimatorKind::kKGreedy, "kgreedy"},
    {EstimatorKind::kExtTmc, "ext-tmc"},
    {EstimatorKind::kExtGtb, "ext-gtb"},
    {EstimatorKind::kCcShapley, "cc-shapley"},
    {EstimatorKind::kLeaveOneOut, "loo"},
    {EstimatorKind::kBanzhaf, "banzhaf"},
};

}  // namespace

const char* EstimatorKindName(EstimatorKind kind) {
  for (const EstimatorNameEntry& entry : kEstimatorNames) {
    if (entry.kind == kind) return entry.token;
  }
  return "unknown";
}

Result<EstimatorKind> ParseEstimatorKind(std::string_view token) {
  for (const EstimatorNameEntry& entry : kEstimatorNames) {
    if (token == entry.token) return entry.kind;
  }
  std::string known;
  for (const EstimatorNameEntry& entry : kEstimatorNames) {
    if (!known.empty()) known += "|";
    known += entry.token;
  }
  return Status::InvalidArgument("unknown estimator '" + std::string(token) +
                                 "' (" + known + ")");
}

bool IsResumable(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kIpss:
    case EstimatorKind::kStratified:
    case EstimatorKind::kExactMc:
    case EstimatorKind::kExactCc:
    case EstimatorKind::kPermMc:
      return true;
    default:
      return false;
  }
}

Result<std::unique_ptr<UtilityFunction>> ScenarioSpec::Build() const {
  if (n < 2 || n > 24) {
    return Status::InvalidArgument("scenario n must be in [2, 24], got " +
                                   std::to_string(n));
  }
  if (kind == "digits") return BuildDigits(*this);
  if (kind == "linreg") return BuildLinReg(*this);
  return Status::InvalidArgument("unknown scenario kind '" + kind +
                                 "' (digits|linreg)");
}

std::string ScenarioSpec::CanonicalKey() const {
  std::string key = "kind=" + kind + " n=" + std::to_string(n) +
                    " seed=" + std::to_string(seed);
  if (kind == "digits") {
    key += " partition=" + partition +
           " rounds=" + std::to_string(fl_rounds) +
           " epochs=" + std::to_string(local_epochs) +
           " batch=" + std::to_string(batch_size) +
           " lr=" + FormatReal(learning_rate);
  } else if (kind == "linreg") {
    key += " samples=" + std::to_string(samples_per_client) +
           " noise=" + FormatReal(noise_scale);
  }
  return key;
}

Result<JobSpec> JobSpec::FromLine(std::string_view line) {
  JobSpec spec;
  bool saw_name = false;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] == '#') break;
    size_t end = pos;
    while (end < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[end]))) {
      ++end;
    }
    const std::string_view token = line.substr(pos, end - pos);
    pos = end;

    const size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("job token is not key=value: '" +
                                     std::string(token) + "'");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);

    if (key == "name") {
      if (!IsValidName(value)) {
        return Status::InvalidArgument(
            "job name must match [A-Za-z0-9_.-]+, got '" +
            std::string(value) + "'");
      }
      spec.name = std::string(value);
      saw_name = true;
    } else if (key == "estimator") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.estimator, ParseEstimatorKind(value));
    } else if (key == "gamma") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.gamma, ParseInteger(key, value));
    } else if (key == "k") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.k, ParseInteger(key, value));
    } else if (key == "seed") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.seed, ParseUnsigned(key, value));
    } else if (key == "chunk") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.checkpoint_every,
                               ParseInteger(key, value));
    } else if (key == "allocation") {
      spec.allocation = std::string(value);
    } else if (key == "prefetch") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.prefetch, ParseInteger(key, value));
    } else if (key == "fuse") {
      if (value == "on") {
        spec.fuse = true;
      } else if (value == "off") {
        spec.fuse = false;
      } else {
        return Status::InvalidArgument("bad value for 'fuse': '" +
                                       std::string(value) + "' (on|off)");
      }
    } else if (key == "scenario") {
      spec.scenario.kind = std::string(value);
    } else if (key == "n") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.n, ParseInteger(key, value));
    } else if (key == "partition") {
      spec.scenario.partition = std::string(value);
    } else if (key == "scenario-seed") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.seed,
                               ParseUnsigned(key, value));
    } else if (key == "rounds") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.fl_rounds,
                               ParseInteger(key, value));
    } else if (key == "epochs") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.local_epochs,
                               ParseInteger(key, value));
    } else if (key == "batch") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.batch_size,
                               ParseInteger(key, value));
    } else if (key == "lr") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.learning_rate,
                               ParseReal(key, value));
    } else if (key == "samples") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.samples_per_client,
                               ParseInteger(key, value));
    } else if (key == "noise") {
      FEDSHAP_ASSIGN_OR_RETURN(spec.scenario.noise_scale,
                               ParseReal(key, value));
    } else {
      return Status::InvalidArgument("unknown job key '" + std::string(key) +
                                     "'");
    }
  }
  if (!saw_name) {
    return Status::InvalidArgument("job line is missing name=<job-name>");
  }
  if (spec.gamma < 1) {
    return Status::InvalidArgument("gamma must be >= 1");
  }
  if (spec.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (spec.checkpoint_every < 1) {
    return Status::InvalidArgument("chunk must be >= 1");
  }
  if (spec.prefetch < 0) {
    return Status::InvalidArgument("prefetch must be >= 0");
  }
  if (spec.allocation != "fixed" && spec.allocation != "neyman") {
    return Status::InvalidArgument("unknown allocation '" + spec.allocation +
                                   "' (fixed|neyman)");
  }
  if (spec.allocation == "neyman" &&
      spec.estimator != EstimatorKind::kStratified) {
    return Status::InvalidArgument(
        "allocation=neyman requires estimator=stratified");
  }
  return spec;
}

std::string JobSpec::ToLine() const {
  std::string line = "name=" + name +
                     " estimator=" + EstimatorKindName(estimator) +
                     " gamma=" + std::to_string(gamma) +
                     " k=" + std::to_string(k) +
                     " seed=" + std::to_string(seed) +
                     " chunk=" + std::to_string(checkpoint_every) +
                     " allocation=" + allocation +
                     " prefetch=" + std::to_string(prefetch) +
                     " fuse=" + (fuse ? "on" : "off") +
                     " scenario=" + scenario.kind +
                     " n=" + std::to_string(scenario.n) +
                     " scenario-seed=" + std::to_string(scenario.seed);
  if (scenario.kind == "digits") {
    line += " partition=" + scenario.partition +
            " rounds=" + std::to_string(scenario.fl_rounds) +
            " epochs=" + std::to_string(scenario.local_epochs) +
            " batch=" + std::to_string(scenario.batch_size) +
            " lr=" + FormatReal(scenario.learning_rate);
  } else if (scenario.kind == "linreg") {
    line += " samples=" + std::to_string(scenario.samples_per_client) +
            " noise=" + FormatReal(scenario.noise_scale);
  }
  return line;
}

Result<std::vector<JobSpec>> ParseJobFile(std::string_view contents) {
  std::vector<JobSpec> specs;
  size_t start = 0;
  int line_number = 0;
  while (start <= contents.size()) {
    size_t newline = contents.find('\n', start);
    if (newline == std::string_view::npos) newline = contents.size();
    const std::string_view line = contents.substr(start, newline - start);
    start = newline + 1;
    ++line_number;

    bool blank = true;
    for (char c : line) {
      if (c == '#') break;
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) {
      if (newline == contents.size()) break;
      continue;
    }

    Result<JobSpec> spec = JobSpec::FromLine(line);
    if (!spec.ok()) {
      return Status::InvalidArgument(
          "job file line " + std::to_string(line_number) + ": " +
          spec.status().message());
    }
    for (const JobSpec& existing : specs) {
      if (existing.name == spec->name) {
        return Status::InvalidArgument("job file line " +
                                       std::to_string(line_number) +
                                       ": duplicate job name '" +
                                       spec->name + "'");
      }
    }
    specs.push_back(std::move(spec).value());
    if (newline == contents.size()) break;
  }
  return specs;
}

namespace {
constexpr uint8_t kScenarioSpecCodecVersion = 1;
}  // namespace

void EncodeScenarioSpec(const ScenarioSpec& spec, ByteWriter& writer) {
  writer.PutU8(kScenarioSpecCodecVersion);
  writer.PutString(spec.kind);
  writer.PutVarint(static_cast<uint64_t>(spec.n));
  writer.PutString(spec.partition);
  writer.PutVarint(spec.seed);
  writer.PutVarint(static_cast<uint64_t>(spec.fl_rounds));
  writer.PutVarint(static_cast<uint64_t>(spec.local_epochs));
  writer.PutVarint(static_cast<uint64_t>(spec.batch_size));
  writer.PutDouble(spec.learning_rate);
  writer.PutVarint(static_cast<uint64_t>(spec.samples_per_client));
  writer.PutDouble(spec.noise_scale);
}

Result<ScenarioSpec> DecodeScenarioSpec(ByteReader& reader) {
  FEDSHAP_ASSIGN_OR_RETURN(uint8_t version, reader.GetU8());
  if (version == 0 || version > kScenarioSpecCodecVersion) {
    return Status::InvalidArgument("unsupported ScenarioSpec codec version " +
                                   std::to_string(version));
  }
  ScenarioSpec spec;
  FEDSHAP_ASSIGN_OR_RETURN(spec.kind, reader.GetString());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t n, reader.GetVarint());
  spec.n = static_cast<int>(n);
  FEDSHAP_ASSIGN_OR_RETURN(spec.partition, reader.GetString());
  FEDSHAP_ASSIGN_OR_RETURN(spec.seed, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t rounds, reader.GetVarint());
  spec.fl_rounds = static_cast<int>(rounds);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t epochs, reader.GetVarint());
  spec.local_epochs = static_cast<int>(epochs);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t batch, reader.GetVarint());
  spec.batch_size = static_cast<int>(batch);
  FEDSHAP_ASSIGN_OR_RETURN(spec.learning_rate, reader.GetDouble());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t samples, reader.GetVarint());
  spec.samples_per_client = static_cast<int>(samples);
  FEDSHAP_ASSIGN_OR_RETURN(spec.noise_scale, reader.GetDouble());
  return spec;
}

Result<std::unique_ptr<ResumableEstimator>> MakeSweep(const JobSpec& spec,
                                                      int n) {
  switch (spec.estimator) {
    case EstimatorKind::kIpss: {
      IpssConfig config;
      config.total_rounds = spec.gamma;
      config.seed = spec.seed;
      return std::unique_ptr<ResumableEstimator>(
          std::make_unique<IpssSweep>(n, config));
    }
    case EstimatorKind::kStratified: {
      if (spec.allocation == "neyman") {
        AdaptiveAllocationConfig config;
        config.total_rounds = spec.gamma;
        config.seed = spec.seed;
        return std::unique_ptr<ResumableEstimator>(
            std::make_unique<AdaptiveStratifiedSweep>(n, config));
      }
      StratifiedConfig config;
      config.total_rounds = spec.gamma;
      config.seed = spec.seed;
      return std::unique_ptr<ResumableEstimator>(
          std::make_unique<StratifiedSweep>(n, config));
    }
    case EstimatorKind::kExactMc:
      return std::unique_ptr<ResumableEstimator>(
          std::make_unique<ExactSweep>(n, SvScheme::kMarginal));
    case EstimatorKind::kExactCc:
      return std::unique_ptr<ResumableEstimator>(
          std::make_unique<ExactSweep>(n, SvScheme::kComplementary));
    case EstimatorKind::kPermMc: {
      PermutationMcConfig config;
      config.permutations = std::max(1, spec.gamma / std::max(1, n));
      config.seed = spec.seed;
      return std::unique_ptr<ResumableEstimator>(
          std::make_unique<PermutationMcSweep>(n, config));
    }
    default:
      return Status::InvalidArgument(
          std::string("estimator '") + EstimatorKindName(spec.estimator) +
          "' is not resumable; it runs as a one-shot job");
  }
}

Result<ValuationResult> RunOneShot(const JobSpec& spec,
                                   UtilitySession& session) {
  switch (spec.estimator) {
    case EstimatorKind::kAdaptiveIpss: {
      AdaptiveIpssConfig config;
      config.max_rounds = spec.gamma;
      // A budget ceiling below the default starting budget is legal:
      // start at the ceiling instead of failing the config validation.
      config.initial_rounds = std::min(config.initial_rounds, spec.gamma);
      config.seed = spec.seed;
      return AdaptiveIpssShapley(session, config);
    }
    case EstimatorKind::kExactPerm:
      return ExactShapleyPermutation(session);
    case EstimatorKind::kKGreedy:
      return KGreedyShapley(session, spec.k);
    case EstimatorKind::kExtTmc: {
      ExtendedTmcConfig config;
      config.permutations = spec.gamma;
      config.seed = spec.seed;
      return ExtendedTmcShapley(session, config);
    }
    case EstimatorKind::kExtGtb: {
      ExtendedGtbConfig config;
      config.samples = spec.gamma;
      config.seed = spec.seed;
      return ExtendedGtbShapley(session, config);
    }
    case EstimatorKind::kCcShapley: {
      CcShapleyConfig config;
      config.rounds = spec.gamma;
      config.seed = spec.seed;
      return CcShapley(session, config);
    }
    case EstimatorKind::kLeaveOneOut:
      return LeaveOneOut(session);
    case EstimatorKind::kBanzhaf: {
      BanzhafConfig config;
      config.samples = spec.gamma;
      config.seed = spec.seed;
      return MonteCarloBanzhaf(session, config);
    }
    default:
      return Status::InvalidArgument(
          std::string("estimator '") + EstimatorKindName(spec.estimator) +
          "' is resumable; run it through MakeSweep");
  }
}

}  // namespace fedshap
