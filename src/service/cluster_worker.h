#ifndef FEDSHAP_SERVICE_CLUSTER_WORKER_H_
#define FEDSHAP_SERVICE_CLUSTER_WORKER_H_

#include <sys/types.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "fl/utility_store.h"
#include "service/cluster.h"
#include "util/fault_injector.h"
#include "util/framing.h"
#include "util/status.h"

namespace fedshap {

/// Configuration of one cluster worker process/thread.
struct ClusterWorkerOptions {
  /// This worker's shard index; names its store directory and log lines.
  int shard = 0;
  /// Root of the worker store tier; "" keeps trainings in memory only.
  /// Each worker persists under `<store_dir>/shard-<shard>` — sharding by
  /// coalition hash means a coalition always lands on the same shard, so
  /// the per-shard stores partition the cluster-wide training set without
  /// two writers ever sharing a segment file.
  std::string store_dir;
  /// Byte-counted store flush interval (see UtilityCache::AttachStore).
  size_t store_flush_bytes = 1;
  /// Interval of the liveness heartbeat the worker sends while (possibly
  /// long) trainings keep its main loop busy.
  int heartbeat_interval_ms = 200;
  /// Scripted faults for this worker; null falls back to
  /// FaultInjector::Global() (the FEDSHAP_FAULT_SPEC env hook).
  FaultInjector* faults = nullptr;
};

/// The worker half of the cluster: builds workloads announced by the
/// coordinator, trains assigned coalitions through its own UtilityCache
/// (optionally store-backed) and streams framed results back. Runs until
/// the coordinator sends Shutdown, the channel closes, or an injected
/// kill-worker fault fires.
class ClusterWorker {
 public:
  ClusterWorker(FrameChannel* channel, const ClusterWorkerOptions& options);

  /// Blocks in the serve loop. Returns OK on a clean shutdown or
  /// injected death; an error Status on protocol/build failures.
  Status Run();

 private:
  struct WorkloadContext {
    std::unique_ptr<UtilityFunction> utility;
    std::unique_ptr<UtilityCache> cache;
    std::unique_ptr<UtilityStore> store;
  };

  Status HandleWorkload(const Frame& frame);
  // Returns true when an injected kill-worker fault ends the serve loop.
  Result<bool> HandleAssign(const Frame& frame);
  Status SendResultFrame(const std::string& payload);

  FrameChannel* channel_;
  ClusterWorkerOptions options_;
  FaultInjector* faults_;
  std::map<std::string, WorkloadContext> workloads_;
  std::vector<std::string> held_results_;  // reorder-frame holdbacks
  uint64_t fresh_trainings_ = 0;
};

/// One-host cluster harness shared by tests, the bench and fedshapd:
/// spawns N workers — std::threads by default, fork()ed subprocesses on
/// request — over socketpairs and wires them into an owned
/// ClusterDispatcher. Start() forks before any dispatcher thread exists,
/// so subprocess workers never inherit a mid-operation lock.
struct LocalClusterOptions {
  int num_workers = 2;
  /// false: workers are threads in this process (fast, shares the
  /// process's kernel backend). true: workers are fork()ed children —
  /// real process deaths, used by the fault harness and fedshapd.
  bool fork_workers = false;
  std::string store_dir;  ///< Worker store tier root; "" = memory only.
  size_t store_flush_bytes = 1;
  int heartbeat_interval_ms = 200;
  /// Per-worker fault specs (FaultInjector::Parse syntax); shorter
  /// vectors leave the remaining workers fault-free. In fork mode the
  /// spec is installed as the child's global injector, so store-flush
  /// sites fire in the child too.
  std::vector<std::string> fault_specs;
  ClusterDispatcher::Options dispatcher;
};

class LocalCluster {
 public:
  static Result<std::unique_ptr<LocalCluster>> Start(
      const LocalClusterOptions& options);
  ~LocalCluster();

  ClusterDispatcher* dispatcher() { return dispatcher_.get(); }

  /// Forcibly kills worker `index`: SIGKILL for a subprocess worker, a
  /// socket shutdown (the worker sees EOF and exits) for a thread
  /// worker. The dispatcher notices via EOF/heartbeat and fails over.
  void KillWorker(int index);

  /// Stops the dispatcher and reaps every worker. Idempotent.
  void Shutdown();

 private:
  LocalCluster() = default;

  struct WorkerHandle {
    std::unique_ptr<FrameChannel> channel;  // worker end (thread mode)
    std::unique_ptr<FaultInjector> faults;  // thread mode only
    std::thread thread;
    pid_t pid = -1;
  };

  std::unique_ptr<ClusterDispatcher> dispatcher_;
  std::vector<std::unique_ptr<WorkerHandle>> workers_;
  bool shut_down_ = false;
};

}  // namespace fedshap

#endif  // FEDSHAP_SERVICE_CLUSTER_WORKER_H_
