#ifndef FEDSHAP_SERVICE_CLUSTER_WORKER_H_
#define FEDSHAP_SERVICE_CLUSTER_WORKER_H_

#include <sys/types.h>

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "fl/utility_store.h"
#include "service/cluster.h"
#include "util/fault_injector.h"
#include "util/framing.h"
#include "util/status.h"
#include "util/tcp_transport.h"

namespace fedshap {

/// Configuration of one cluster worker process/thread.
struct ClusterWorkerOptions {
  /// This worker's shard index; names its store directory and log lines.
  /// -1 lets the coordinator assign one in the Welcome reply (TCP workers
  /// joining a coordinator they have never met).
  int shard = 0;
  /// Root of the worker store tier; "" keeps trainings in memory only.
  /// Each worker persists under `<store_dir>/shard-<shard>` — sharding by
  /// coalition hash means a coalition always lands on the same shard, so
  /// the per-shard stores partition the cluster-wide training set without
  /// two writers ever sharing a segment file.
  std::string store_dir;
  /// Byte-counted store flush interval (see UtilityCache::AttachStore).
  size_t store_flush_bytes = 1;
  /// Interval of the liveness heartbeat the worker sends while (possibly
  /// long) trainings keep its main loop busy.
  int heartbeat_interval_ms = 200;
  /// Scripted faults for this worker; null falls back to
  /// FaultInjector::Global() (the FEDSHAP_FAULT_SPEC env hook).
  FaultInjector* faults = nullptr;
};

/// The worker half of the cluster: registers with the coordinator
/// (protocol version + shard identity + fingerprints of workloads it
/// already holds), builds workloads the coordinator announces, trains
/// assigned coalitions through its own UtilityCache (optionally
/// store-backed) and streams framed results back. Runs until the
/// coordinator sends Shutdown, the channel closes, or an injected
/// kill-worker fault fires.
///
/// A worker object outlives its channel: TcpWorkerClient keeps one
/// ClusterWorker across reconnects (AttachChannel + Run per session), so
/// built workloads, caches and stores stay warm while connections come
/// and go. Result frames are sent through the channel's fault hook, so a
/// scripted `partition` / `delay-frame` / `corrupt-frame` fires at a
/// deterministic result ordinal (heartbeats never consult the injector).
class ClusterWorker {
 public:
  ClusterWorker(FrameChannel* channel, const ClusterWorkerOptions& options);

  /// Points the worker at a (new) connection and clears per-connection
  /// state (reorder holdbacks, welcome/shutdown flags). Workload caches
  /// persist — the next Run() re-registers them by fingerprint.
  void AttachChannel(FrameChannel* channel);

  /// Registers, then blocks in the serve loop. Returns OK when the
  /// connection ended (EOF, clean Shutdown, injected death) and an error
  /// Status on fatal conditions: a coordinator Reject, a workload
  /// build/fingerprint failure.
  Status Run();

  /// True once the coordinator acknowledged this session's registration.
  bool welcomed() const { return welcomed_; }
  /// True when the last session ended with a coordinator Shutdown frame.
  bool shutdown_received() const { return shutdown_received_; }
  /// True when an injected kill-worker fault ended the last session.
  bool killed_by_fault() const { return killed_by_fault_; }
  /// The shard this worker serves (coordinator-assigned when started
  /// with shard = -1; meaningful once welcomed).
  int shard() const { return options_.shard; }

 private:
  struct WorkloadContext {
    std::unique_ptr<UtilityFunction> utility;
    std::unique_ptr<UtilityCache> cache;
    std::unique_ptr<UtilityStore> store;
    uint64_t fingerprint = 0;  // echoed in the next registration
  };

  Status HandleWorkload(const Frame& frame);
  // Returns true when an injected kill-worker fault ends the serve loop.
  Result<bool> HandleAssign(const Frame& frame);
  Status SendResultFrame(const std::string& payload);
  /// Sends a control frame, mapping send failures to Unavailable (the
  /// connection is lost; the session ends but the worker survives).
  Status SendControl(uint32_t type, const std::string& payload);

  FrameChannel* channel_;
  ClusterWorkerOptions options_;
  FaultInjector* faults_;
  std::map<std::string, WorkloadContext> workloads_;
  std::vector<std::string> held_results_;  // reorder-frame holdbacks
  uint64_t fresh_trainings_ = 0;
  bool welcomed_ = false;
  bool shutdown_received_ = false;
  bool killed_by_fault_ = false;
};

/// A TCP worker: dials the coordinator, registers, serves, and on any
/// non-fatal disconnect redials with capped exponential backoff and
/// deterministic seeded jitter (see ReconnectBackoffMs), resuming its
/// shard with warm caches. Fatal conditions — a coordinator Reject
/// (version or fingerprint mismatch), a workload build failure — stop
/// the client instead of retrying into the same wall.
struct TcpWorkerClientOptions {
  TcpEndpoint endpoint;
  ClusterWorkerOptions worker;  ///< worker.shard = -1: coordinator assigns.
  int connect_timeout_ms = 5000;
  int backoff_base_ms = 50;
  int backoff_cap_ms = 2000;
  uint64_t backoff_seed = 0;  ///< Jitter seed; replayable, per-worker.
  /// Consecutive failed dials before Run() gives up with the dial error.
  /// 0 retries until Stop().
  int max_connect_failures = 0;
};

class TcpWorkerClient {
 public:
  explicit TcpWorkerClient(const TcpWorkerClientOptions& options);
  ~TcpWorkerClient();

  TcpWorkerClient(const TcpWorkerClient&) = delete;
  TcpWorkerClient& operator=(const TcpWorkerClient&) = delete;

  /// Blocks in the connect/register/serve/reconnect loop until a clean
  /// coordinator Shutdown, an injected worker death, a fatal registration
  /// error, or Stop().
  Status Run();

  /// Stops the loop from another thread: wakes a backoff sleep and shuts
  /// the active connection down. Idempotent.
  void Stop();

  /// TCP sessions re-established after the first successful registration.
  size_t reconnects() const;
  /// Every backoff wait scheduled so far, in ms, in order — deterministic
  /// given the seed, so tests assert the exact schedule.
  std::vector<int> backoff_history() const;

 private:
  /// Sleeps the attempt's backoff; false when Stop() interrupted it.
  bool BackoffWait(int attempt);

  TcpWorkerClientOptions options_;
  ClusterWorker worker_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
  FrameChannel* active_channel_ = nullptr;  // guarded by mutex_
  size_t reconnects_ = 0;
  std::vector<int> backoff_history_;
};

/// One-host cluster harness shared by tests, the bench and fedshapd:
/// spawns N workers — std::threads by default, fork()ed subprocesses on
/// request — and wires them into an owned ClusterDispatcher, over either
/// transport. Start() forks before any dispatcher thread exists, so
/// subprocess workers never inherit a mid-operation lock (in TCP mode the
/// listener is bound first — a bound fd, not a thread — and the accept
/// loop starts only after every fork).
enum class ClusterTransport {
  kSocketPair,  ///< In-process socketpairs (single host).
  kTcp,         ///< Loopback TCP through the real listener/connector and
                ///< the registration handshake — what multi-node runs use.
};

struct LocalClusterOptions {
  int num_workers = 2;
  /// false: workers are threads in this process (fast, shares the
  /// process's kernel backend). true: workers are fork()ed children —
  /// real process deaths, used by the fault harness and fedshapd.
  bool fork_workers = false;
  ClusterTransport transport = ClusterTransport::kSocketPair;
  std::string store_dir;  ///< Worker store tier root; "" = memory only.
  size_t store_flush_bytes = 1;
  int heartbeat_interval_ms = 200;
  /// Per-worker fault specs (FaultInjector::Parse syntax); shorter
  /// vectors leave the remaining workers fault-free. In fork mode the
  /// spec is installed as the child's global injector, so store-flush
  /// sites fire in the child too.
  std::vector<std::string> fault_specs;
  ClusterDispatcher::Options dispatcher;
  // TCP-transport knobs (ignored for socketpairs).
  int connect_timeout_ms = 5000;
  int reconnect_base_ms = 50;
  int reconnect_cap_ms = 2000;
  /// How long Start() waits for every worker to register before failing.
  int start_timeout_ms = 10000;
};

class LocalCluster {
 public:
  static Result<std::unique_ptr<LocalCluster>> Start(
      const LocalClusterOptions& options);
  ~LocalCluster();

  ClusterDispatcher* dispatcher() { return dispatcher_.get(); }

  /// Forcibly kills worker `index`: SIGKILL for a subprocess worker, a
  /// client stop / socket shutdown for a thread worker. The dispatcher
  /// notices via EOF/heartbeat and fails over. A TCP thread worker killed
  /// this way stays down (its client stops reconnecting).
  void KillWorker(int index);

  /// Stops the dispatcher and reaps every worker. Idempotent.
  void Shutdown();

 private:
  LocalCluster() = default;

  struct WorkerHandle {
    std::unique_ptr<FrameChannel> channel;  // worker end (socketpair threads)
    std::unique_ptr<TcpWorkerClient> client;  // TCP thread workers
    std::unique_ptr<FaultInjector> faults;    // thread mode only
    std::thread thread;
    pid_t pid = -1;
  };

  std::unique_ptr<ClusterDispatcher> dispatcher_;
  std::vector<std::unique_ptr<WorkerHandle>> workers_;
  bool shut_down_ = false;
};

}  // namespace fedshap

#endif  // FEDSHAP_SERVICE_CLUSTER_WORKER_H_
