#include "service/cluster_worker.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {

namespace {

std::string EncodeResult(uint64_t task_id, uint64_t coalition_hash,
                         const UtilityRecord& record, bool fresh) {
  ByteWriter writer;
  writer.PutVarint(task_id);
  writer.PutU64(coalition_hash);
  writer.PutDouble(record.utility);
  writer.PutDouble(record.cost_seconds);
  writer.PutU8(fresh ? 1 : 0);
  return std::string(writer.bytes());
}

std::string EncodeError(uint64_t task_id, const std::string& message) {
  ByteWriter writer;
  writer.PutVarint(task_id);
  writer.PutString(message);
  return std::string(writer.bytes());
}

// Liveness beats sent from a side thread so a long training in the serve
// loop never looks like a dead worker to the coordinator.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameChannel* channel, int interval_ms,
                  const std::atomic<uint64_t>* trainings)
      : channel_(channel), interval_ms_(interval_ms), trainings_(trainings) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      wake_.wait_for(lock, std::chrono::milliseconds(interval_ms_));
      if (stop_) return;
      ByteWriter writer;
      writer.PutVarint(trainings_->load());
      if (!channel_->Send(cluster_proto::kHeartbeat, writer.bytes()).ok()) {
        return;  // coordinator gone; the serve loop will see EOF too
      }
    }
  }

  FrameChannel* channel_;
  const int interval_ms_;
  const std::atomic<uint64_t>* trainings_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace

ClusterWorker::ClusterWorker(FrameChannel* channel,
                             const ClusterWorkerOptions& options)
    : channel_(channel),
      options_(options),
      faults_(options.faults != nullptr ? options.faults
                                        : FaultInjector::Global()) {}

Status ClusterWorker::HandleWorkload(const Frame& frame) {
  ByteReader reader(frame.payload);
  FEDSHAP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
  FEDSHAP_ASSIGN_OR_RETURN(ScenarioSpec scenario, DecodeScenarioSpec(reader));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t fingerprint, reader.GetU64());
  if (workloads_.count(key) != 0) return Status::OK();  // re-announce
  WorkloadContext context;
  FEDSHAP_ASSIGN_OR_RETURN(context.utility, scenario.Build());
  if (context.utility->Fingerprint() != fingerprint) {
    // The worker rebuilt a different workload than the coordinator: an
    // environment skew that would silently corrupt values. Refuse.
    return Status::Internal(
        "workload fingerprint mismatch for '" + key +
        "': worker built a different utility than the coordinator");
  }
  context.cache = std::make_unique<UtilityCache>(context.utility.get());
  if (!options_.store_dir.empty()) {
    const std::string stem = options_.store_dir + "/shard-" +
                             std::to_string(options_.shard) + "/utilities";
    FEDSHAP_ASSIGN_OR_RETURN(
        context.store,
        OpenAndAttachStore(stem, /*resume=*/true, *context.utility,
                           *context.cache, options_.store_flush_bytes));
  }
  workloads_.emplace(std::move(key), std::move(context));
  return Status::OK();
}

Status ClusterWorker::SendResultFrame(const std::string& payload) {
  if (faults_ != nullptr && faults_->Fire(FaultSite::kDropFrame)) {
    FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                         << "] fault: dropping result frame";
    return Status::OK();
  }
  if (faults_ != nullptr && faults_->Fire(FaultSite::kReorderFrame)) {
    FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                         << "] fault: holding result frame back";
    held_results_.push_back(payload);
    return Status::OK();
  }
  FEDSHAP_RETURN_NOT_OK(channel_->Send(cluster_proto::kResult, payload));
  if (faults_ != nullptr && faults_->Fire(FaultSite::kDupFrame)) {
    FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                         << "] fault: duplicating result frame";
    FEDSHAP_RETURN_NOT_OK(channel_->Send(cluster_proto::kResult, payload));
  }
  // A held-back frame ships after the one that overtook it.
  std::vector<std::string> held;
  held.swap(held_results_);
  for (const std::string& frame_payload : held) {
    FEDSHAP_RETURN_NOT_OK(
        channel_->Send(cluster_proto::kResult, frame_payload));
  }
  return Status::OK();
}

Result<bool> ClusterWorker::HandleAssign(const Frame& frame) {
  ByteReader reader(frame.payload);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t task_id, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
  FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(reader));
  auto it = workloads_.find(key);
  if (it == workloads_.end()) {
    FEDSHAP_RETURN_NOT_OK(channel_->Send(
        cluster_proto::kError,
        EncodeError(task_id, "workload '" + key + "' not announced")));
    return false;
  }
  bool fresh = false;
  Result<UtilityRecord> record = it->second.cache->Get(coalition, &fresh);
  if (!record.ok()) {
    FEDSHAP_RETURN_NOT_OK(
        channel_->Send(cluster_proto::kError,
                       EncodeError(task_id, record.status().ToString())));
    return false;
  }
  if (fresh) {
    ++fresh_trainings_;
    if (faults_ != nullptr && faults_->Fire(FaultSite::kKillWorker)) {
      // Simulated crash after the training but before the result frame:
      // the work is lost in flight, exactly the window reassignment must
      // cover. No store flush, no goodbye — just a dead socket.
      FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                           << "] fault: dying after " << fresh_trainings_
                           << " trainings";
      channel_->Shutdown();
      return true;
    }
  }
  FEDSHAP_RETURN_NOT_OK(
      SendResultFrame(EncodeResult(task_id, coalition.Hash(), *record, fresh)));
  return false;
}

Status ClusterWorker::Run() {
  {
    ByteWriter hello;
    hello.PutVarint(static_cast<uint64_t>(options_.shard));
    hello.PutVarint(static_cast<uint64_t>(::getpid()));
    FEDSHAP_RETURN_NOT_OK(channel_->Send(cluster_proto::kHello, hello.bytes()));
  }
  std::atomic<uint64_t> trainings{0};
  HeartbeatThread heartbeat(channel_, options_.heartbeat_interval_ms,
                            &trainings);
  for (;;) {
    Result<std::optional<Frame>> received =
        channel_->Recv(options_.heartbeat_interval_ms);
    if (!received.ok()) {
      // Coordinator gone (or our own injected death closed the socket).
      return Status::OK();
    }
    if (!received->has_value()) {
      // Idle beat: flush any reorder-held frames so a holdback can only
      // delay a result, never strand it.
      if (!held_results_.empty()) {
        std::vector<std::string> held;
        held.swap(held_results_);
        for (const std::string& payload : held) {
          FEDSHAP_RETURN_NOT_OK(
              channel_->Send(cluster_proto::kResult, payload));
        }
      }
      continue;
    }
    const Frame& frame = **received;
    switch (frame.type) {
      case cluster_proto::kWorkload: {
        Status handled = HandleWorkload(frame);
        if (!handled.ok()) {
          FEDSHAP_LOG(Error) << "[cluster-worker " << options_.shard << "] "
                             << handled.ToString();
          return handled;
        }
        break;
      }
      case cluster_proto::kAssign: {
        Result<bool> killed = HandleAssign(frame);
        if (!killed.ok()) {
          FEDSHAP_LOG(Error) << "[cluster-worker " << options_.shard << "] "
                             << killed.status().ToString();
          return killed.status();
        }
        trainings.store(fresh_trainings_);
        if (*killed) return Status::OK();
        break;
      }
      case cluster_proto::kShutdown:
        for (auto& [key, context] : workloads_) {
          if (context.store != nullptr) (void)context.store->Flush();
        }
        return Status::OK();
      default:
        break;  // future message types are ignorable by old workers
    }
  }
}

Result<std::unique_ptr<LocalCluster>> LocalCluster::Start(
    const LocalClusterOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("cluster needs at least one worker");
  }
  // The FEDSHAP_FAULT_SPEC env script targets exactly one worker — the
  // shard FEDSHAP_FAULT_SHARD names (default 0) — so "kill-worker"
  // injects one deterministic death instead of wiping the cluster.
  const char* env_spec = std::getenv("FEDSHAP_FAULT_SPEC");
  const bool env_faults = env_spec != nullptr && env_spec[0] != '\0';
  int env_target = 0;
  if (const char* shard = std::getenv("FEDSHAP_FAULT_SHARD")) {
    env_target = std::atoi(shard);
  }
  std::unique_ptr<LocalCluster> cluster(new LocalCluster());
  // The dispatcher spins up no thread until AddWorker, so in fork mode
  // every child is created while this process is still single-threaded
  // (with respect to the cluster; see ClusterDispatcher::AddWorker).
  cluster->dispatcher_ =
      std::make_unique<ClusterDispatcher>(options.dispatcher);
  std::vector<std::unique_ptr<FrameChannel>> coordinator_ends;
  for (int i = 0; i < options.num_workers; ++i) {
    FEDSHAP_ASSIGN_OR_RETURN(auto pair, CreateChannelPair());
    auto handle = std::make_unique<WorkerHandle>();
    const std::string fault_spec =
        static_cast<size_t>(i) < options.fault_specs.size()
            ? options.fault_specs[static_cast<size_t>(i)]
            : std::string();
    ClusterWorkerOptions worker_options;
    worker_options.shard = i;
    worker_options.store_dir = options.store_dir;
    worker_options.store_flush_bytes = options.store_flush_bytes;
    worker_options.heartbeat_interval_ms = options.heartbeat_interval_ms;
    if (options.fork_workers) {
      pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal("fork of cluster worker failed");
      }
      if (pid == 0) {
        // Child: drop every coordinator-side fd inherited from the
        // parent, or a dead coordinator would never read as EOF.
        coordinator_ends.clear();
        std::unique_ptr<FrameChannel> mine = std::move(pair.second);
        pair.first.reset();
        if (!fault_spec.empty()) {
          Result<std::unique_ptr<FaultInjector>> parsed =
              FaultInjector::Parse(fault_spec);
          if (parsed.ok()) {
            FaultInjector::SetGlobal(std::move(parsed).value());
          }
        } else if (env_faults && i != env_target) {
          FaultInjector::SetGlobal(nullptr);  // script targets another shard
        }
        ClusterWorker worker(mine.get(), worker_options);
        Status served = worker.Run();
        ::_exit(served.ok() ? 0 : 1);
      }
      handle->pid = pid;
      pair.second.reset();  // parent keeps only the coordinator end
    } else {
      if (!fault_spec.empty()) {
        FEDSHAP_ASSIGN_OR_RETURN(handle->faults,
                                 FaultInjector::Parse(fault_spec));
        worker_options.faults = handle->faults.get();
      } else if (env_faults && i != env_target) {
        // Non-targeted thread workers get a never-firing injector so the
        // process-global env script cannot reach them.
        FEDSHAP_ASSIGN_OR_RETURN(handle->faults, FaultInjector::Parse(""));
        worker_options.faults = handle->faults.get();
      }
      handle->channel = std::move(pair.second);
      FrameChannel* channel = handle->channel.get();
      handle->thread = std::thread([channel, worker_options] {
        ClusterWorker worker(channel, worker_options);
        (void)worker.Run();
      });
    }
    coordinator_ends.push_back(std::move(pair.first));
    cluster->workers_.push_back(std::move(handle));
  }
  for (auto& end : coordinator_ends) {
    cluster->dispatcher_->AddWorker(std::move(end));
  }
  return cluster;
}

void LocalCluster::KillWorker(int index) {
  if (index < 0 || static_cast<size_t>(index) >= workers_.size()) return;
  WorkerHandle& handle = *workers_[static_cast<size_t>(index)];
  if (handle.pid > 0) {
    ::kill(handle.pid, SIGKILL);
  } else if (handle.channel != nullptr) {
    handle.channel->Shutdown();
  }
}

void LocalCluster::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (dispatcher_ != nullptr) dispatcher_->Shutdown();
  for (auto& handle : workers_) {
    if (handle->thread.joinable()) handle->thread.join();
    if (handle->pid > 0) {
      int wstatus = 0;
      ::waitpid(handle->pid, &wstatus, 0);
    }
  }
}

LocalCluster::~LocalCluster() { Shutdown(); }

}  // namespace fedshap
