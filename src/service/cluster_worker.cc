#include "service/cluster_worker.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <utility>

#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {

namespace {

std::string EncodeResult(uint64_t task_id, uint64_t coalition_hash,
                         const UtilityRecord& record, bool fresh) {
  ByteWriter writer;
  writer.PutVarint(task_id);
  writer.PutU64(coalition_hash);
  writer.PutDouble(record.utility);
  writer.PutDouble(record.cost_seconds);
  writer.PutU8(fresh ? 1 : 0);
  return std::string(writer.bytes());
}

std::string EncodeError(uint64_t task_id, const std::string& message) {
  ByteWriter writer;
  writer.PutVarint(task_id);
  writer.PutString(message);
  return std::string(writer.bytes());
}

// Errors that end the session but not the worker: the connection is gone
// (or stalled past its send deadline) and a reconnect may succeed.
bool IsConnectionLoss(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kDeadlineExceeded;
}

// Liveness beats sent from a side thread so a long training in the serve
// loop never looks like a dead worker to the coordinator.
class HeartbeatThread {
 public:
  HeartbeatThread(FrameChannel* channel, int interval_ms,
                  const std::atomic<uint64_t>* trainings)
      : channel_(channel), interval_ms_(interval_ms), trainings_(trainings) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      wake_.wait_for(lock, std::chrono::milliseconds(interval_ms_));
      if (stop_) return;
      ByteWriter writer;
      writer.PutVarint(trainings_->load());
      // Plain Send, never the fault hook: heartbeats are not part of the
      // deterministic per-site event streams the tests script.
      if (!channel_->Send(cluster_proto::kHeartbeat, writer.bytes()).ok()) {
        return;  // coordinator gone; the serve loop will see EOF too
      }
    }
  }

  FrameChannel* channel_;
  const int interval_ms_;
  const std::atomic<uint64_t>* trainings_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

}  // namespace

ClusterWorker::ClusterWorker(FrameChannel* channel,
                             const ClusterWorkerOptions& options)
    : channel_(channel),
      options_(options),
      faults_(options.faults != nullptr ? options.faults
                                        : FaultInjector::Global()) {}

void ClusterWorker::AttachChannel(FrameChannel* channel) {
  channel_ = channel;
  held_results_.clear();
  welcomed_ = false;
  shutdown_received_ = false;
  killed_by_fault_ = false;
}

Status ClusterWorker::HandleWorkload(const Frame& frame) {
  ByteReader reader(frame.payload);
  FEDSHAP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
  FEDSHAP_ASSIGN_OR_RETURN(ScenarioSpec scenario, DecodeScenarioSpec(reader));
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t fingerprint, reader.GetU64());
  if (workloads_.count(key) != 0) return Status::OK();  // re-announce
  WorkloadContext context;
  FEDSHAP_ASSIGN_OR_RETURN(context.utility, scenario.Build());
  if (context.utility->Fingerprint() != fingerprint) {
    // The worker rebuilt a different workload than the coordinator: an
    // environment skew that would silently corrupt values. Refuse.
    return Status::Internal(
        "workload fingerprint mismatch for '" + key +
        "': worker built a different utility than the coordinator");
  }
  context.fingerprint = fingerprint;
  context.cache = std::make_unique<UtilityCache>(context.utility.get());
  if (!options_.store_dir.empty()) {
    const std::string stem = options_.store_dir + "/shard-" +
                             std::to_string(options_.shard) + "/utilities";
    FEDSHAP_ASSIGN_OR_RETURN(
        context.store,
        OpenAndAttachStore(stem, /*resume=*/true, *context.utility,
                           *context.cache, options_.store_flush_bytes));
  }
  workloads_.emplace(std::move(key), std::move(context));
  return Status::OK();
}

Status ClusterWorker::SendControl(uint32_t type, const std::string& payload) {
  Status sent = channel_->Send(type, payload);
  if (!sent.ok() && !IsConnectionLoss(sent)) {
    return Status::Unavailable("connection lost: " + sent.message());
  }
  return sent;
}

Status ClusterWorker::SendResultFrame(const std::string& payload) {
  if (faults_ != nullptr && faults_->Fire(FaultSite::kDropFrame)) {
    FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                         << "] fault: dropping result frame";
    return Status::OK();
  }
  if (faults_ != nullptr && faults_->Fire(FaultSite::kReorderFrame)) {
    FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                         << "] fault: holding result frame back";
    held_results_.push_back(payload);
    return Status::OK();
  }
  // Result frames go through the channel's network-fault hook: this is
  // where a scripted partition / delay-frame / corrupt-frame fires, at a
  // deterministic result ordinal.
  FEDSHAP_RETURN_NOT_OK(
      channel_->SendFaulted(cluster_proto::kResult, payload, faults_));
  if (faults_ != nullptr && faults_->Fire(FaultSite::kDupFrame)) {
    FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                         << "] fault: duplicating result frame";
    FEDSHAP_RETURN_NOT_OK(
        channel_->SendFaulted(cluster_proto::kResult, payload, faults_));
  }
  // A held-back frame ships after the one that overtook it.
  std::vector<std::string> held;
  held.swap(held_results_);
  for (const std::string& frame_payload : held) {
    FEDSHAP_RETURN_NOT_OK(
        channel_->SendFaulted(cluster_proto::kResult, frame_payload, faults_));
  }
  return Status::OK();
}

Result<bool> ClusterWorker::HandleAssign(const Frame& frame) {
  ByteReader reader(frame.payload);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t task_id, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
  FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(reader));
  auto it = workloads_.find(key);
  if (it == workloads_.end()) {
    FEDSHAP_RETURN_NOT_OK(SendControl(
        cluster_proto::kError,
        EncodeError(task_id, "workload '" + key + "' not announced")));
    return false;
  }
  bool fresh = false;
  Result<UtilityRecord> record = it->second.cache->Get(coalition, &fresh);
  if (!record.ok()) {
    FEDSHAP_RETURN_NOT_OK(
        SendControl(cluster_proto::kError,
                    EncodeError(task_id, record.status().ToString())));
    return false;
  }
  if (fresh) {
    ++fresh_trainings_;
    if (faults_ != nullptr && faults_->Fire(FaultSite::kKillWorker)) {
      // Simulated crash after the training but before the result frame:
      // the work is lost in flight, exactly the window reassignment must
      // cover. No store flush, no goodbye — just a dead socket.
      FEDSHAP_LOG(Warning) << "[cluster-worker " << options_.shard
                           << "] fault: dying after " << fresh_trainings_
                           << " trainings";
      channel_->Shutdown();
      return true;
    }
  }
  FEDSHAP_RETURN_NOT_OK(
      SendResultFrame(EncodeResult(task_id, coalition.Hash(), *record, fresh)));
  return false;
}

Status ClusterWorker::Run() {
  welcomed_ = false;
  shutdown_received_ = false;
  killed_by_fault_ = false;
  {
    // Open the session with the registration handshake: protocol
    // version, the shard we want back (or -1 for "assign one"), and the
    // fingerprints of every workload already built — on a reconnect the
    // coordinator validates these and skips re-announcing.
    WorkerRegistration registration;
    registration.shard = options_.shard;
    registration.pid = static_cast<uint64_t>(::getpid());
    for (const auto& [key, context] : workloads_) {
      registration.workloads.emplace_back(key, context.fingerprint);
    }
    Status sent = channel_->Send(cluster_proto::kRegister,
                                 EncodeWorkerRegistration(registration));
    if (!sent.ok()) {
      return IsConnectionLoss(sent)
                 ? sent
                 : Status::Unavailable("connection lost: " + sent.message());
    }
  }
  std::atomic<uint64_t> trainings{0};
  HeartbeatThread heartbeat(channel_, options_.heartbeat_interval_ms,
                            &trainings);
  for (;;) {
    Result<std::optional<Frame>> received =
        channel_->Recv(options_.heartbeat_interval_ms);
    if (!received.ok()) {
      // Coordinator gone (or our own injected death closed the socket).
      return Status::OK();
    }
    if (!received->has_value()) {
      // Idle beat: flush any reorder-held frames so a holdback can only
      // delay a result, never strand it.
      if (!held_results_.empty()) {
        std::vector<std::string> held;
        held.swap(held_results_);
        for (const std::string& payload : held) {
          FEDSHAP_RETURN_NOT_OK(
              channel_->SendFaulted(cluster_proto::kResult, payload, faults_));
        }
      }
      continue;
    }
    const Frame& frame = **received;
    switch (frame.type) {
      case cluster_proto::kWelcome: {
        ByteReader reader(frame.payload);
        Result<uint64_t> version = reader.GetVarint();
        Result<uint64_t> shard = reader.GetVarint();
        if (!version.ok() || !shard.ok()) {
          return Status::Internal("malformed Welcome frame");
        }
        if (options_.shard < 0) options_.shard = static_cast<int>(*shard);
        welcomed_ = true;
        FEDSHAP_LOG(Info) << "[cluster-worker " << options_.shard
                          << "] registered with coordinator (protocol v"
                          << *version << ")";
        break;
      }
      case cluster_proto::kReject: {
        ByteReader reader(frame.payload);
        Result<std::string> message = reader.GetString();
        // Fatal by design: a version or fingerprint mismatch will not
        // heal by redialing the same coordinator.
        return Status::InvalidArgument(
            "registration rejected by coordinator: " +
            (message.ok() ? *message : std::string("(unreadable reason)")));
      }
      case cluster_proto::kWorkload: {
        Status handled = HandleWorkload(frame);
        if (!handled.ok()) {
          FEDSHAP_LOG(Error) << "[cluster-worker " << options_.shard << "] "
                             << handled.ToString();
          return handled;
        }
        break;
      }
      case cluster_proto::kAssign: {
        Result<bool> killed = HandleAssign(frame);
        if (!killed.ok()) {
          if (IsConnectionLoss(killed.status())) {
            FEDSHAP_LOG(Warning)
                << "[cluster-worker " << options_.shard
                << "] connection lost: " << killed.status().message();
            return Status::OK();  // session over; the worker survives
          }
          FEDSHAP_LOG(Error) << "[cluster-worker " << options_.shard << "] "
                             << killed.status().ToString();
          return killed.status();
        }
        trainings.store(fresh_trainings_);
        if (*killed) {
          killed_by_fault_ = true;
          return Status::OK();
        }
        break;
      }
      case cluster_proto::kShutdown:
        for (auto& [key, context] : workloads_) {
          if (context.store != nullptr) (void)context.store->Flush();
        }
        shutdown_received_ = true;
        return Status::OK();
      default:
        break;  // future message types are ignorable by old workers
    }
  }
}

TcpWorkerClient::TcpWorkerClient(const TcpWorkerClientOptions& options)
    : options_(options), worker_(nullptr, options.worker) {}

TcpWorkerClient::~TcpWorkerClient() { Stop(); }

bool TcpWorkerClient::BackoffWait(int attempt) {
  const int wait_ms =
      ReconnectBackoffMs(attempt, options_.backoff_base_ms,
                         options_.backoff_cap_ms, options_.backoff_seed);
  std::unique_lock<std::mutex> lock(mutex_);
  backoff_history_.push_back(wait_ms);
  wake_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                 [&] { return stopping_; });
  return !stopping_;
}

Status TcpWorkerClient::Run() {
  int attempt = 0;
  int consecutive_dial_failures = 0;
  bool ever_welcomed = false;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return Status::OK();
    }
    Result<std::unique_ptr<FrameChannel>> dialed = TcpConnect(
        options_.endpoint, options_.connect_timeout_ms, options_.worker.faults);
    if (!dialed.ok()) {
      ++consecutive_dial_failures;
      FEDSHAP_LOG(Warning) << "[cluster-worker] dial "
                           << options_.endpoint.ToString() << " failed ("
                           << consecutive_dial_failures
                           << "): " << dialed.status().message();
      if (options_.max_connect_failures > 0 &&
          consecutive_dial_failures >= options_.max_connect_failures) {
        return dialed.status();
      }
      if (!BackoffWait(attempt++)) return Status::OK();
      continue;
    }
    consecutive_dial_failures = 0;
    std::unique_ptr<FrameChannel> channel = std::move(*dialed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return Status::OK();
      active_channel_ = channel.get();
      if (ever_welcomed) ++reconnects_;
    }
    worker_.AttachChannel(channel.get());
    Status served = worker_.Run();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_channel_ = nullptr;
    }
    if (worker_.welcomed()) {
      // A registered session resets the backoff schedule: the next
      // outage starts from the base wait again.
      ever_welcomed = true;
      attempt = 0;
    }
    if (!served.ok() && !IsConnectionLoss(served)) {
      return served;  // Reject / build mismatch: retrying cannot help
    }
    if (worker_.shutdown_received()) return Status::OK();
    if (worker_.killed_by_fault()) return Status::OK();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return Status::OK();
    }
    if (!BackoffWait(attempt++)) return Status::OK();
  }
}

void TcpWorkerClient::Stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  stopping_ = true;
  if (active_channel_ != nullptr) active_channel_->Shutdown();
  wake_.notify_all();
}

size_t TcpWorkerClient::reconnects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reconnects_;
}

std::vector<int> TcpWorkerClient::backoff_history() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backoff_history_;
}

Result<std::unique_ptr<LocalCluster>> LocalCluster::Start(
    const LocalClusterOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("cluster needs at least one worker");
  }
  // The FEDSHAP_FAULT_SPEC env script targets exactly one worker — the
  // shard FEDSHAP_FAULT_SHARD names (default 0) — so "kill-worker"
  // injects one deterministic death instead of wiping the cluster.
  const char* env_spec = std::getenv("FEDSHAP_FAULT_SPEC");
  const bool env_faults = env_spec != nullptr && env_spec[0] != '\0';
  int env_target = 0;
  if (const char* shard = std::getenv("FEDSHAP_FAULT_SHARD")) {
    env_target = std::atoi(shard);
  }
  std::unique_ptr<LocalCluster> cluster(new LocalCluster());
  // The dispatcher spins up no thread until a worker attaches (or the
  // accept loop starts), so in fork mode every child is created while
  // this process is still single-threaded with respect to the cluster.
  cluster->dispatcher_ =
      std::make_unique<ClusterDispatcher>(options.dispatcher);

  const bool tcp = options.transport == ClusterTransport::kTcp;
  std::unique_ptr<TcpListener> listener;
  TcpEndpoint endpoint{"127.0.0.1", 0};
  if (tcp) {
    // Bind before forking (a bound fd is fork-safe; the accept loop
    // thread starts only after every child exists). Children inherit a
    // copy of the listening fd; harmless, they never accept on it and it
    // dies with them.
    FEDSHAP_ASSIGN_OR_RETURN(listener, TcpListener::Listen(endpoint));
    endpoint.port = listener->port();
  }

  std::vector<std::unique_ptr<FrameChannel>> coordinator_ends;
  for (int i = 0; i < options.num_workers; ++i) {
    auto handle = std::make_unique<WorkerHandle>();
    const std::string fault_spec =
        static_cast<size_t>(i) < options.fault_specs.size()
            ? options.fault_specs[static_cast<size_t>(i)]
            : std::string();
    ClusterWorkerOptions worker_options;
    worker_options.shard = i;
    worker_options.store_dir = options.store_dir;
    worker_options.store_flush_bytes = options.store_flush_bytes;
    worker_options.heartbeat_interval_ms = options.heartbeat_interval_ms;

    TcpWorkerClientOptions client_options;
    client_options.endpoint = endpoint;
    client_options.connect_timeout_ms = options.connect_timeout_ms;
    client_options.backoff_base_ms = options.reconnect_base_ms;
    client_options.backoff_cap_ms = options.reconnect_cap_ms;
    client_options.backoff_seed = static_cast<uint64_t>(i);

    if (options.fork_workers) {
      std::pair<std::unique_ptr<FrameChannel>, std::unique_ptr<FrameChannel>>
          pair;
      if (!tcp) {
        FEDSHAP_ASSIGN_OR_RETURN(pair, CreateChannelPair());
      }
      pid_t pid = ::fork();
      if (pid < 0) {
        return Status::Internal("fork of cluster worker failed");
      }
      if (pid == 0) {
        // Child: drop every coordinator-side fd inherited from the
        // parent, or a dead coordinator would never read as EOF.
        coordinator_ends.clear();
        listener.reset();
        std::unique_ptr<FrameChannel> mine = std::move(pair.second);
        pair.first.reset();
        if (!fault_spec.empty()) {
          Result<std::unique_ptr<FaultInjector>> parsed =
              FaultInjector::Parse(fault_spec);
          if (parsed.ok()) {
            FaultInjector::SetGlobal(std::move(parsed).value());
          }
        } else if (env_faults && i != env_target) {
          FaultInjector::SetGlobal(nullptr);  // script targets another shard
        }
        if (tcp) {
          client_options.worker = worker_options;
          TcpWorkerClient client(client_options);
          Status served = client.Run();
          ::_exit(served.ok() ? 0 : 1);
        }
        ClusterWorker worker(mine.get(), worker_options);
        Status served = worker.Run();
        ::_exit(served.ok() ? 0 : 1);
      }
      handle->pid = pid;
      if (!tcp) {
        pair.second.reset();  // parent keeps only the coordinator end
        coordinator_ends.push_back(std::move(pair.first));
      }
    } else {
      if (!fault_spec.empty()) {
        FEDSHAP_ASSIGN_OR_RETURN(handle->faults,
                                 FaultInjector::Parse(fault_spec));
        worker_options.faults = handle->faults.get();
      } else if (env_faults && i != env_target) {
        // Non-targeted thread workers get a never-firing injector so the
        // process-global env script cannot reach them.
        FEDSHAP_ASSIGN_OR_RETURN(handle->faults, FaultInjector::Parse(""));
        worker_options.faults = handle->faults.get();
      }
      if (tcp) {
        client_options.worker = worker_options;
        handle->client = std::make_unique<TcpWorkerClient>(client_options);
        TcpWorkerClient* client = handle->client.get();
        handle->thread = std::thread([client] { (void)client->Run(); });
      } else {
        FEDSHAP_ASSIGN_OR_RETURN(auto pair, CreateChannelPair());
        handle->channel = std::move(pair.second);
        FrameChannel* channel = handle->channel.get();
        handle->thread = std::thread([channel, worker_options] {
          ClusterWorker worker(channel, worker_options);
          (void)worker.Run();
        });
        coordinator_ends.push_back(std::move(pair.first));
      }
    }
    cluster->workers_.push_back(std::move(handle));
  }
  for (auto& end : coordinator_ends) {
    cluster->dispatcher_->AddWorker(std::move(end));
  }
  if (tcp) {
    cluster->dispatcher_->ServeListener(std::move(listener));
    // Registration is asynchronous over TCP: wait until every shard is
    // live so callers see a stable shard map from the first Evaluate.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options.start_timeout_ms);
    while (cluster->dispatcher_->live_workers() <
           static_cast<size_t>(options.num_workers)) {
      if (std::chrono::steady_clock::now() > deadline) {
        cluster->Shutdown();
        return Status::DeadlineExceeded(
            "cluster workers failed to register within " +
            std::to_string(options.start_timeout_ms) + "ms");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return cluster;
}

void LocalCluster::KillWorker(int index) {
  if (index < 0 || static_cast<size_t>(index) >= workers_.size()) return;
  WorkerHandle& handle = *workers_[static_cast<size_t>(index)];
  if (handle.pid > 0) {
    ::kill(handle.pid, SIGKILL);
  } else if (handle.client != nullptr) {
    handle.client->Stop();  // stays down: no further reconnects
  } else if (handle.channel != nullptr) {
    handle.channel->Shutdown();
  }
}

void LocalCluster::Shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  if (dispatcher_ != nullptr) dispatcher_->Shutdown();
  for (auto& handle : workers_) {
    // A TCP client mid-backoff never saw the Shutdown frame; stop it
    // before joining or it would redial a closed listener forever.
    if (handle->client != nullptr) handle->client->Stop();
    if (handle->thread.joinable()) handle->thread.join();
    if (handle->pid > 0) {
      // Bounded reap: a subprocess TCP worker that was mid-backoff when
      // the listener closed would otherwise redial forever.
      int wstatus = 0;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      for (;;) {
        const pid_t reaped = ::waitpid(handle->pid, &wstatus, WNOHANG);
        if (reaped == handle->pid || reaped < 0) break;
        if (std::chrono::steady_clock::now() > deadline) {
          ::kill(handle->pid, SIGKILL);
          ::waitpid(handle->pid, &wstatus, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
}

LocalCluster::~LocalCluster() { Shutdown(); }

}  // namespace fedshap
