#ifndef FEDSHAP_SERVICE_CLUSTER_H_
#define FEDSHAP_SERVICE_CLUSTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "service/job_spec.h"
#include "util/coalition.h"
#include "util/framing.h"
#include "util/status.h"
#include "util/tcp_transport.h"

namespace fedshap {

/// \file
/// Coordinator side of the sharded valuation cluster.
///
/// The coordinator owns all estimator state (plan cursors, moments,
/// snapshots) and its UtilityCache stays the single source of truth for
/// hit/miss and fresh-training accounting. Only the leaf operation — one
/// coalition training — is shipped out: a cache miss becomes an Assign
/// frame to the worker that owns the coalition's shard, and the worker's
/// framed result is applied back into the coordinator cache. Estimator
/// math therefore consumes utilities in exactly the single-process plan
/// order regardless of how result frames race on the wire, which is what
/// keeps values bit-identical at any topology (see
/// docs/ARCHITECTURE.md, "Sharded valuation cluster").
///
/// Workers attach over either transport: socketpair ends adopted with
/// AddWorker() (single-host threads/forks) or TCP connections accepted by
/// ServeListener() (multi-node). Every worker opens its session with a
/// Register frame (protocol version + shard identity + the fingerprints
/// of workloads it already holds); the coordinator validates it, assigns
/// or confirms the shard, and replies Welcome. A disconnected TCP worker
/// reconnects with capped exponential backoff and re-registers under its
/// original shard, so its store and cache stay its shard's.

/// Cluster protocol frame types (FrameChannel `type` field). Payloads are
/// ByteWriter-encoded; see cluster.cc for the per-message layout.
namespace cluster_proto {
inline constexpr uint32_t kHello = 1;      ///< legacy liveness (unused)
inline constexpr uint32_t kWorkload = 2;   ///< coord->worker: key, spec, fp
inline constexpr uint32_t kAssign = 3;     ///< coord->worker: task, coalition
inline constexpr uint32_t kResult = 4;     ///< worker->coord: task, utility
inline constexpr uint32_t kError = 5;      ///< worker->coord: task, message
inline constexpr uint32_t kHeartbeat = 6;  ///< worker->coord: liveness
inline constexpr uint32_t kShutdown = 7;   ///< coord->worker: drain and exit
inline constexpr uint32_t kRegister = 8;   ///< worker->coord: handshake
inline constexpr uint32_t kWelcome = 9;    ///< coord->worker: shard grant
inline constexpr uint32_t kReject = 10;    ///< coord->worker: handshake veto
}  // namespace cluster_proto

/// Version of the cluster wire protocol. Bumped whenever a frame layout
/// changes; a worker registering with a different version is rejected
/// before any workload state is exchanged.
inline constexpr uint32_t kClusterProtocolVersion = 2;

/// The registration handshake a worker presents when (re)connecting:
/// protocol version, its shard identity (-1 = new, assign me one), and
/// the fingerprints of workloads it already has built — on reconnect the
/// coordinator verifies them bit-for-bit and skips re-announcing, so the
/// worker resumes its shard home with warm caches.
struct WorkerRegistration {
  uint32_t protocol_version = kClusterProtocolVersion;
  int shard = -1;
  uint64_t pid = 0;
  std::vector<std::pair<std::string, uint64_t>> workloads;
};

/// Wire codec for the Register frame payload.
std::string EncodeWorkerRegistration(const WorkerRegistration& registration);
Result<WorkerRegistration> DecodeWorkerRegistration(std::string_view payload);

/// Counters describing one dispatcher's life so far. All monotonic.
struct ClusterStats {
  size_t workers_added = 0;     ///< Distinct workers ever attached.
  size_t workers_lost = 0;      ///< Workers declared dead (EOF or timeout).
  size_t worker_reconnects = 0;  ///< Re-registrations resuming a shard.
  size_t tasks_dispatched = 0;  ///< Assign frames sent, including re-sends.
  size_t results_applied = 0;   ///< Result frames accepted exactly-once.
  size_t duplicate_results_ignored = 0;  ///< Late/duplicate frames dropped.
  size_t reassigned_coalitions = 0;  ///< In-flight tasks moved off a dead
                                     ///< worker.
  size_t retried_tasks = 0;  ///< Tasks re-sent after the task timeout
                             ///< (dropped-frame recovery).
  size_t worker_fresh_trainings = 0;  ///< Results flagged fresh by the
                                      ///< worker that trained them.
  size_t deadline_expirations = 0;  ///< RPCs that exhausted their
                                    ///< per-attempt deadline budget.
  size_t breaker_trips = 0;   ///< Circuit breakers opened (closed->open).
  size_t breaker_probes = 0;  ///< Cooldowns elapsed (open->half-open).
  size_t degraded_evaluations = 0;  ///< Coalitions trained locally by the
                                    ///< coordinator because no worker was
                                    ///< available within the grace window.
  /// Summed seconds shards spent dead before a reconnect resumed them
  /// (recovery_seconds_total / worker_reconnects = mean outage).
  double recovery_seconds_total = 0.0;
};

/// Coordinator-side dispatcher: owns the worker connections, the
/// coalition->shard map and the in-flight task table.
///
/// Sharding is by `Coalition::Hash() % shard slots`: the divisor is the
/// total number of shards ever created, never the live count, so a
/// coalition's home shard is stable across worker deaths and every
/// worker's store only ever sees its own shard's coalitions. When a
/// worker dies its in-flight tasks fail over to the next live shard;
/// results arriving late for an already-completed task (duplicate
/// delivery, a resurrected frame) are ignored idempotently — a task id is
/// completed at most once, and the coordinator cache's single-flight
/// keyed by coalition fingerprint makes retrained duplicates converge on
/// the same record.
///
/// Resilience policy, all deterministic given a fault schedule:
///  - every RPC attempt gets `rpc_deadline_ms`; on expiry the task is
///    re-dispatched (up to `max_task_attempts`) and the slow worker's
///    breaker records a failure;
///  - `breaker_trip_threshold` consecutive failures open a per-worker
///    circuit breaker, making the worker unschedulable for
///    `breaker_cooldown_ms`; the cooldown elapsing half-opens it (a
///    probe), whose first result closes or re-opens it;
///  - when no schedulable worker exists for `degraded_grace_ms`,
///    Evaluate fails with Unavailable — the signal ClusterUtility turns
///    into a local (coordinator-side) training, so the service keeps
///    producing bit-identical values through a total partition.
///
/// Thread-safe; Evaluate() may be called from many coordinator threads.
class ClusterDispatcher {
 public:
  struct Options {
    /// A worker silent for longer than this is declared dead and its
    /// in-flight coalitions are reassigned. Workers heartbeat every
    /// ~200ms, so the default tolerates long GC-less trainings.
    int heartbeat_timeout_ms = 10000;
    /// When > 0, a task unanswered for this long is re-sent to its
    /// worker (recovers a dropped result frame: the worker's cache makes
    /// the re-run a hit). 0 disables timeout-driven retry.
    int task_retry_ms = 0;
    /// When > 0, each dispatch of an RPC may wait at most this long for
    /// its result before the attempt is abandoned (deadline expiry: a
    /// breaker failure for the worker, a re-dispatch for the task).
    /// 0 waits forever (worker death still fails over via heartbeat).
    int rpc_deadline_ms = 0;
    /// Re-dispatches an RPC gets before failing with DeadlineExceeded.
    int max_task_attempts = 5;
    /// Consecutive per-worker failures that open its circuit breaker.
    /// 0 disables the breaker.
    int breaker_trip_threshold = 3;
    /// How long an open breaker keeps its worker unschedulable before a
    /// half-open probe is allowed.
    int breaker_cooldown_ms = 1000;
    /// How long Evaluate waits for any schedulable worker to (re)appear
    /// before giving up with Unavailable (the degraded-mode trigger).
    /// 0 degrades immediately.
    int degraded_grace_ms = 0;
  };

  /// Inputs to the monitor's unified deadline computation: for each
  /// timer class, milliseconds until its earliest pending deadline
  /// (negative = nothing pending in that class).
  struct MonitorDeadlines {
    int heartbeat_ms = -1;  ///< Earliest live worker hits the timeout.
    int retry_ms = -1;      ///< Oldest unanswered task hits task_retry_ms.
    int breaker_ms = -1;    ///< Earliest open breaker finishes cooldown.
  };

  /// The monitor tick: sleep until the earliest pending deadline across
  /// all timer classes, clamped to [10ms, 250ms] so a wrong input can
  /// neither spin nor stall. Pure function of its inputs (unit-tested);
  /// computing the wait from the *actual* earliest deadline — instead of
  /// re-deriving a fixed heuristic tick per loop iteration — is what
  /// guarantees no timer class can starve another.
  static int NextDeadlineMs(const MonitorDeadlines& deadlines);

  ClusterDispatcher() : ClusterDispatcher(Options()) {}
  explicit ClusterDispatcher(const Options& options);
  ~ClusterDispatcher();

  ClusterDispatcher(const ClusterDispatcher&) = delete;
  ClusterDispatcher& operator=(const ClusterDispatcher&) = delete;

  /// Adopts a connected worker channel; its shard index is the number of
  /// shard slots that exist before it. Starts the per-worker receiver
  /// thread. (The socketpair path; TCP workers attach by registering.)
  void AddWorker(std::unique_ptr<FrameChannel> channel);

  /// Serves worker registrations accepted from `listener` (takes
  /// ownership; the accept thread starts immediately).
  void ServeListener(std::unique_ptr<TcpListener> listener);

  /// Binds `endpoint` and serves registrations from it. Returns the
  /// bound port (resolves port 0).
  Result<int> ListenAndServe(const TcpEndpoint& endpoint);

  /// The port ServeListener/ListenAndServe bound (-1 when not listening).
  int listen_port() const;

  /// Announces a workload: workers rebuild the utility from `scenario`
  /// on first assignment and must match `fingerprint` bit-for-bit.
  void RegisterWorkload(const std::string& key, const ScenarioSpec& scenario,
                        uint64_t fingerprint);

  /// Ships one coalition evaluation to its shard's worker and blocks for
  /// the framed result, surviving worker deaths by reassignment and slow
  /// workers by deadline-bounded re-dispatch. Fails with Unavailable
  /// when no schedulable worker exists past the degraded grace window —
  /// the caller's cue to train locally. `worker_fresh` (optional)
  /// reports whether the worker trained fresh.
  Result<UtilityRecord> Evaluate(const std::string& workload_key,
                                 const Coalition& coalition,
                                 bool* worker_fresh = nullptr);

  /// Records one degraded (coordinator-local) evaluation; called by
  /// ClusterUtility when it falls back after an Unavailable.
  void NoteDegradedEvaluation();

  /// Workers currently considered alive.
  size_t live_workers() const;

  ClusterStats stats() const;

  /// Sends Shutdown to every live worker, fails all pending tasks and
  /// joins the receiver/monitor/accept threads. Idempotent; the
  /// destructor calls it.
  void Shutdown();

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  struct WorkerState {
    /// Shared with the receiver thread of the current generation, so a
    /// reconnect can swap in a new channel while a stale receiver is
    /// still unwinding on the old one.
    std::shared_ptr<FrameChannel> channel;
    std::thread receiver;
    uint64_t generation = 0;  ///< Attach count; 0 = slot never connected.
    bool alive = false;
    std::chrono::steady_clock::time_point last_seen;
    std::chrono::steady_clock::time_point died_at;
    std::set<std::string> announced;  // workload keys already sent
    std::set<uint64_t> inflight;      // task ids assigned here
    // Circuit breaker.
    BreakerState breaker = BreakerState::kClosed;
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point breaker_open_until;
  };
  struct WorkloadInfo {
    ScenarioSpec scenario;
    uint64_t fingerprint = 0;
  };
  struct PendingTask {
    std::string workload_key;
    Coalition coalition;
    int worker = -1;
    std::chrono::steady_clock::time_point sent_at;
    bool done = false;
    Status error;
    UtilityRecord record{0.0, 0.0};
    bool fresh = false;
  };

  void ReceiverLoop(size_t index, uint64_t generation,
                    std::shared_ptr<FrameChannel> channel);
  void MonitorLoop();
  void AcceptLoop();
  /// Performs the registration handshake on a freshly accepted
  /// connection: validate, attach (new shard or resume), Welcome/Reject.
  void HandleRegistration(std::unique_ptr<FrameChannel> channel);
  /// Validates `registration` against the workload table. Must hold
  /// mutex_.
  Status ValidateRegistrationLocked(const WorkerRegistration& registration);
  void HandleFrame(size_t index, uint64_t generation, const Frame& frame);
  void StartMonitorLocked();
  // All *Locked methods require mutex_ held.
  bool SchedulableLocked(const WorkerState& worker) const;
  bool HasSchedulableWorkerLocked() const;
  /// Waits up to degraded_grace_ms for a schedulable worker. Returns
  /// whether one exists on exit.
  bool WaitForWorkerLocked(std::unique_lock<std::mutex>& lock);
  int PickWorkerLocked(const Coalition& coalition) const;
  Status AssignLocked(uint64_t task_id, PendingTask& task, int worker);
  void MarkWorkerDeadLocked(size_t index);
  void BreakerFailureLocked(size_t index);
  void BreakerSuccessLocked(size_t index);
  void FailTaskLocked(uint64_t task_id, PendingTask& task, Status error);
  MonitorDeadlines ComputeDeadlinesLocked(
      std::chrono::steady_clock::time_point now) const;

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable completed_;
  std::condition_variable monitor_wake_;
  /// Signals worker attach/death/breaker transitions — what degraded
  /// grace waits on.
  std::condition_variable workers_changed_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::map<std::string, WorkloadInfo> workloads_;
  std::unordered_map<uint64_t, PendingTask> pending_;
  uint64_t next_task_id_ = 0;
  ClusterStats stats_;
  std::thread monitor_;
  std::unique_ptr<TcpListener> listener_;
  std::thread acceptor_;
  bool stopping_ = false;
  bool shut_down_ = false;
};

/// A UtilityFunction whose evaluations are computed by the cluster: the
/// coordinator's per-workload cache wraps one of these instead of the
/// locally built utility, so every cache miss becomes a remote training
/// on the coalition's shard. Identity (fingerprint, client count) is
/// taken from the locally built `fallback` utility — the remote workers
/// rebuild the exact same workload, which the Workload handshake
/// verifies — and when the dispatcher reports the cluster Unavailable
/// (no schedulable worker past the grace window), the evaluation runs on
/// `fallback` right here: training is deterministic in the workload, not
/// in where it runs, so degraded-mode values stay bit-identical.
class ClusterUtility final : public UtilityFunction {
 public:
  /// `fallback` is the coordinator's locally built utility; not owned,
  /// must outlive this object.
  ClusterUtility(ClusterDispatcher* dispatcher, std::string workload_key,
                 const UtilityFunction* fallback)
      : dispatcher_(dispatcher),
        workload_key_(std::move(workload_key)),
        fallback_(fallback) {}

  int num_clients() const override { return fallback_->num_clients(); }
  uint64_t Fingerprint() const override { return fallback_->Fingerprint(); }
  Result<double> Evaluate(const Coalition& coalition) const override;

 private:
  ClusterDispatcher* dispatcher_;
  std::string workload_key_;
  const UtilityFunction* fallback_;
};

}  // namespace fedshap

#endif  // FEDSHAP_SERVICE_CLUSTER_H_
