#ifndef FEDSHAP_SERVICE_CLUSTER_H_
#define FEDSHAP_SERVICE_CLUSTER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "service/job_spec.h"
#include "util/coalition.h"
#include "util/framing.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// Coordinator side of the sharded valuation cluster.
///
/// The coordinator owns all estimator state (plan cursors, moments,
/// snapshots) and its UtilityCache stays the single source of truth for
/// hit/miss and fresh-training accounting. Only the leaf operation — one
/// coalition training — is shipped out: a cache miss becomes an Assign
/// frame to the worker that owns the coalition's shard, and the worker's
/// framed result is applied back into the coordinator cache. Estimator
/// math therefore consumes utilities in exactly the single-process plan
/// order regardless of how result frames race on the wire, which is what
/// keeps values bit-identical at any topology (see
/// docs/ARCHITECTURE.md, "Sharded valuation cluster").

/// Cluster protocol frame types (FrameChannel `type` field). Payloads are
/// ByteWriter-encoded; see cluster.cc for the per-message layout.
namespace cluster_proto {
inline constexpr uint32_t kHello = 1;      ///< worker->coord: shard, pid
inline constexpr uint32_t kWorkload = 2;   ///< coord->worker: key, spec, fp
inline constexpr uint32_t kAssign = 3;     ///< coord->worker: task, coalition
inline constexpr uint32_t kResult = 4;     ///< worker->coord: task, utility
inline constexpr uint32_t kError = 5;      ///< worker->coord: task, message
inline constexpr uint32_t kHeartbeat = 6;  ///< worker->coord: liveness
inline constexpr uint32_t kShutdown = 7;   ///< coord->worker: drain and exit
}  // namespace cluster_proto

/// Counters describing one dispatcher's life so far. All monotonic.
struct ClusterStats {
  size_t workers_added = 0;     ///< AddWorker calls.
  size_t workers_lost = 0;      ///< Workers declared dead (EOF or timeout).
  size_t tasks_dispatched = 0;  ///< Assign frames sent, including re-sends.
  size_t results_applied = 0;   ///< Result frames accepted exactly-once.
  size_t duplicate_results_ignored = 0;  ///< Late/duplicate frames dropped.
  size_t reassigned_coalitions = 0;  ///< In-flight tasks moved off a dead
                                     ///< worker.
  size_t retried_tasks = 0;  ///< Tasks re-sent after the task timeout
                             ///< (dropped-frame recovery).
  size_t worker_fresh_trainings = 0;  ///< Results flagged fresh by the
                                      ///< worker that trained them.
};

/// Coordinator-side dispatcher: owns the worker connections, the
/// coalition->shard map and the in-flight task table.
///
/// Sharding is by `Coalition::Hash() % workers_added`: the divisor is the
/// total number of workers ever added, never the live count, so a
/// coalition's home shard is stable across worker deaths and every
/// worker's store only ever sees its own shard's coalitions. When a
/// worker dies its in-flight tasks fail over to the next live shard;
/// results arriving late for an already-completed task (duplicate
/// delivery, a resurrected frame) are ignored idempotently — a task id is
/// completed at most once, and the coordinator cache's single-flight
/// keyed by coalition fingerprint makes retrained duplicates converge on
/// the same record.
///
/// Thread-safe; Evaluate() may be called from many coordinator threads.
class ClusterDispatcher {
 public:
  struct Options {
    /// A worker silent for longer than this is declared dead and its
    /// in-flight coalitions are reassigned. Workers heartbeat every
    /// ~200ms, so the default tolerates long GC-less trainings.
    int heartbeat_timeout_ms = 10000;
    /// When > 0, a task unanswered for this long is re-sent to its
    /// worker (recovers a dropped result frame: the worker's cache makes
    /// the re-run a hit). 0 disables timeout-driven retry.
    int task_retry_ms = 0;
  };

  ClusterDispatcher() : ClusterDispatcher(Options()) {}
  explicit ClusterDispatcher(const Options& options);
  ~ClusterDispatcher();

  ClusterDispatcher(const ClusterDispatcher&) = delete;
  ClusterDispatcher& operator=(const ClusterDispatcher&) = delete;

  /// Adopts a connected worker channel; its shard index is the number of
  /// workers added before it. Starts the per-worker receiver thread.
  void AddWorker(std::unique_ptr<FrameChannel> channel);

  /// Announces a workload: workers rebuild the utility from `scenario`
  /// on first assignment and must match `fingerprint` bit-for-bit.
  void RegisterWorkload(const std::string& key, const ScenarioSpec& scenario,
                        uint64_t fingerprint);

  /// Ships one coalition evaluation to its shard's worker and blocks for
  /// the framed result, surviving worker deaths by reassignment. Fails
  /// only when no live worker remains or the dispatcher is shut down.
  /// `worker_fresh` (optional) reports whether the worker trained fresh.
  Result<UtilityRecord> Evaluate(const std::string& workload_key,
                                 const Coalition& coalition,
                                 bool* worker_fresh = nullptr);

  /// Workers currently considered alive.
  size_t live_workers() const;

  ClusterStats stats() const;

  /// Sends Shutdown to every live worker, fails all pending tasks and
  /// joins the receiver/monitor threads. Idempotent; the destructor
  /// calls it.
  void Shutdown();

 private:
  struct WorkerState {
    std::unique_ptr<FrameChannel> channel;
    std::thread receiver;
    bool alive = false;
    std::chrono::steady_clock::time_point last_seen;
    std::set<std::string> announced;  // workload keys already sent
    std::set<uint64_t> inflight;      // task ids assigned here
  };
  struct WorkloadInfo {
    ScenarioSpec scenario;
    uint64_t fingerprint = 0;
  };
  struct PendingTask {
    std::string workload_key;
    Coalition coalition;
    int worker = -1;
    std::chrono::steady_clock::time_point sent_at;
    bool done = false;
    Status error;
    UtilityRecord record{0.0, 0.0};
    bool fresh = false;
  };

  void ReceiverLoop(size_t index);
  void MonitorLoop();
  void HandleFrame(size_t index, const Frame& frame);
  // All *Locked methods require mutex_ held.
  int PickWorkerLocked(const Coalition& coalition) const;
  Status AssignLocked(uint64_t task_id, PendingTask& task, int worker);
  void MarkWorkerDeadLocked(size_t index);
  void FailTaskLocked(uint64_t task_id, PendingTask& task, Status error);

  const Options options_;
  mutable std::mutex mutex_;
  std::condition_variable completed_;
  std::condition_variable monitor_wake_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::map<std::string, WorkloadInfo> workloads_;
  std::unordered_map<uint64_t, PendingTask> pending_;
  uint64_t next_task_id_ = 0;
  ClusterStats stats_;
  std::thread monitor_;
  bool stopping_ = false;
  bool shut_down_ = false;
};

/// A UtilityFunction whose evaluations are computed by the cluster: the
/// coordinator's per-workload cache wraps one of these instead of the
/// locally built utility, so every cache miss becomes a remote training
/// on the coalition's shard. Identity (fingerprint, client count) is
/// taken from the locally built utility — the remote workers rebuild the
/// exact same workload, which the Workload handshake verifies.
class ClusterUtility final : public UtilityFunction {
 public:
  ClusterUtility(ClusterDispatcher* dispatcher, std::string workload_key,
                 int num_clients, uint64_t fingerprint)
      : dispatcher_(dispatcher),
        workload_key_(std::move(workload_key)),
        num_clients_(num_clients),
        fingerprint_(fingerprint) {}

  int num_clients() const override { return num_clients_; }
  uint64_t Fingerprint() const override { return fingerprint_; }
  Result<double> Evaluate(const Coalition& coalition) const override;

 private:
  ClusterDispatcher* dispatcher_;
  std::string workload_key_;
  int num_clients_;
  uint64_t fingerprint_;
};

}  // namespace fedshap

#endif  // FEDSHAP_SERVICE_CLUSTER_H_
