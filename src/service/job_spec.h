#ifndef FEDSHAP_SERVICE_JOB_SPEC_H_
#define FEDSHAP_SERVICE_JOB_SPEC_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/resumable.h"
#include "core/valuation_result.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "util/serialization.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// Job descriptions for the valuation service: what workload to value
/// (`ScenarioSpec`), with which estimator and budget (`JobSpec`), plus
/// the text job-line format `fedshapd` reads and the factory that turns
/// a spec into a runnable estimator.
///
/// A job line is one job per line of whitespace-separated `key=value`
/// tokens (`#` starts a comment, blank lines are skipped):
///
///     name=demo estimator=ipss gamma=24 n=6 partition=bygroup
///
/// See docs/OPERATIONS.md for the full key reference.

/// The workload half of a job: which federated scenario the utility
/// function U(S) is built from. Two jobs whose specs build utilities
/// with equal content fingerprints share trainings through the service's
/// per-workload cache and store — the cross-job dedup the service exists
/// for.
struct ScenarioSpec {
  /// Workload family: "digits" (synthetic image classification trained
  /// with FedAvg logistic regression — every utility evaluation is a real
  /// FL training) or "linreg" (the closed-form Donahue-Kleinberg
  /// linear-regression utility of the paper's theory sections — instant
  /// evaluations, used for tests and demos).
  std::string kind = "digits";
  /// Number of FL clients n.
  int n = 6;
  /// How training data is split across clients. For "digits":
  /// "bygroup" (writer-id partition) or the paper's synthetic setups
  /// "iid" / "skew" / "sizes" / "noisy". Ignored by "linreg".
  std::string partition = "bygroup";
  /// Master seed of data generation, partitioning and model init.
  uint64_t seed = 2025;
  /// FedAvg communication rounds per utility evaluation ("digits" only).
  int fl_rounds = 3;
  /// Local SGD epochs per round ("digits" only).
  int local_epochs = 1;
  /// Local SGD minibatch size ("digits" only; part of the workload
  /// fingerprint, like the bench harness's --batch-size).
  int batch_size = 16;
  /// Local SGD learning rate ("digits" only).
  double learning_rate = 0.3;
  /// Rows per client t ("linreg" only).
  int samples_per_client = 50;
  /// Per-sample noise sigma ("linreg" only; 0 = deterministic utility).
  double noise_scale = 0.0;

  /// Builds the utility function this spec describes. Generating the
  /// synthetic data and initializing the model takes tens of
  /// milliseconds for "digits"; evaluation cost is where the real time
  /// goes. Fails with InvalidArgument on an unknown kind/partition or
  /// out-of-range n.
  Result<std::unique_ptr<UtilityFunction>> Build() const;

  /// Deterministic textual identity of the spec: equal keys mean "the
  /// service may share one workload context". The built utility's
  /// content fingerprint (UtilityFunction::Fingerprint()) is the
  /// ground-truth identity; the key is the cheap pre-build index into
  /// the service's workload table.
  std::string CanonicalKey() const;
};

/// Which valuation estimator a job runs.
enum class EstimatorKind {
  kIpss,            ///< IPSS (Alg. 3), resumable sweep.
  kAdaptiveIpss,    ///< Adaptive-budget IPSS (doubling gamma), one-shot.
  kStratified,      ///< Unified stratified sampling (Alg. 1), resumable.
  kExactMc,         ///< Exact MC-SV over all 2^n coalitions, resumable.
  kExactCc,         ///< Exact CC-SV over all 2^n coalitions, resumable.
  kExactPerm,       ///< Exact permutation SV (n! orderings), one-shot.
  kPermMc,          ///< Monte-Carlo permutation sampling, resumable.
  kKGreedy,         ///< K-Greedy probe (Alg. 2), one-shot.
  kExtTmc,          ///< Ext-TMC baseline, one-shot.
  kExtGtb,          ///< Ext-GTB baseline, one-shot.
  kCcShapley,       ///< CC-Shapley baseline, one-shot.
  kLeaveOneOut,     ///< Leave-one-out index, one-shot.
  kBanzhaf,         ///< Monte-Carlo Banzhaf index, one-shot.
};

/// The job-line token of `kind` (e.g. "ipss", "exact-mc").
const char* EstimatorKindName(EstimatorKind kind);

/// Parses an estimator token; InvalidArgument on unknown names.
Result<EstimatorKind> ParseEstimatorKind(std::string_view token);

/// True for estimators that implement ResumableEstimator: they run in
/// checkpointed slices and survive a service kill mid-job. One-shot
/// estimators run as a single unit of work; a crash re-runs them from
/// scratch, which the shared utility store makes cheap (the trainings
/// are durable even when the estimator state is not).
bool IsResumable(EstimatorKind kind);

/// One valuation job: a workload, an estimator, and its budget.
struct JobSpec {
  /// Unique job name ([A-Za-z0-9_.-]+); doubles as the state-file stem.
  std::string name;
  /// Which estimator to run.
  EstimatorKind estimator = EstimatorKind::kIpss;
  /// Sampling budget gamma (utility evaluations for IPSS/stratified;
  /// permutations/samples/rounds for the other samplers; the budget
  /// ceiling for adaptive IPSS). Ignored by exact sweeps and LOO.
  int gamma = 32;
  /// K-Greedy depth (kKGreedy only).
  int k = 2;
  /// Seed of the estimator's sampling randomness.
  uint64_t seed = 1;
  /// Work units per checkpointed slice for resumable estimators: the
  /// service snapshots the estimator and re-queues the job after this
  /// many evaluations, bounding both checkpoint loss and the time a job
  /// can monopolize a worker.
  int checkpoint_every = 8;
  /// Stratum budget allocation of the stratified estimator: "fixed"
  /// (DefaultStratumAllocation up front) or "neyman" (the adaptive
  /// estimator: periodic Neyman reallocation from running per-stratum
  /// variance, see core/stratified.h). Only meaningful with
  /// estimator=stratified; other estimators reject "neyman".
  std::string allocation = "fixed";
  /// Speculative prefetch depth (`prefetch=` key): how many planned
  /// coalitions past the current slice the service's prefetcher may
  /// train ahead of demand (through ResumableEstimator::PeekNext). 0
  /// disables prefetching for the job. Prefetch only reorders trainings
  /// — values stay bit-identical to an unprefetched run.
  int prefetch = 0;
  /// Fused multi-coalition dispatch (`fuse=on|off` key): route slice
  /// batches through UtilityFunction::EvaluateBatchFused, stacking
  /// same-shape model scoring into larger GEMM dispatches. Off by
  /// default: fused values agree with the unfused path only within the
  /// kernel tolerance contract (ml/matrix.h), not bitwise.
  bool fuse = false;
  /// The workload to value.
  ScenarioSpec scenario;

  /// Parses one job line (see the file comment for the format). Fails
  /// with InvalidArgument on unknown keys, bad values or a missing name.
  static Result<JobSpec> FromLine(std::string_view line);

  /// Serializes the spec as a job line that FromLine parses back
  /// identically (the service persists submitted jobs in this form).
  std::string ToLine() const;
};

/// Parses a whole job file / stdin stream: one job per non-empty,
/// non-comment line. Duplicate names within the batch are rejected.
Result<std::vector<JobSpec>> ParseJobFile(std::string_view contents);

/// Binary ScenarioSpec codec for the cluster wire protocol: the
/// coordinator announces each workload to its workers as an encoded
/// spec, and every worker rebuilds the identical utility from it (the
/// fingerprint check in the cluster handshake verifies this). Versioned
/// so a field added later still decodes old frames.
void EncodeScenarioSpec(const ScenarioSpec& spec, ByteWriter& writer);
Result<ScenarioSpec> DecodeScenarioSpec(ByteReader& reader);

/// Creates the resumable sweep for `spec`. Requires
/// IsResumable(spec.estimator); `n` is the workload's client count.
Result<std::unique_ptr<ResumableEstimator>> MakeSweep(const JobSpec& spec,
                                                      int n);

/// Runs a one-shot (non-resumable) estimator to completion through
/// `session`. Requires !IsResumable(spec.estimator).
Result<ValuationResult> RunOneShot(const JobSpec& spec,
                                   UtilitySession& session);

}  // namespace fedshap

#endif  // FEDSHAP_SERVICE_JOB_SPEC_H_
