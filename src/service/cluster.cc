#include "service/cluster.h"

#include <algorithm>
#include <utility>

#include "fl/utility_store.h"
#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {

namespace {

std::string EncodeAssign(uint64_t task_id, const std::string& key,
                         const Coalition& coalition) {
  ByteWriter writer;
  writer.PutVarint(task_id);
  writer.PutString(key);
  PutCoalition(writer, coalition);
  return std::string(writer.bytes());
}

std::string EncodeWorkloadAnnounce(const std::string& key,
                                   const ScenarioSpec& scenario,
                                   uint64_t fingerprint) {
  ByteWriter writer;
  writer.PutString(key);
  EncodeScenarioSpec(scenario, writer);
  writer.PutU64(fingerprint);
  return std::string(writer.bytes());
}

}  // namespace

ClusterDispatcher::ClusterDispatcher(const Options& options)
    : options_(options) {}

ClusterDispatcher::~ClusterDispatcher() { Shutdown(); }

void ClusterDispatcher::AddWorker(std::unique_ptr<FrameChannel> channel) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto worker = std::make_unique<WorkerState>();
  worker->channel = std::move(channel);
  worker->alive = true;
  worker->last_seen = std::chrono::steady_clock::now();
  workers_.push_back(std::move(worker));
  ++stats_.workers_added;
  const size_t index = workers_.size() - 1;
  workers_[index]->receiver = std::thread([this, index] { ReceiverLoop(index); });
  // The monitor starts with the first worker, not in the constructor, so
  // a harness may construct the dispatcher, fork subprocess workers, and
  // only then go multi-threaded.
  if (!monitor_.joinable()) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

void ClusterDispatcher::RegisterWorkload(const std::string& key,
                                         const ScenarioSpec& scenario,
                                         uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkloadInfo info;
  info.scenario = scenario;
  info.fingerprint = fingerprint;
  workloads_.emplace(key, std::move(info));
}

int ClusterDispatcher::PickWorkerLocked(const Coalition& coalition) const {
  if (workers_.empty()) return -1;
  // The divisor is the total worker count, not the live count: a
  // coalition's home shard must not move when an unrelated worker dies,
  // or shard-local store reuse (and the reassignment accounting) would
  // churn. Dead shards probe linearly to the next live one.
  const size_t total = workers_.size();
  const size_t home = static_cast<size_t>(coalition.Hash() % total);
  for (size_t probe = 0; probe < total; ++probe) {
    const size_t index = (home + probe) % total;
    if (workers_[index]->alive) return static_cast<int>(index);
  }
  return -1;
}

Status ClusterDispatcher::AssignLocked(uint64_t task_id, PendingTask& task,
                                       int worker_index) {
  WorkerState& worker = *workers_[static_cast<size_t>(worker_index)];
  if (worker.announced.insert(task.workload_key).second) {
    auto it = workloads_.find(task.workload_key);
    if (it == workloads_.end()) {
      worker.announced.erase(task.workload_key);
      return Status::InvalidArgument("workload '" + task.workload_key +
                                     "' was never registered");
    }
    Status sent = worker.channel->Send(
        cluster_proto::kWorkload,
        EncodeWorkloadAnnounce(task.workload_key, it->second.scenario,
                               it->second.fingerprint));
    if (!sent.ok()) {
      MarkWorkerDeadLocked(static_cast<size_t>(worker_index));
      return sent;
    }
  }
  Status sent = worker.channel->Send(
      cluster_proto::kAssign,
      EncodeAssign(task_id, task.workload_key, task.coalition));
  if (!sent.ok()) {
    MarkWorkerDeadLocked(static_cast<size_t>(worker_index));
    return sent;
  }
  task.worker = worker_index;
  task.sent_at = std::chrono::steady_clock::now();
  worker.inflight.insert(task_id);
  ++stats_.tasks_dispatched;
  return Status::OK();
}

Result<UtilityRecord> ClusterDispatcher::Evaluate(
    const std::string& workload_key, const Coalition& coalition,
    bool* worker_fresh) {
  if (worker_fresh != nullptr) *worker_fresh = false;
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::FailedPrecondition("cluster dispatcher is shut down");
  }
  if (workloads_.find(workload_key) == workloads_.end()) {
    return Status::InvalidArgument("workload '" + workload_key +
                                   "' was never registered");
  }
  const uint64_t task_id = ++next_task_id_;
  PendingTask& task = pending_[task_id];
  task.workload_key = workload_key;
  task.coalition = coalition;
  // Dispatch, re-picking while send failures kill workers under us.
  for (;;) {
    const int worker_index = PickWorkerLocked(coalition);
    if (worker_index < 0) {
      pending_.erase(task_id);
      return Status::FailedPrecondition("no live cluster workers");
    }
    if (AssignLocked(task_id, task, worker_index).ok()) break;
  }
  completed_.wait(lock, [&] { return task.done || stopping_; });
  if (!task.done) {
    // Shutdown raced the evaluation: detach the task.
    if (task.worker >= 0 &&
        static_cast<size_t>(task.worker) < workers_.size()) {
      workers_[static_cast<size_t>(task.worker)]->inflight.erase(task_id);
    }
    pending_.erase(task_id);
    return Status::FailedPrecondition("cluster dispatcher is shut down");
  }
  Status error = task.error;
  UtilityRecord record = task.record;
  const bool fresh = task.fresh;
  pending_.erase(task_id);
  if (!error.ok()) return error;
  if (worker_fresh != nullptr) *worker_fresh = fresh;
  return record;
}

void ClusterDispatcher::FailTaskLocked(uint64_t task_id, PendingTask& task,
                                       Status error) {
  (void)task_id;
  task.done = true;
  task.error = std::move(error);
  completed_.notify_all();
}

void ClusterDispatcher::MarkWorkerDeadLocked(size_t index) {
  WorkerState& worker = *workers_[index];
  if (!worker.alive) return;
  worker.alive = false;
  worker.channel->Shutdown();
  std::set<uint64_t> orphans;
  orphans.swap(worker.inflight);
  if (stopping_) return;
  ++stats_.workers_lost;
  FEDSHAP_LOG(Warning) << "[cluster] worker " << index << " lost with "
                       << orphans.size() << " in-flight coalition(s)";
  // Fail over every orphaned coalition to the next live shard. The
  // retrained result converges bit-identically: the training is
  // deterministic in the workload, not in which worker runs it.
  for (uint64_t task_id : orphans) {
    auto it = pending_.find(task_id);
    if (it == pending_.end() || it->second.done) continue;
    PendingTask& task = it->second;
    for (;;) {
      const int next = PickWorkerLocked(task.coalition);
      if (next < 0) {
        FailTaskLocked(task_id, task,
                       Status::FailedPrecondition("no live cluster workers"));
        break;
      }
      if (AssignLocked(task_id, task, next).ok()) {
        ++stats_.reassigned_coalitions;
        break;
      }
    }
  }
}

void ClusterDispatcher::HandleFrame(size_t index, const Frame& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerState& worker = *workers_[index];
  worker.last_seen = std::chrono::steady_clock::now();
  switch (frame.type) {
    case cluster_proto::kHello:
    case cluster_proto::kHeartbeat:
      return;  // liveness only; last_seen is already refreshed
    case cluster_proto::kResult: {
      ByteReader reader(frame.payload);
      Result<uint64_t> task_id = reader.GetVarint();
      Result<uint64_t> hash = reader.GetU64();
      Result<double> utility = reader.GetDouble();
      Result<double> cost = reader.GetDouble();
      Result<uint8_t> fresh = reader.GetU8();
      if (!task_id.ok() || !hash.ok() || !utility.ok() || !cost.ok() ||
          !fresh.ok()) {
        FEDSHAP_LOG(Warning) << "[cluster] malformed result frame from "
                             << "worker " << index << "; ignored";
        return;
      }
      auto it = pending_.find(*task_id);
      if (it == pending_.end() || it->second.done ||
          it->second.coalition.Hash() != *hash) {
        // Exactly-once application: a duplicate delivery, a frame for a
        // task already failed over and completed elsewhere, or a stale
        // id. The first accepted result won; drop this one.
        ++stats_.duplicate_results_ignored;
        return;
      }
      PendingTask& task = it->second;
      task.done = true;
      task.record = UtilityRecord{*utility, *cost};
      task.fresh = *fresh != 0;
      if (task.worker >= 0 &&
          static_cast<size_t>(task.worker) < workers_.size()) {
        workers_[static_cast<size_t>(task.worker)]->inflight.erase(*task_id);
      }
      ++stats_.results_applied;
      if (task.fresh) ++stats_.worker_fresh_trainings;
      completed_.notify_all();
      return;
    }
    case cluster_proto::kError: {
      ByteReader reader(frame.payload);
      Result<uint64_t> task_id = reader.GetVarint();
      Result<std::string> message = reader.GetString();
      if (!task_id.ok() || !message.ok()) return;
      auto it = pending_.find(*task_id);
      if (it == pending_.end() || it->second.done) {
        ++stats_.duplicate_results_ignored;
        return;
      }
      worker.inflight.erase(*task_id);
      FailTaskLocked(*task_id, it->second,
                     Status::Internal("worker " + std::to_string(index) +
                                      " failed evaluation: " + *message));
      return;
    }
    default:
      FEDSHAP_LOG(Warning) << "[cluster] unexpected frame type " << frame.type
                           << " from worker " << index;
      return;
  }
}

void ClusterDispatcher::ReceiverLoop(size_t index) {
  FrameChannel* channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    channel = workers_[index]->channel.get();
  }
  for (;;) {
    Result<std::optional<Frame>> received = channel->Recv(250);
    if (!received.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      MarkWorkerDeadLocked(index);
      return;
    }
    if (!received->has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
      continue;
    }
    HandleFrame(index, **received);
  }
}

void ClusterDispatcher::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  int tick_ms = 100;
  if (options_.task_retry_ms > 0) {
    tick_ms = std::min(tick_ms, std::max(10, options_.task_retry_ms / 2));
  }
  if (options_.heartbeat_timeout_ms > 0) {
    tick_ms =
        std::min(tick_ms, std::max(10, options_.heartbeat_timeout_ms / 4));
  }
  while (!stopping_) {
    monitor_wake_.wait_for(lock, std::chrono::milliseconds(tick_ms));
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i]->alive) continue;
      const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - workers_[i]->last_seen);
      if (silent.count() > options_.heartbeat_timeout_ms) {
        FEDSHAP_LOG(Warning) << "[cluster] worker " << i << " heartbeat "
                             << "silent for " << silent.count() << "ms";
        MarkWorkerDeadLocked(i);
      }
    }
    if (options_.task_retry_ms > 0) {
      for (auto& [task_id, task] : pending_) {
        if (task.done || task.worker < 0) continue;
        const auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - task.sent_at);
        if (waited.count() <= options_.task_retry_ms) continue;
        // A lost result frame: re-send to the task's worker (its cache
        // makes the re-run a hit). A dead worker was already failed over
        // by MarkWorkerDeadLocked, so alive is expected here.
        if (workers_[static_cast<size_t>(task.worker)]->alive &&
            AssignLocked(task_id, task, task.worker).ok()) {
          ++stats_.retried_tasks;
        }
      }
    }
  }
}

size_t ClusterDispatcher::live_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const auto& worker : workers_) {
    if (worker->alive) ++live;
  }
  return live;
}

ClusterStats ClusterDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ClusterDispatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    stopping_ = true;
    for (auto& worker : workers_) {
      if (worker->alive) {
        (void)worker->channel->Send(cluster_proto::kShutdown, "");
      }
      worker->channel->Shutdown();
    }
    for (auto& [task_id, task] : pending_) {
      if (!task.done) {
        FailTaskLocked(task_id, task,
                       Status::FailedPrecondition(
                           "cluster dispatcher is shut down"));
      }
    }
    completed_.notify_all();
    monitor_wake_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->receiver.joinable()) worker->receiver.join();
  }
  if (monitor_.joinable()) monitor_.join();
}

Result<double> ClusterUtility::Evaluate(const Coalition& coalition) const {
  FEDSHAP_ASSIGN_OR_RETURN(UtilityRecord record,
                           dispatcher_->Evaluate(workload_key_, coalition));
  return record.utility;
}

}  // namespace fedshap
