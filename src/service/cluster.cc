#include "service/cluster.h"

#include <algorithm>
#include <utility>

#include "fl/utility_store.h"
#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {

namespace {

using Clock = std::chrono::steady_clock;

int MillisUntil(Clock::time_point now, Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

std::string EncodeAssign(uint64_t task_id, const std::string& key,
                         const Coalition& coalition) {
  ByteWriter writer;
  writer.PutVarint(task_id);
  writer.PutString(key);
  PutCoalition(writer, coalition);
  return std::string(writer.bytes());
}

std::string EncodeWorkloadAnnounce(const std::string& key,
                                   const ScenarioSpec& scenario,
                                   uint64_t fingerprint) {
  ByteWriter writer;
  writer.PutString(key);
  EncodeScenarioSpec(scenario, writer);
  writer.PutU64(fingerprint);
  return std::string(writer.bytes());
}

std::string EncodeWelcome(uint32_t shard) {
  ByteWriter writer;
  writer.PutVarint(kClusterProtocolVersion);
  writer.PutVarint(shard);
  return std::string(writer.bytes());
}

std::string EncodeReject(const std::string& message) {
  ByteWriter writer;
  writer.PutString(message);
  return std::string(writer.bytes());
}

// A registered shard index far past any real deployment is a corrupt or
// hostile handshake, not a worker.
constexpr int kMaxShardIndex = 4096;

}  // namespace

std::string EncodeWorkerRegistration(const WorkerRegistration& registration) {
  ByteWriter writer;
  writer.PutVarint(registration.protocol_version);
  // shard + 1, so "assign me one" (-1) encodes as 0 in a varint.
  writer.PutVarint(static_cast<uint64_t>(registration.shard + 1));
  writer.PutVarint(registration.pid);
  writer.PutVarint(registration.workloads.size());
  for (const auto& [key, fingerprint] : registration.workloads) {
    writer.PutString(key);
    writer.PutU64(fingerprint);
  }
  return std::string(writer.bytes());
}

Result<WorkerRegistration> DecodeWorkerRegistration(std::string_view payload) {
  ByteReader reader(payload);
  WorkerRegistration registration;
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t version, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t shard_plus_1, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t pid, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  registration.protocol_version = static_cast<uint32_t>(version);
  if (shard_plus_1 > static_cast<uint64_t>(kMaxShardIndex)) {
    return Status::OutOfRange("registration shard index implausible");
  }
  registration.shard = static_cast<int>(shard_plus_1) - 1;
  registration.pid = pid;
  if (count > static_cast<uint64_t>(kMaxShardIndex)) {
    return Status::OutOfRange("registration workload count implausible");
  }
  registration.workloads.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    FEDSHAP_ASSIGN_OR_RETURN(std::string key, reader.GetString());
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t fingerprint, reader.GetU64());
    registration.workloads.emplace_back(std::move(key), fingerprint);
  }
  return registration;
}

int ClusterDispatcher::NextDeadlineMs(const MonitorDeadlines& deadlines) {
  // The clamp bounds wrong inputs, it is not the scheduling policy: the
  // wait is whichever timer class has the earliest real deadline, so a
  // 50ms retry timer cannot be held hostage by a 10s heartbeat timer (or
  // vice versa) the way a single heuristic tick could.
  constexpr int kMinTickMs = 10;
  constexpr int kMaxTickMs = 250;
  int wait = kMaxTickMs;
  for (int candidate :
       {deadlines.heartbeat_ms, deadlines.retry_ms, deadlines.breaker_ms}) {
    if (candidate >= 0) wait = std::min(wait, candidate);
  }
  return std::max(wait, kMinTickMs);
}

ClusterDispatcher::ClusterDispatcher(const Options& options)
    : options_(options) {}

ClusterDispatcher::~ClusterDispatcher() { Shutdown(); }

void ClusterDispatcher::StartMonitorLocked() {
  if (!monitor_.joinable()) {
    monitor_ = std::thread([this] { MonitorLoop(); });
  }
}

void ClusterDispatcher::AddWorker(std::unique_ptr<FrameChannel> channel) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto worker = std::make_unique<WorkerState>();
  worker->channel = std::shared_ptr<FrameChannel>(std::move(channel));
  worker->alive = true;
  worker->generation = 1;
  worker->last_seen = Clock::now();
  workers_.push_back(std::move(worker));
  ++stats_.workers_added;
  const size_t index = workers_.size() - 1;
  WorkerState& state = *workers_[index];
  state.receiver = std::thread(
      [this, index, generation = state.generation, channel = state.channel] {
        ReceiverLoop(index, generation, channel);
      });
  // The monitor starts with the first worker, not in the constructor, so
  // a harness may construct the dispatcher, fork subprocess workers, and
  // only then go multi-threaded.
  StartMonitorLocked();
  workers_changed_.notify_all();
}

void ClusterDispatcher::ServeListener(std::unique_ptr<TcpListener> listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listener_ = std::move(listener);
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

Result<int> ClusterDispatcher::ListenAndServe(const TcpEndpoint& endpoint) {
  FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<TcpListener> listener,
                           TcpListener::Listen(endpoint));
  const int port = listener->port();
  ServeListener(std::move(listener));
  FEDSHAP_LOG(Info) << "[cluster] serving worker registrations on port "
                    << port;
  return port;
}

int ClusterDispatcher::listen_port() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return listener_ != nullptr ? listener_->port() : -1;
}

void ClusterDispatcher::RegisterWorkload(const std::string& key,
                                         const ScenarioSpec& scenario,
                                         uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkloadInfo info;
  info.scenario = scenario;
  info.fingerprint = fingerprint;
  workloads_.emplace(key, std::move(info));
}

bool ClusterDispatcher::SchedulableLocked(const WorkerState& worker) const {
  // Half-open is schedulable: that is the probe traffic which decides
  // whether the breaker closes again.
  return worker.alive && worker.breaker != BreakerState::kOpen;
}

bool ClusterDispatcher::HasSchedulableWorkerLocked() const {
  for (const auto& worker : workers_) {
    if (SchedulableLocked(*worker)) return true;
  }
  return false;
}

bool ClusterDispatcher::WaitForWorkerLocked(
    std::unique_lock<std::mutex>& lock) {
  if (HasSchedulableWorkerLocked()) return true;
  if (options_.degraded_grace_ms <= 0) return false;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.degraded_grace_ms);
  while (!stopping_) {
    if (workers_changed_.wait_until(lock, deadline) ==
        std::cv_status::timeout) {
      return HasSchedulableWorkerLocked();
    }
    if (HasSchedulableWorkerLocked()) return true;
  }
  return false;
}

int ClusterDispatcher::PickWorkerLocked(const Coalition& coalition) const {
  if (workers_.empty()) return -1;
  // The divisor is the total shard count, not the live count: a
  // coalition's home shard must not move when an unrelated worker dies,
  // or shard-local store reuse (and the reassignment accounting) would
  // churn. Dead or breaker-open shards probe linearly to the next
  // schedulable one.
  const size_t total = workers_.size();
  const size_t home = static_cast<size_t>(coalition.Hash() % total);
  for (size_t probe = 0; probe < total; ++probe) {
    const size_t index = (home + probe) % total;
    if (SchedulableLocked(*workers_[index])) return static_cast<int>(index);
  }
  return -1;
}

Status ClusterDispatcher::AssignLocked(uint64_t task_id, PendingTask& task,
                                       int worker_index) {
  WorkerState& worker = *workers_[static_cast<size_t>(worker_index)];
  if (worker.announced.insert(task.workload_key).second) {
    auto it = workloads_.find(task.workload_key);
    if (it == workloads_.end()) {
      worker.announced.erase(task.workload_key);
      return Status::InvalidArgument("workload '" + task.workload_key +
                                     "' was never registered");
    }
    Status sent = worker.channel->Send(
        cluster_proto::kWorkload,
        EncodeWorkloadAnnounce(task.workload_key, it->second.scenario,
                               it->second.fingerprint));
    if (!sent.ok()) {
      MarkWorkerDeadLocked(static_cast<size_t>(worker_index));
      return sent;
    }
  }
  Status sent = worker.channel->Send(
      cluster_proto::kAssign,
      EncodeAssign(task_id, task.workload_key, task.coalition));
  if (!sent.ok()) {
    MarkWorkerDeadLocked(static_cast<size_t>(worker_index));
    return sent;
  }
  task.worker = worker_index;
  task.sent_at = Clock::now();
  worker.inflight.insert(task_id);
  ++stats_.tasks_dispatched;
  return Status::OK();
}

Result<UtilityRecord> ClusterDispatcher::Evaluate(
    const std::string& workload_key, const Coalition& coalition,
    bool* worker_fresh) {
  if (worker_fresh != nullptr) *worker_fresh = false;
  std::unique_lock<std::mutex> lock(mutex_);
  if (stopping_) {
    return Status::FailedPrecondition("cluster dispatcher is shut down");
  }
  if (workloads_.find(workload_key) == workloads_.end()) {
    return Status::InvalidArgument("workload '" + workload_key +
                                   "' was never registered");
  }
  const uint64_t task_id = ++next_task_id_;
  PendingTask& task = pending_[task_id];
  task.workload_key = workload_key;
  task.coalition = coalition;
  int attempts = 0;
  while (!task.done) {
    if (stopping_) {
      if (task.worker >= 0 &&
          static_cast<size_t>(task.worker) < workers_.size()) {
        workers_[static_cast<size_t>(task.worker)]->inflight.erase(task_id);
      }
      pending_.erase(task_id);
      return Status::FailedPrecondition("cluster dispatcher is shut down");
    }
    if (task.worker < 0) {
      // (Re-)dispatch, re-picking while send failures kill workers under
      // us and waiting out the grace window when no shard is schedulable.
      const int worker_index = PickWorkerLocked(coalition);
      if (worker_index >= 0) {
        (void)AssignLocked(task_id, task, worker_index);
        continue;
      }
      if (WaitForWorkerLocked(lock)) continue;
      if (stopping_) continue;  // loop head returns the shutdown error
      pending_.erase(task_id);
      return Status::Unavailable(
          "no schedulable cluster worker within the degraded grace window");
    }
    // Dispatched: wait for the result under the per-attempt deadline.
    // `task.worker < 0` also wakes us — the worker died with no live
    // successor and MarkWorkerDeadLocked handed the re-dispatch back.
    if (options_.rpc_deadline_ms <= 0) {
      completed_.wait(
          lock, [&] { return task.done || stopping_ || task.worker < 0; });
      continue;
    }
    const bool signalled = completed_.wait_for(
        lock, std::chrono::milliseconds(options_.rpc_deadline_ms),
        [&] { return task.done || stopping_ || task.worker < 0; });
    if (signalled) continue;
    // Attempt deadline expired: charge the slow worker's breaker, take
    // the task back and re-dispatch (the worker may still answer later;
    // exactly-once application keeps whichever result lands first).
    ++stats_.deadline_expirations;
    if (task.worker >= 0 &&
        static_cast<size_t>(task.worker) < workers_.size()) {
      workers_[static_cast<size_t>(task.worker)]->inflight.erase(task_id);
      BreakerFailureLocked(static_cast<size_t>(task.worker));
    }
    task.worker = -1;
    ++attempts;
    if (options_.max_task_attempts > 0 &&
        attempts >= options_.max_task_attempts) {
      pending_.erase(task_id);
      return Status::DeadlineExceeded(
          "evaluation exhausted " + std::to_string(attempts) +
          " attempt(s) of " + std::to_string(options_.rpc_deadline_ms) +
          "ms each");
    }
  }
  Status error = task.error;
  UtilityRecord record = task.record;
  const bool fresh = task.fresh;
  pending_.erase(task_id);
  if (!error.ok()) return error;
  if (worker_fresh != nullptr) *worker_fresh = fresh;
  return record;
}

void ClusterDispatcher::NoteDegradedEvaluation() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.degraded_evaluations;
}

void ClusterDispatcher::FailTaskLocked(uint64_t task_id, PendingTask& task,
                                       Status error) {
  (void)task_id;
  task.done = true;
  task.error = std::move(error);
  completed_.notify_all();
}

void ClusterDispatcher::BreakerFailureLocked(size_t index) {
  if (options_.breaker_trip_threshold <= 0) return;
  WorkerState& worker = *workers_[index];
  ++worker.consecutive_failures;
  const Clock::time_point now = Clock::now();
  if (worker.breaker == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open for another cooldown.
    worker.breaker = BreakerState::kOpen;
    worker.breaker_open_until =
        now + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    FEDSHAP_LOG(Warning) << "[cluster] worker " << index
                         << " breaker probe failed; re-opened";
  } else if (worker.breaker == BreakerState::kClosed &&
             worker.consecutive_failures >= options_.breaker_trip_threshold) {
    worker.breaker = BreakerState::kOpen;
    worker.breaker_open_until =
        now + std::chrono::milliseconds(options_.breaker_cooldown_ms);
    ++stats_.breaker_trips;
    FEDSHAP_LOG(Warning) << "[cluster] worker " << index << " breaker open "
                         << "after " << worker.consecutive_failures
                         << " consecutive failure(s)";
  }
  monitor_wake_.notify_all();
  workers_changed_.notify_all();
}

void ClusterDispatcher::BreakerSuccessLocked(size_t index) {
  WorkerState& worker = *workers_[index];
  worker.consecutive_failures = 0;
  if (worker.breaker != BreakerState::kClosed) {
    worker.breaker = BreakerState::kClosed;
    FEDSHAP_LOG(Info) << "[cluster] worker " << index
                      << " breaker closed after successful probe";
    workers_changed_.notify_all();
  }
}

void ClusterDispatcher::MarkWorkerDeadLocked(size_t index) {
  WorkerState& worker = *workers_[index];
  if (!worker.alive) return;
  worker.alive = false;
  worker.died_at = Clock::now();
  if (worker.channel != nullptr) worker.channel->Shutdown();
  std::set<uint64_t> orphans;
  orphans.swap(worker.inflight);
  workers_changed_.notify_all();
  if (stopping_) return;
  ++stats_.workers_lost;
  FEDSHAP_LOG(Warning) << "[cluster] worker " << index << " lost with "
                       << orphans.size() << " in-flight coalition(s)";
  // Fail over every orphaned coalition to the next live shard. The
  // retrained result converges bit-identically: the training is
  // deterministic in the workload, not in which worker runs it.
  for (uint64_t task_id : orphans) {
    auto it = pending_.find(task_id);
    if (it == pending_.end() || it->second.done) continue;
    PendingTask& task = it->second;
    task.worker = -1;
    for (;;) {
      const int next = PickWorkerLocked(task.coalition);
      if (next < 0) {
        // No live successor right now: hand the re-dispatch back to the
        // task's Evaluate, which waits out the degraded grace window for
        // a reconnect before failing Unavailable (the degraded-mode cue).
        completed_.notify_all();
        break;
      }
      if (AssignLocked(task_id, task, next).ok()) {
        ++stats_.reassigned_coalitions;
        break;
      }
    }
  }
}

Status ClusterDispatcher::ValidateRegistrationLocked(
    const WorkerRegistration& registration) {
  if (registration.protocol_version != kClusterProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: worker speaks v" +
        std::to_string(registration.protocol_version) +
        ", coordinator speaks v" + std::to_string(kClusterProtocolVersion));
  }
  for (const auto& [key, fingerprint] : registration.workloads) {
    // A key this coordinator has not registered (yet) is fine — the
    // worker may outlive several coordinator jobs — but a fingerprint
    // clash on a shared key means the worker built a different workload
    // under the same name, and its cache must not be trusted.
    auto it = workloads_.find(key);
    if (it != workloads_.end() && it->second.fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "workload '" + key + "' fingerprint mismatch: worker has " +
          std::to_string(fingerprint) + ", coordinator expects " +
          std::to_string(it->second.fingerprint));
    }
  }
  return Status::OK();
}

void ClusterDispatcher::HandleRegistration(
    std::unique_ptr<FrameChannel> channel) {
  // Read the Register frame, polling in short ticks so a shutdown is not
  // held up by a silent dialer.
  constexpr int kHandshakeTicks = 8;
  std::optional<Frame> frame;
  for (int tick = 0; tick < kHandshakeTicks && !frame.has_value(); ++tick) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    Result<std::optional<Frame>> received = channel->Recv(250);
    if (!received.ok()) return;  // dialer vanished or sent garbage
    frame = std::move(*received);
  }
  if (!frame.has_value() || frame->type != cluster_proto::kRegister) {
    FEDSHAP_LOG(Warning) << "[cluster] dropping connection that did not "
                         << "open with a Register frame";
    return;
  }
  Result<WorkerRegistration> registration =
      DecodeWorkerRegistration(frame->payload);
  if (!registration.ok()) {
    FEDSHAP_LOG(Warning) << "[cluster] malformed registration: "
                         << registration.status();
    return;
  }

  std::shared_ptr<FrameChannel> shared(std::move(channel));
  std::thread stale_receiver;
  size_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    Status valid = ValidateRegistrationLocked(*registration);
    if (!valid.ok()) {
      FEDSHAP_LOG(Warning) << "[cluster] rejecting registration: " << valid;
      (void)shared->Send(cluster_proto::kReject,
                         EncodeReject(valid.message()));
      return;
    }
    if (registration->shard >= 0) {
      // A worker resuming its shard home (reconnect, or a scripted
      // harness pinning shard identities). Grow placeholder slots as
      // needed so the coalition->shard map is stable from the start.
      index = static_cast<size_t>(registration->shard);
      while (workers_.size() <= index) {
        workers_.push_back(std::make_unique<WorkerState>());
      }
      WorkerState& state = *workers_[index];
      if (state.alive) MarkWorkerDeadLocked(index);  // replaced connection
      stale_receiver = std::move(state.receiver);
    } else {
      index = workers_.size();
      workers_.push_back(std::make_unique<WorkerState>());
    }
  }
  // Join the previous generation's receiver outside the lock; its channel
  // is shut down, so it unwinds promptly.
  if (stale_receiver.joinable()) stale_receiver.join();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    WorkerState& state = *workers_[index];
    state.channel = shared;
    ++state.generation;
    state.consecutive_failures = 0;
    state.breaker = BreakerState::kClosed;
    state.last_seen = Clock::now();
    // Seed the announce set from the validated fingerprints: a reconnect
    // resumes with its caches warm and must not be re-sent workloads it
    // already holds.
    for (const auto& [key, fingerprint] : registration->workloads) {
      state.announced.insert(key);
    }
    // Welcome before alive: an Evaluate thread must not race an Assign
    // frame ahead of the shard grant.
    if (!shared->Send(cluster_proto::kWelcome,
                      EncodeWelcome(static_cast<uint32_t>(index)))
             .ok()) {
      state.channel.reset();
      return;
    }
    state.alive = true;
    if (state.generation > 1) {
      ++stats_.worker_reconnects;
      stats_.recovery_seconds_total +=
          std::chrono::duration<double>(Clock::now() - state.died_at).count();
      FEDSHAP_LOG(Info) << "[cluster] worker " << index << " reconnected "
                        << "(generation " << state.generation << ", pid "
                        << registration->pid << ")";
    } else {
      ++stats_.workers_added;
      FEDSHAP_LOG(Info) << "[cluster] worker registered on shard " << index
                        << " (pid " << registration->pid << ")";
    }
    state.receiver = std::thread(
        [this, index, generation = state.generation, ch = state.channel] {
          ReceiverLoop(index, generation, ch);
        });
    StartMonitorLocked();
    workers_changed_.notify_all();
    completed_.notify_all();  // orphaned tasks can re-dispatch here
  }
}

void ClusterDispatcher::AcceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) return;
    }
    Result<std::unique_ptr<FrameChannel>> accepted = listener_->Accept(250);
    if (!accepted.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_) {
        FEDSHAP_LOG(Warning) << "[cluster] listener failed: "
                             << accepted.status();
      }
      return;
    }
    if (*accepted == nullptr) continue;  // timeout tick
    HandleRegistration(std::move(*accepted));
  }
}

void ClusterDispatcher::HandleFrame(size_t index, uint64_t generation,
                                    const Frame& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerState& worker = *workers_[index];
  if (worker.generation != generation) return;  // stale connection
  worker.last_seen = Clock::now();
  switch (frame.type) {
    case cluster_proto::kHello:
    case cluster_proto::kHeartbeat:
      return;  // liveness only; last_seen is already refreshed
    case cluster_proto::kRegister: {
      // Re-registration over an already-attached channel (the socketpair
      // path, where there is no accept loop to run the handshake).
      Result<WorkerRegistration> registration =
          DecodeWorkerRegistration(frame.payload);
      if (!registration.ok()) {
        FEDSHAP_LOG(Warning) << "[cluster] malformed registration from "
                             << "worker " << index << "; ignored";
        return;
      }
      Status valid = ValidateRegistrationLocked(*registration);
      if (!valid.ok()) {
        FEDSHAP_LOG(Warning) << "[cluster] rejecting worker " << index << ": "
                             << valid;
        (void)worker.channel->Send(cluster_proto::kReject,
                                   EncodeReject(valid.message()));
        MarkWorkerDeadLocked(index);
        return;
      }
      for (const auto& [key, fingerprint] : registration->workloads) {
        worker.announced.insert(key);
      }
      (void)worker.channel->Send(cluster_proto::kWelcome,
                                 EncodeWelcome(static_cast<uint32_t>(index)));
      return;
    }
    case cluster_proto::kResult: {
      ByteReader reader(frame.payload);
      Result<uint64_t> task_id = reader.GetVarint();
      Result<uint64_t> hash = reader.GetU64();
      Result<double> utility = reader.GetDouble();
      Result<double> cost = reader.GetDouble();
      Result<uint8_t> fresh = reader.GetU8();
      if (!task_id.ok() || !hash.ok() || !utility.ok() || !cost.ok() ||
          !fresh.ok()) {
        FEDSHAP_LOG(Warning) << "[cluster] malformed result frame from "
                             << "worker " << index << "; ignored";
        return;
      }
      // Any well-formed task response proves the worker responsive.
      BreakerSuccessLocked(index);
      auto it = pending_.find(*task_id);
      if (it == pending_.end() || it->second.done ||
          it->second.coalition.Hash() != *hash) {
        // Exactly-once application: a duplicate delivery, a frame for a
        // task already failed over and completed elsewhere, or a stale
        // id. The first accepted result won; drop this one.
        ++stats_.duplicate_results_ignored;
        return;
      }
      PendingTask& task = it->second;
      task.done = true;
      task.record = UtilityRecord{*utility, *cost};
      task.fresh = *fresh != 0;
      if (task.worker >= 0 &&
          static_cast<size_t>(task.worker) < workers_.size()) {
        workers_[static_cast<size_t>(task.worker)]->inflight.erase(*task_id);
      }
      ++stats_.results_applied;
      if (task.fresh) ++stats_.worker_fresh_trainings;
      completed_.notify_all();
      return;
    }
    case cluster_proto::kError: {
      ByteReader reader(frame.payload);
      Result<uint64_t> task_id = reader.GetVarint();
      Result<std::string> message = reader.GetString();
      if (!task_id.ok() || !message.ok()) return;
      BreakerSuccessLocked(index);
      auto it = pending_.find(*task_id);
      if (it == pending_.end() || it->second.done) {
        ++stats_.duplicate_results_ignored;
        return;
      }
      worker.inflight.erase(*task_id);
      FailTaskLocked(*task_id, it->second,
                     Status::Internal("worker " + std::to_string(index) +
                                      " failed evaluation: " + *message));
      return;
    }
    default:
      FEDSHAP_LOG(Warning) << "[cluster] unexpected frame type " << frame.type
                           << " from worker " << index;
      return;
  }
}

void ClusterDispatcher::ReceiverLoop(size_t index, uint64_t generation,
                                     std::shared_ptr<FrameChannel> channel) {
  for (;;) {
    Result<std::optional<Frame>> received = channel->Recv(250);
    if (!received.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      // A corrupt frame (CRC mismatch) or EOF kills the connection, but
      // only the current generation may declare the slot dead — a
      // reconnect may already have swapped in a fresh channel.
      if (workers_[index]->generation == generation) {
        MarkWorkerDeadLocked(index);
      }
      return;
    }
    if (!received->has_value()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_ || workers_[index]->generation != generation) return;
      continue;
    }
    HandleFrame(index, generation, **received);
  }
}

ClusterDispatcher::MonitorDeadlines ClusterDispatcher::ComputeDeadlinesLocked(
    Clock::time_point now) const {
  MonitorDeadlines deadlines;
  for (const auto& worker : workers_) {
    if (!worker->alive) continue;
    if (options_.heartbeat_timeout_ms > 0) {
      const int until = MillisUntil(
          now, worker->last_seen +
                   std::chrono::milliseconds(options_.heartbeat_timeout_ms));
      if (deadlines.heartbeat_ms < 0 || until < deadlines.heartbeat_ms) {
        deadlines.heartbeat_ms = until;
      }
    }
    if (worker->breaker == BreakerState::kOpen) {
      const int until = MillisUntil(now, worker->breaker_open_until);
      if (deadlines.breaker_ms < 0 || until < deadlines.breaker_ms) {
        deadlines.breaker_ms = until;
      }
    }
  }
  if (options_.task_retry_ms > 0) {
    for (const auto& [task_id, task] : pending_) {
      if (task.done || task.worker < 0) continue;
      const int until = MillisUntil(
          now,
          task.sent_at + std::chrono::milliseconds(options_.task_retry_ms));
      if (deadlines.retry_ms < 0 || until < deadlines.retry_ms) {
        deadlines.retry_ms = until;
      }
    }
  }
  return deadlines;
}

void ClusterDispatcher::MonitorLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    const int tick_ms = NextDeadlineMs(ComputeDeadlinesLocked(Clock::now()));
    monitor_wake_.wait_for(lock, std::chrono::milliseconds(tick_ms));
    if (stopping_) return;
    const Clock::time_point now = Clock::now();
    for (size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i]->alive) continue;
      const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - workers_[i]->last_seen);
      if (silent.count() > options_.heartbeat_timeout_ms) {
        FEDSHAP_LOG(Warning) << "[cluster] worker " << i << " heartbeat "
                             << "silent for " << silent.count() << "ms";
        MarkWorkerDeadLocked(i);
        continue;
      }
      if (workers_[i]->breaker == BreakerState::kOpen &&
          now >= workers_[i]->breaker_open_until) {
        // Cooldown elapsed: half-open, letting one round of probe traffic
        // through to decide close-or-reopen.
        workers_[i]->breaker = BreakerState::kHalfOpen;
        ++stats_.breaker_probes;
        FEDSHAP_LOG(Info) << "[cluster] worker " << i
                          << " breaker half-open; probing";
        workers_changed_.notify_all();
        completed_.notify_all();
      }
    }
    if (options_.task_retry_ms > 0) {
      for (auto& [task_id, task] : pending_) {
        if (task.done || task.worker < 0) continue;
        const auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - task.sent_at);
        if (waited.count() <= options_.task_retry_ms) continue;
        // A lost result frame: re-send to the task's worker (its cache
        // makes the re-run a hit). A dead worker was already failed over
        // by MarkWorkerDeadLocked, so alive is expected here.
        if (workers_[static_cast<size_t>(task.worker)]->alive &&
            AssignLocked(task_id, task, task.worker).ok()) {
          ++stats_.retried_tasks;
        }
      }
    }
  }
}

size_t ClusterDispatcher::live_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const auto& worker : workers_) {
    if (worker->alive) ++live;
  }
  return live;
}

ClusterStats ClusterDispatcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ClusterDispatcher::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    stopping_ = true;
    if (listener_ != nullptr) listener_->Shutdown();
    for (auto& worker : workers_) {
      if (worker->channel == nullptr) continue;  // placeholder slot
      if (worker->alive) {
        (void)worker->channel->Send(cluster_proto::kShutdown, "");
      }
      worker->channel->Shutdown();
    }
    for (auto& [task_id, task] : pending_) {
      if (!task.done) {
        FailTaskLocked(task_id, task,
                       Status::FailedPrecondition(
                           "cluster dispatcher is shut down"));
      }
    }
    completed_.notify_all();
    monitor_wake_.notify_all();
    workers_changed_.notify_all();
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker->receiver.joinable()) worker->receiver.join();
  }
  if (monitor_.joinable()) monitor_.join();
}

Result<double> ClusterUtility::Evaluate(const Coalition& coalition) const {
  Result<UtilityRecord> record =
      dispatcher_->Evaluate(workload_key_, coalition);
  if (record.ok()) return record->utility;
  if (record.status().code() == StatusCode::kUnavailable) {
    // Degraded mode: no schedulable worker within the grace window. Train
    // the coalition right here on the coordinator's own build — the
    // utility is deterministic in the workload, not in where it runs, so
    // the value is the same bits a worker would have produced.
    dispatcher_->NoteDegradedEvaluation();
    return fallback_->Evaluate(coalition);
  }
  return record.status();
}

}  // namespace fedshap
