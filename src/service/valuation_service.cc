#include "service/valuation_service.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "service/cluster.h"
#include "util/logging.h"
#include "util/serialization.h"
#include "util/thread_pool.h"

namespace fedshap {

namespace {

/// Suffixes of a job's state files under `<state_dir>/jobs/`.
constexpr const char* kSpecSuffix = ".job";
constexpr const char* kSnapshotSuffix = ".snap";
constexpr const char* kResultSuffix = ".result";

/// Pending prefetch plans beyond this are dropped oldest-first: a stale
/// plan's coalitions are mostly evaluated (cache hits) by the time the
/// prefetcher would reach them, so keeping the newest plans is both the
/// bound and the better speculation.
constexpr size_t kMaxPrefetchPlans = 32;

}  // namespace

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

ValuationService::ValuationService(const ServiceConfig& config)
    : config_(config), paused_(config.paused) {
  if (!config_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.state_dir + "/jobs", ec);
    std::filesystem::create_directories(config_.state_dir + "/store", ec);
    if (ec) {
      FEDSHAP_LOG(Warning) << "could not create state directory "
                           << config_.state_dir << ": " << ec.message();
    }
  }
  const int workers = std::max(1, config_.workers);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // One prefetch thread per service: speculation is budget-gated (see
  // PrefetchLoop), so a single drainer is enough and keeps ordering of
  // plans simple. It idles when no job asks for prefetch.
  prefetcher_ = std::thread([this] { PrefetchLoop(); });
}

ValuationService::~ValuationService() { Stop(); }

std::string ValuationService::JobFilePath(const std::string& name,
                                          const char* suffix) const {
  return config_.state_dir + "/jobs/" + name + suffix;
}

void ValuationService::RemoveJobFiles(const std::string& name) const {
  if (config_.state_dir.empty()) return;
  std::error_code ec;
  std::filesystem::remove(JobFilePath(name, kSpecSuffix), ec);
  std::filesystem::remove(JobFilePath(name, kSnapshotSuffix), ec);
  std::filesystem::remove(JobFilePath(name, kResultSuffix), ec);
}

Result<std::shared_ptr<ValuationService::Workload>>
ValuationService::GetOrBuildWorkload(const ScenarioSpec& scenario) {
  const std::string key = scenario.CanonicalKey();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = workloads_.find(key);
    if (it != workloads_.end()) return it->second;
  }

  // Build unlocked: data generation, model init and the store's
  // load-on-open preload take real time, and holding the service mutex
  // here would stall every worker transition and status query.
  auto workload = std::make_shared<Workload>();
  workload->key = key;
  FEDSHAP_ASSIGN_OR_RETURN(workload->utility, scenario.Build());
  workload->fingerprint = workload->utility->Fingerprint();
  if (config_.cluster != nullptr) {
    // Coordinator mode: the cache fronts a ClusterUtility, so every miss
    // ships to the coalition's shard instead of training here. The cache
    // stays the single source of truth for hits and fresh-training
    // accounting, which is why values and counts match the clusterless
    // run bit-for-bit. The locally built utility doubles as the degraded
    // fallback: when no worker is schedulable past the grace window, the
    // coalition trains right here and the job keeps converging.
    config_.cluster->RegisterWorkload(key, scenario, workload->fingerprint);
    workload->remote = std::make_unique<ClusterUtility>(
        config_.cluster, key, workload->utility.get());
    workload->cache = std::make_unique<UtilityCache>(workload->remote.get());
  } else {
    workload->cache = std::make_unique<UtilityCache>(workload->utility.get());
  }
  if (!config_.state_dir.empty()) {
    // One store per workload under the service's state directory; always
    // opened in resume mode — a service exists to accumulate and reuse
    // trainings, so trusting its own store is the point.
    FEDSHAP_ASSIGN_OR_RETURN(
        workload->store,
        OpenAndAttachStore(config_.state_dir + "/store/utilities",
                           /*resume=*/true, *workload->utility,
                           *workload->cache, config_.store_flush_bytes));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  // A racing builder of the same key may have won; keep the table's
  // context (jobs already point at it) and drop ours.
  auto [it, inserted] = workloads_.emplace(key, workload);
  return it->second;
}

Status ValuationService::SubmitInternal(const JobSpec& spec,
                                        bool restore_snapshot) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("job has no name");
  }
  {
    // Early reject before paying for a workload build. The name is only
    // reserved at the final insert, so a concurrent duplicate submit is
    // still caught below.
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Status::FailedPrecondition("service is stopped");
    if (jobs_.count(spec.name) != 0) {
      return Status::AlreadyExists("job '" + spec.name + "' already exists");
    }
  }

  auto job = std::make_unique<Job>();
  job->spec = spec;
  FEDSHAP_ASSIGN_OR_RETURN(job->workload, GetOrBuildWorkload(spec.scenario));
  job->session = std::make_shared<UtilitySession>(job->workload->cache.get());
  job->session->set_fused(spec.fuse);
  if (IsResumable(spec.estimator)) {
    FEDSHAP_ASSIGN_OR_RETURN(
        job->sweep, MakeSweep(spec, job->workload->utility->num_clients()));
    if (restore_snapshot && !config_.state_dir.empty()) {
      Status restored =
          LoadSnapshot(*job->sweep, JobFilePath(spec.name, kSnapshotSuffix));
      if (!restored.ok() && restored.code() != StatusCode::kNotFound) {
        return restored;
      }
    }
    job->completed_units = job->sweep->completed_units();
    job->total_units = job->sweep->total_units();
  } else {
    job->total_units = 1;
  }

  if (!config_.state_dir.empty()) {
    FEDSHAP_RETURN_NOT_OK(WriteFileAtomic(JobFilePath(spec.name, kSpecSuffix),
                                          spec.ToLine() + "\n"));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return Status::FailedPrecondition("service is stopped");
  if (jobs_.count(spec.name) != 0) {
    return Status::AlreadyExists("job '" + spec.name + "' already exists");
  }
  queue_.push_back(spec.name);
  auto [it, inserted] = jobs_.emplace(spec.name, std::move(job));
  ++jobs_submitted_;
  // Seed the prefetcher with the job's opening coalitions: while the job
  // waits behind the queue, its first slice's trainings can already run.
  QueuePrefetchLocked(*it->second);
  runnable_.notify_one();
  return Status::OK();
}

Status ValuationService::Submit(const JobSpec& spec) {
  return SubmitInternal(spec, /*restore_snapshot=*/false);
}

Status ValuationService::Recover() {
  if (config_.state_dir.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::directory_iterator dir(config_.state_dir + "/jobs", ec);
  if (ec) return Status::OK();  // Nothing persisted yet.

  Status first_error = Status::OK();
  for (const std::filesystem::directory_entry& entry : dir) {
    const std::filesystem::path& path = entry.path();
    if (path.extension() != kSpecSuffix) continue;
    const std::string name = path.stem().string();

    Result<std::string> line = ReadFileToString(path.string());
    if (!line.ok()) {
      if (first_error.ok()) first_error = line.status();
      continue;
    }
    Result<JobSpec> spec = JobSpec::FromLine(*line);
    if (!spec.ok()) {
      if (first_error.ok()) first_error = spec.status();
      continue;
    }

    // A persisted result means the job completed in a previous process:
    // serve it as done without rebuilding its workload.
    Result<std::string> encoded =
        ReadFileToString(JobFilePath(name, kResultSuffix));
    if (encoded.ok()) {
      Result<ValuationResult> result = DecodeValuationResult(*encoded);
      if (result.ok()) {
        auto job = std::make_unique<Job>();
        job->spec = std::move(spec).value();
        job->state = JobState::kDone;
        job->result = std::move(result).value();
        job->completed_units = job->total_units = 1;
        std::lock_guard<std::mutex> lock(mutex_);
        if (jobs_.count(name) == 0) {  // Skip if live (double Recover).
          jobs_.emplace(name, std::move(job));
          ++jobs_submitted_;
        }
        continue;
      }
      // A corrupt result file falls through to a clean re-run.
    }

    Status submitted = SubmitInternal(*spec, /*restore_snapshot=*/true);
    // AlreadyExists just means the job is live (double Recover).
    if (!submitted.ok() &&
        submitted.code() != StatusCode::kAlreadyExists &&
        first_error.ok()) {
      first_error = submitted;
    }
  }
  state_changed_.notify_all();
  return first_error;
}

JobStatus ValuationService::StatusOfLocked(const std::string& name,
                                           const Job& job) const {
  JobStatus status;
  status.name = name;
  status.state = job.state;
  status.spec = job.spec;
  status.completed_units = job.completed_units;
  status.total_units = job.total_units;
  status.result = job.result;
  status.error = job.error;
  status.workload_fingerprint =
      job.workload != nullptr ? job.workload->fingerprint : 0;
  return status;
}

Result<JobStatus> ValuationService::GetStatus(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    return Status::NotFound("no job named '" + name + "'");
  }
  return StatusOfLocked(name, *it->second);
}

std::vector<JobStatus> ValuationService::ListJobs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JobStatus> statuses;
  statuses.reserve(jobs_.size());
  for (const auto& [name, job] : jobs_) {
    statuses.push_back(StatusOfLocked(name, *job));
  }
  return statuses;
}

Status ValuationService::Cancel(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    return Status::NotFound("no job named '" + name + "'");
  }
  Job& job = *it->second;
  switch (job.state) {
    case JobState::kQueued:
      FinalizeLocked(name, job, JobState::kCancelled);
      return Status::OK();
    case JobState::kRunning:
      // The owning worker observes the flag after its current slice.
      job.cancel_requested = true;
      return Status::OK();
    default:
      return Status::FailedPrecondition("job '" + name + "' is already " +
                                        JobStateName(job.state));
  }
}

Status ValuationService::Purge(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = jobs_.find(name);
  if (it == jobs_.end()) {
    return Status::NotFound("no job named '" + name + "'");
  }
  const JobState state = it->second->state;
  if (state == JobState::kQueued || state == JobState::kRunning) {
    return Status::FailedPrecondition("job '" + name +
                                      "' is still active; cancel it first");
  }
  RemoveJobFiles(name);
  jobs_.erase(it);
  return Status::OK();
}

Result<ValuationResult> ValuationService::Wait(const std::string& name) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = jobs_.find(name);
    if (it == jobs_.end()) {
      return Status::NotFound("no job named '" + name + "'");
    }
    const Job& job = *it->second;
    switch (job.state) {
      case JobState::kDone:
        return job.result;
      case JobState::kFailed:
        return Status::Internal("job '" + name + "' failed: " + job.error);
      case JobState::kCancelled:
        return Status::FailedPrecondition("job '" + name +
                                          "' was cancelled");
      default:
        break;
    }
    if (stopping_) {
      return Status::FailedPrecondition(
          "service halted before job '" + name + "' finished");
    }
    state_changed_.wait(lock);
  }
}

bool ValuationService::WaitAll() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    bool all_terminal = true;
    for (const auto& [name, job] : jobs_) {
      const JobState state = job->state;
      if (state == JobState::kQueued || state == JobState::kRunning) {
        all_terminal = false;
        break;
      }
    }
    if (all_terminal) return true;
    if (stopping_) return false;
    state_changed_.wait(lock);
  }
}

void ValuationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  runnable_.notify_all();
  state_changed_.notify_all();
  prefetch_ready_.notify_all();
  // Serialize the join/flush phase: Stop() may be called concurrently
  // (an explicit Stop racing the destructor, or a caller racing an
  // in-flight speculative training), and std::thread::join is not safe
  // to race with itself.
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // The prefetcher must be parked before the stores are flushed (and,
  // in the destructor that follows, closed): a speculative training is
  // a write-through into the very store being shut down.
  if (prefetcher_.joinable()) prefetcher_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  FlushStoresLocked();
}

bool ValuationService::halted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stopping_;
}

void ValuationService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    paused_ = false;
  }
  runnable_.notify_all();
}

ServiceStats ValuationService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats stats;
  stats.jobs_submitted = jobs_submitted_;
  for (const auto& [name, job] : jobs_) {
    switch (job->state) {
      case JobState::kDone:
        ++stats.jobs_done;
        break;
      case JobState::kFailed:
        ++stats.jobs_failed;
        break;
      case JobState::kCancelled:
        ++stats.jobs_cancelled;
        break;
      default:
        break;
    }
  }
  stats.slices_executed = slices_executed_;
  stats.workloads = workloads_.size();
  stats.prefetch_trainings = prefetch_trainings_;
  for (const auto& [name, job] : jobs_) {
    if (job->session != nullptr) {
      stats.prefetch_credited += job->session->prefetch_credited();
      stats.prefetch_consumed += job->session->prefetch_consumed();
    }
  }
  for (const auto& [key, workload] : workloads_) {
    stats.trainings_computed += workload->cache->misses();
    stats.trainings_preloaded += workload->cache->preloaded();
    if (workload->store != nullptr) {
      const UtilityStoreStats store = workload->store->stats();
      stats.store_entries += store.entries;
      stats.store_segments += store.sealed_segments;
      stats.store_bytes += store.sealed_bytes + store.active_bytes;
      stats.store_mapped_bytes += store.mapped_bytes;
      stats.store_evictions += store.evictions;
      stats.store_compactions += store.compactions;
    }
  }
  return stats;
}

void ValuationService::FlushStoresLocked() {
  for (const auto& [key, workload] : workloads_) {
    if (workload->store == nullptr) continue;
    Status flushed = workload->store->Flush();
    if (!flushed.ok()) {
      FEDSHAP_LOG(Warning) << "store flush failed for workload " << key
                           << ": " << flushed.ToString();
    }
  }
}

void ValuationService::FinalizeLocked(const std::string& name, Job& job,
                                      JobState state) {
  job.state = state;
  if (state == JobState::kDone && !config_.state_dir.empty()) {
    Status written = WriteFileAtomic(JobFilePath(name, kResultSuffix),
                                     EncodeValuationResult(job.result));
    if (!written.ok()) {
      FEDSHAP_LOG(Warning) << "could not persist result of job " << name
                           << ": " << written.ToString();
    }
    std::error_code ec;
    std::filesystem::remove(JobFilePath(name, kSnapshotSuffix), ec);
  }
  if (state == JobState::kCancelled) {
    RemoveJobFiles(name);
  }
  state_changed_.notify_all();
}

void ValuationService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    runnable_.wait(lock, [this] {
      return stopping_ || (!paused_ && !queue_.empty());
    });
    if (stopping_) return;
    if (config_.max_slices > 0 &&
        slices_executed_ >= config_.max_slices) {
      // The test hook tripped: halt exactly as Stop() would, leaving
      // still-queued jobs checkpointed on disk for the next Recover().
      stopping_ = true;
      runnable_.notify_all();
      state_changed_.notify_all();
      prefetch_ready_.notify_all();
      return;
    }
    const std::string name = queue_.front();
    queue_.pop_front();
    auto it = jobs_.find(name);
    if (it == jobs_.end()) continue;  // Purged while queued.
    Job& job = *it->second;
    if (job.state != JobState::kQueued) continue;  // Cancelled stale entry.
    RunSlice(name, job, lock);
  }
}

void ValuationService::RunSlice(const std::string& name, Job& job,
                                std::unique_lock<std::mutex>& lock) {
  job.state = JobState::kRunning;
  // The slice itself runs unlocked: the estimator and session belong to
  // this worker until the job transitions out of kRunning, and the
  // shared cache below is internally synchronized.
  UtilitySession* session = job.session.get();
  ResumableEstimator* sweep = job.sweep.get();
  const JobSpec spec = job.spec;
  lock.unlock();

  // This worker thread is one compute thread for the slice's duration:
  // lease its slot from the global budget so TrainFedAvg calls nested
  // under a fully-busy service fan no further (see util/thread_pool.h).
  WorkerBudget::Lease compute_slot(WorkerBudget::Global(), 1);

  bool finished = false;
  ValuationResult result;
  std::string error;

  if (sweep != nullptr) {
    Status stepped = sweep->Step(*session, spec.checkpoint_every);
    if (stepped.ok() && !config_.state_dir.empty()) {
      // Checkpoint after every slice; a failed checkpoint fails the job
      // rather than silently weakening the crash-recovery contract.
      stepped = SaveSnapshot(*sweep, JobFilePath(name, kSnapshotSuffix));
    }
    if (!stepped.ok()) {
      error = stepped.ToString();
    } else if (sweep->done()) {
      // Fence the speculation before materializing the result: every
      // in-flight credit for this session lands first, keeping the
      // final num_fresh_trainings exact.
      if (spec.prefetch > 0) DrainPrefetchForSession(session);
      Result<ValuationResult> finish = sweep->Finish(*session);
      if (finish.ok()) {
        finished = true;
        result = std::move(finish).value();
      } else {
        error = finish.status().ToString();
      }
    }
  } else {
    Result<ValuationResult> one_shot = RunOneShot(spec, *session);
    if (one_shot.ok()) {
      finished = true;
      result = std::move(one_shot).value();
    } else {
      error = one_shot.status().ToString();
    }
  }

  lock.lock();
  ++slices_executed_;
  if (sweep != nullptr) {
    job.completed_units = sweep->completed_units();
    job.total_units = sweep->total_units();
  } else if (finished) {
    job.completed_units = 1;
  }
  if (!error.empty()) {
    job.error = error;
    FinalizeLocked(name, job, JobState::kFailed);
  } else if (finished) {
    job.result = std::move(result);
    FinalizeLocked(name, job, JobState::kDone);
  } else if (job.cancel_requested) {
    FinalizeLocked(name, job, JobState::kCancelled);
  } else {
    job.state = JobState::kQueued;
    // The estimator is quiescent until a worker dequeues the job again:
    // publish what it will evaluate next so the prefetcher can train
    // those coalitions while the job waits its turn in the queue.
    QueuePrefetchLocked(job);
    queue_.push_back(name);
    runnable_.notify_one();
    state_changed_.notify_all();  // Progress is observable state too.
  }
}

void ValuationService::QueuePrefetchLocked(Job& job) {
  if (job.spec.prefetch <= 0 || job.sweep == nullptr ||
      job.session == nullptr || stopping_) {
    return;
  }
  PrefetchPlan plan;
  plan.coalitions =
      job.sweep->PeekNext(static_cast<size_t>(job.spec.prefetch));
  if (plan.coalitions.empty()) return;  // Nothing determined to peek at.
  plan.workload = job.workload;
  plan.session = job.session;
  while (prefetch_queue_.size() >= kMaxPrefetchPlans) {
    prefetch_queue_.pop_front();
  }
  prefetch_queue_.push_back(std::move(plan));
  prefetch_ready_.notify_one();
}

void ValuationService::PrefetchLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    prefetch_ready_.wait(lock, [this] {
      return stopping_ || !prefetch_queue_.empty();
    });
    if (stopping_) return;
    PrefetchPlan plan = std::move(prefetch_queue_.front());
    prefetch_queue_.pop_front();
    prefetch_active_session_ = plan.session.get();
    lock.unlock();

    size_t trained = 0;
    for (const Coalition& coalition : plan.coalitions) {
      {
        std::lock_guard<std::mutex> stop_check(mutex_);
        if (stopping_) break;
      }
      // Speculate only on idle capacity: when demand work holds every
      // budget slot, drop the rest of the plan instead of competing —
      // prefetch is an optimization, never an obligation.
      const int granted = WorkerBudget::Global().TryAcquire(1);
      if (granted == 0) break;
      bool fresh = false;
      Result<UtilityRecord> record =
          plan.workload->cache->Get(coalition, &fresh);
      WorkerBudget::Global().Release(granted);
      if (!record.ok()) break;  // The demand path will surface the error.
      if (fresh) {
        // Exactly-once attribution: single-flight in the cache means this
        // training can never also be counted by the job's own Evaluate.
        plan.session->CreditPrefetchedTraining(coalition);
        ++trained;
      }
    }

    lock.lock();
    prefetch_trainings_ += trained;
    prefetch_active_session_ = nullptr;
    prefetch_idle_.notify_all();
  }
}

void ValuationService::DrainPrefetchForSession(
    const UtilitySession* session) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Queued speculation for a finishing job is useless: everything it
  // would train, the job has either evaluated already or never will.
  for (auto it = prefetch_queue_.begin(); it != prefetch_queue_.end();) {
    if (it->session.get() == session) {
      it = prefetch_queue_.erase(it);
    } else {
      ++it;
    }
  }
  prefetch_idle_.wait(lock, [this, session] {
    return prefetch_active_session_ != session;
  });
}

}  // namespace fedshap
