#ifndef FEDSHAP_DATA_SYNTHETIC_H_
#define FEDSHAP_DATA_SYNTHETIC_H_

#include <vector>

#include "data/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// A generated dataset plus per-row group ids used by "natural" federated
/// partitions (FEMNIST partitions by writer, Adult by occupation).
struct FederatedSource {
  /// The generated rows.
  Dataset data;
  /// group_ids[i] in [0, num_groups) identifies which writer / occupation
  /// produced row i.
  std::vector<int> group_ids;
  /// Number of distinct groups.
  int num_groups = 0;
};

/// Configuration for the synthetic handwritten-digit generator.
///
/// Stands in for MNIST / FEMNIST (no bundled datasets in this offline
/// build): each class has a smooth random prototype image; each *writer*
/// perturbs the prototypes with a personal style offset, which is what makes
/// writer-based partitions non-IID exactly like FEMNIST's user split.
struct DigitsConfig {
  /// Images are image_size x image_size single-channel, flattened row-major.
  int image_size = 8;
  /// Number of digit classes.
  int num_classes = 10;
  /// Per-pixel Gaussian observation noise.
  double pixel_noise = 0.25;
  /// Number of distinct writers (>= 1). With 1 writer the data is IID.
  int num_writers = 1;
  /// Strength of the per-writer style perturbation.
  double writer_shift = 0.35;
  /// Seed controlling the class prototypes (fixed across clients so the
  /// learning problem is shared; per-sample noise comes from the Rng).
  uint64_t prototype_seed = 1234;
};

/// Generates `num_samples` digit images. Rows carry writer ids in
/// `group_ids` so the FEMNIST-style partition can split by writer.
Result<FederatedSource> GenerateDigits(const DigitsConfig& config,
                                       size_t num_samples, Rng& rng);

/// Configuration for the synthetic census-income generator ("Adult"-like).
///
/// 14 mixed-type features mirroring the Adult schema (age, education,
/// hours-per-week, capital gain/loss, encoded categoricals, ...); the binary
/// target is a noisy nonlinear function of a latent income propensity. Rows
/// carry an occupation id used for the natural partition.
struct TabularConfig {
  /// Number of distinct occupations (the natural partition's groups).
  int num_occupations = 12;
  /// Label noise: probability of flipping the income label.
  double label_noise = 0.02;
  /// Seed of the fixed schema-level randomness (feature encodings).
  uint64_t schema_seed = 97;
};

/// Number of features produced by GenerateTabular (fixed schema).
constexpr int kTabularFeatures = 14;

/// Generates `num_samples` census-style rows with occupation group ids.
Result<FederatedSource> GenerateTabular(const TabularConfig& config,
                                        size_t num_samples, Rng& rng);

/// Configuration for the linear-regression generator used by the theory
/// benches (Donahue & Kleinberg model: x ~ N(0, I), y = w.x + eps).
struct RegressionConfig {
  /// Feature dimension d.
  int dim = 10;
  /// Standard deviation of the additive label noise eps.
  double noise_stddev = 1.0;
  /// Seed of the fixed true weight vector w.
  uint64_t weight_seed = 7;
};

/// Generates `num_samples` rows of the linear-regression problem.
Result<Dataset> GenerateRegression(const RegressionConfig& config,
                                   size_t num_samples, Rng& rng);

/// Generates a simple two-class Gaussian-blob problem; handy for fast unit
/// tests of models and FL training.
Result<Dataset> GenerateBlobs(int num_classes, int dim, double separation,
                              size_t num_samples, Rng& rng);

}  // namespace fedshap

#endif  // FEDSHAP_DATA_SYNTHETIC_H_
