#ifndef FEDSHAP_DATA_DATASET_H_
#define FEDSHAP_DATA_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// In-memory dense dataset: row-major float features plus one target per row.
///
/// Serves both classification (targets are class ids stored as float;
/// `num_classes() > 0`) and regression (`num_classes() == 0`). This is the
/// unit a FL client owns (the D_i of the paper) and what FedAvg trains on.
class Dataset {
 public:
  /// Creates an empty dataset with the given schema. `num_classes == 0`
  /// denotes a regression target.
  static Result<Dataset> Create(int num_features, int num_classes);

  /// Creates an empty 0-feature dataset (assign a real one over it).
  Dataset() = default;

  /// Feature dimension of every row.
  int num_features() const { return num_features_; }
  /// Number of classes (0 for regression targets).
  int num_classes() const { return num_classes_; }
  /// Number of rows.
  size_t size() const { return labels_.size(); }
  /// True when the dataset has no rows.
  bool empty() const { return labels_.empty(); }

  /// Pre-allocates storage for `rows` additional rows.
  void Reserve(size_t rows);

  /// Appends one example. `features` must contain num_features() values.
  void Append(const float* features, float target);
  /// Appends one example from a vector of num_features() values.
  void Append(const std::vector<float>& features, float target);

  /// Pointer to row i's feature vector (num_features() floats).
  const float* Row(size_t i) const {
    return features_.data() + i * static_cast<size_t>(num_features_);
  }
  /// Mutable pointer to row i's feature vector (num_features() floats).
  float* MutableRow(size_t i) {
    return features_.data() + i * static_cast<size_t>(num_features_);
  }

  /// Target value of row i (class id as float, or regression value).
  float Target(size_t i) const { return labels_[i]; }
  /// Overwrites the target value of row i.
  void SetTarget(size_t i, float target) { labels_[i] = target; }

  /// Class id of row i; only valid for classification datasets.
  int ClassLabel(size_t i) const;

  /// Contiguous feature storage (size() * num_features() floats).
  const std::vector<float>& features() const { return features_; }
  /// Contiguous target storage (size() floats).
  const std::vector<float>& targets() const { return labels_; }

  /// New dataset holding the selected rows (copies data).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Returns the first `count` rows as a new dataset.
  Dataset Head(size_t count) const;

  /// Concatenates datasets with identical schemas. Null entries and empty
  /// datasets are allowed (they contribute nothing); this is how the FL
  /// server materializes the coalition dataset D_S = union of D_i.
  static Result<Dataset> Merge(const std::vector<const Dataset*>& parts);

  /// Randomly permutes the rows in place.
  void Shuffle(Rng& rng);

  /// Splits into (train, test) with `train_fraction` of rows (rounded down)
  /// in the first part, after an in-place shuffle of the copy.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng& rng) const;

  /// Per-class row counts (classification only).
  std::vector<size_t> ClassHistogram() const;

  /// One-line human-readable summary (schema + row count).
  std::string DebugString() const;

  /// 64-bit content fingerprint over the schema and every feature/target
  /// byte. Two datasets fingerprint equal iff they hold the same rows in
  /// the same order. Used to content-address persisted utility values: a
  /// utility cached on disk is only valid for the exact client datasets
  /// it was trained on.
  uint64_t Fingerprint() const;

 private:
  Dataset(int num_features, int num_classes)
      : num_features_(num_features), num_classes_(num_classes) {}

  int num_features_ = 0;
  int num_classes_ = 0;
  std::vector<float> features_;
  std::vector<float> labels_;
};

/// A read-only, non-owning row view over one or more Datasets with a
/// shared schema: the coalition dataset D_S = union of D_i *without*
/// materializing it. Gathering builds one row-pointer (8 bytes) and one
/// target (4 bytes) per row instead of copying `num_features` floats —
/// this is how GbdtUtility assembles each evaluated coalition's training
/// set, turning the former per-coalition Dataset::Merge copy into an
/// index gather. Rows appear in part order then row order, exactly the
/// order Dataset::Merge would have concatenated them, so consumers see
/// bit-identical data.
///
/// The viewed datasets must outlive the view and must not be mutated
/// (row pointers alias their storage).
class DatasetView {
 public:
  /// An empty view (0 rows, regression schema).
  DatasetView() = default;

  /// Builds a view over `parts` (null/empty entries contribute nothing,
  /// as in Dataset::Merge). Fails when non-empty parts disagree on
  /// schema. All parts empty yields an empty view.
  static Result<DatasetView> Gather(const std::vector<const Dataset*>& parts);

  /// A view of one whole dataset.
  static DatasetView Of(const Dataset& data);

  /// Feature dimension of every row.
  int num_features() const { return num_features_; }
  /// Number of classes (0 for regression targets).
  int num_classes() const { return num_classes_; }
  /// Number of rows.
  size_t size() const { return targets_.size(); }
  /// True when the view has no rows.
  bool empty() const { return targets_.empty(); }

  /// Pointer to row i's feature vector (num_features() floats, living in
  /// the viewed dataset).
  const float* Row(size_t i) const { return rows_[i]; }
  /// Target value of row i.
  float Target(size_t i) const { return targets_[i]; }
  /// Class id of row i; only valid for classification schemas.
  int ClassLabel(size_t i) const;

 private:
  int num_features_ = 0;
  int num_classes_ = 0;
  std::vector<const float*> rows_;
  std::vector<float> targets_;
};

}  // namespace fedshap

#endif  // FEDSHAP_DATA_DATASET_H_
