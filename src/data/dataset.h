#ifndef FEDSHAP_DATA_DATASET_H_
#define FEDSHAP_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/aligned.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// In-memory dense dataset: column-major float features plus one target
/// per row.
///
/// Features are stored one 64-byte-aligned buffer *per column* (see
/// util/aligned.h). Column-major layout is what both hot consumers
/// actually want: the GBDT split search scans one feature across many
/// rows (now a contiguous walk instead of a strided gather), and a
/// DatasetView can compose a coalition's column as zero-copy slices of
/// the member datasets' columns. Row-oriented consumers copy a row out
/// with `CopyRow` (the values are identical to the historical row-major
/// storage, so training results are bit-identical).
///
/// Serves both classification (targets are class ids stored as float;
/// `num_classes() > 0`) and regression (`num_classes() == 0`). This is the
/// unit a FL client owns (the D_i of the paper) and what FedAvg trains on.
class Dataset {
 public:
  /// Creates an empty dataset with the given schema. `num_classes == 0`
  /// denotes a regression target.
  static Result<Dataset> Create(int num_features, int num_classes);

  /// Creates an empty 0-feature dataset (assign a real one over it).
  Dataset() = default;

  /// Feature dimension of every row.
  int num_features() const { return num_features_; }
  /// Number of classes (0 for regression targets).
  int num_classes() const { return num_classes_; }
  /// Number of rows.
  size_t size() const { return labels_.size(); }
  /// True when the dataset has no rows.
  bool empty() const { return labels_.empty(); }

  /// Pre-allocates storage for `rows` additional rows.
  void Reserve(size_t rows);

  /// Appends one example. `features` must contain num_features() values.
  void Append(const float* features, float target);
  /// Appends one example from a vector of num_features() values.
  void Append(const std::vector<float>& features, float target);

  /// Pointer to column f's storage: size() contiguous, 64-byte-aligned
  /// floats — `Column(f)[i]` is row i's value of feature f.
  const float* Column(int f) const { return columns_[f].data(); }

  /// Row i's value of feature f.
  float Value(size_t i, int f) const { return columns_[f][i]; }

  /// Overwrites row i's value of feature f.
  void SetValue(size_t i, int f, float value) { columns_[f][i] = value; }

  /// Copies row i's features into `out[0 .. num_features())` — the
  /// bridge for row-oriented consumers (per-example gradient paths,
  /// Model::Predict).
  void CopyRow(size_t i, float* out) const;

  /// Target value of row i (class id as float, or regression value).
  float Target(size_t i) const { return labels_[i]; }
  /// Overwrites the target value of row i.
  void SetTarget(size_t i, float target) { labels_[i] = target; }

  /// Class id of row i; only valid for classification datasets.
  int ClassLabel(size_t i) const;

  /// Contiguous target storage (size() floats).
  const std::vector<float>& targets() const { return labels_; }

  /// New dataset holding the selected rows (copies data).
  Dataset Subset(const std::vector<size_t>& indices) const;

  /// Returns the first `count` rows as a new dataset.
  Dataset Head(size_t count) const;

  /// Concatenates datasets with identical schemas. Null entries and empty
  /// datasets are allowed (they contribute nothing); this is how the FL
  /// server materializes the coalition dataset D_S = union of D_i.
  static Result<Dataset> Merge(const std::vector<const Dataset*>& parts);

  /// Randomly permutes the rows in place.
  void Shuffle(Rng& rng);

  /// Splits into (train, test) with `train_fraction` of rows (rounded down)
  /// in the first part, after an in-place shuffle of the copy.
  std::pair<Dataset, Dataset> Split(double train_fraction, Rng& rng) const;

  /// Per-class row counts (classification only).
  std::vector<size_t> ClassHistogram() const;

  /// One-line human-readable summary (schema + row count).
  std::string DebugString() const;

  /// 64-bit content fingerprint over the schema and every feature/target
  /// byte. Two datasets fingerprint equal iff they hold the same rows in
  /// the same order. Features are hashed in row-major element order, so
  /// the digest is byte-identical to the historical row-major storage's
  /// and on-disk utility stores stay valid across the columnar refactor.
  /// Used to content-address persisted utility values: a utility cached
  /// on disk is only valid for the exact client datasets it was trained
  /// on.
  uint64_t Fingerprint() const;

 private:
  Dataset(int num_features, int num_classes)
      : num_features_(num_features), num_classes_(num_classes),
        columns_(static_cast<size_t>(num_features)) {}

  int num_features_ = 0;
  int num_classes_ = 0;
  /// One aligned buffer per feature; columns_[f][i] = feature f of row i.
  std::vector<AlignedFloats> columns_;
  std::vector<float> labels_;
};

/// A read-only, non-owning view over one or more Datasets with a shared
/// schema: the coalition dataset D_S = union of D_i *without*
/// materializing it. Gathering stores one part/row index pair (8 bytes)
/// and one target (4 bytes) per row instead of copying `num_features`
/// floats — this is how GbdtUtility assembles each evaluated coalition's
/// training set, turning the former per-coalition Dataset::Merge copy
/// into an index gather. Column access composes the member datasets'
/// columns zero-copy (`ColumnSlices`): a coalition's feature column is
/// the concatenation of its members' aligned column buffers. Rows appear
/// in part order then row order, exactly the order Dataset::Merge would
/// have concatenated them, so consumers see bit-identical data.
///
/// The viewed datasets must outlive the view and must not be mutated
/// (column slices alias their storage).
class DatasetView {
 public:
  /// A zero-copy run of one member dataset's column: `data[0 .. size)`
  /// are consecutive view rows' values of the sliced feature.
  struct ColumnSlice {
    /// First value of the run (aliases the member dataset's column).
    const float* data = nullptr;
    /// Number of rows in the run.
    size_t size = 0;
  };

  /// An empty view (0 rows, regression schema).
  DatasetView() = default;

  /// Builds a view over `parts` (null/empty entries contribute nothing,
  /// as in Dataset::Merge). Fails when non-empty parts disagree on
  /// schema. All parts empty yields an empty view.
  static Result<DatasetView> Gather(const std::vector<const Dataset*>& parts);

  /// A view of one whole dataset.
  static DatasetView Of(const Dataset& data);

  /// Feature dimension of every row.
  int num_features() const { return num_features_; }
  /// Number of classes (0 for regression targets).
  int num_classes() const { return num_classes_; }
  /// Number of rows.
  size_t size() const { return targets_.size(); }
  /// True when the view has no rows.
  bool empty() const { return targets_.empty(); }

  /// Row i's value of feature f (row indices span all parts, in part
  /// order then row order).
  float Value(size_t i, int f) const {
    const RowRef& ref = rows_[i];
    return parts_[ref.part]->Column(f)[ref.row];
  }

  /// Copies row i's features into `out[0 .. num_features())`.
  void CopyRow(size_t i, float* out) const;

  /// Column f of the viewed union as zero-copy per-part slices, in view
  /// row order; concatenated they equal the merged dataset's column f.
  /// Slices alias the viewed datasets' storage.
  std::vector<ColumnSlice> ColumnSlices(int f) const;

  /// Target value of row i.
  float Target(size_t i) const { return targets_[i]; }
  /// Class id of row i; only valid for classification schemas.
  int ClassLabel(size_t i) const;

 private:
  /// Which part a view row lives in, and where.
  struct RowRef {
    uint32_t part = 0;
    uint32_t row = 0;
  };

  int num_features_ = 0;
  int num_classes_ = 0;
  std::vector<const Dataset*> parts_;
  std::vector<RowRef> rows_;
  std::vector<float> targets_;
};

}  // namespace fedshap

#endif  // FEDSHAP_DATA_DATASET_H_
