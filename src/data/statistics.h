#ifndef FEDSHAP_DATA_STATISTICS_H_
#define FEDSHAP_DATA_STATISTICS_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace fedshap {

/// Descriptive statistics of one dataset / client shard. Used by the
/// examples to explain *why* a client's data value is high or low, and by
/// federation-level heterogeneity diagnostics.
struct DatasetSummary {
  /// Number of rows in the shard.
  size_t rows = 0;
  /// Feature dimension.
  int num_features = 0;
  /// Number of classes (0 for regression).
  int num_classes = 0;
  /// Per-feature mean.
  std::vector<double> feature_mean;
  /// Per-feature standard deviation.
  std::vector<double> feature_stddev;
  /// Classification only: per-class counts and the Shannon entropy of the
  /// label distribution in bits (log2). Uniform labels over C classes give
  /// log2(C); a single-class shard gives 0.
  std::vector<size_t> class_counts;
  /// Shannon entropy of the label distribution in bits.
  double label_entropy_bits = 0.0;
};

/// Computes summary statistics. Works for empty datasets (all-zero
/// summary).
DatasetSummary Summarize(const Dataset& data);

/// Federation-level heterogeneity: the average L2 distance between each
/// client's per-feature mean vector and the global mean ("client drift").
/// Clients with no rows are skipped. Returns 0 for fewer than two
/// non-empty clients.
double ClientDrift(const std::vector<Dataset>& clients);

/// One-line rendering, e.g. "rows=120 classes=10 entropy=3.31b".
std::string SummaryToString(const DatasetSummary& summary);

}  // namespace fedshap

#endif  // FEDSHAP_DATA_STATISTICS_H_
