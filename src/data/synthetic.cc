#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedshap {

namespace {

/// Smooths a flattened image in place with one 3x3 box-blur pass, giving the
/// random prototypes local pixel correlation (what a conv layer can exploit).
void BoxBlur(std::vector<float>& img, int side) {
  std::vector<float> out(img.size(), 0.0f);
  for (int r = 0; r < side; ++r) {
    for (int c = 0; c < side; ++c) {
      float sum = 0.0f;
      int count = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          int rr = r + dr, cc = c + dc;
          if (rr < 0 || rr >= side || cc < 0 || cc >= side) continue;
          sum += img[rr * side + cc];
          ++count;
        }
      }
      out[r * side + c] = sum / static_cast<float>(count);
    }
  }
  img = std::move(out);
}

/// Deterministic per-class prototype image: sparse random strokes, blurred.
std::vector<float> MakePrototype(int side, int class_id, uint64_t seed) {
  Rng proto_rng(seed * 1000003ULL + static_cast<uint64_t>(class_id));
  std::vector<float> img(side * side, 0.0f);
  // Draw a handful of bright "stroke" pixels; count scales with image area.
  int strokes = std::max(4, side * side / 6);
  for (int s = 0; s < strokes; ++s) {
    int idx = static_cast<int>(proto_rng.UniformInt(
        static_cast<uint64_t>(side * side)));
    img[idx] = 1.0f;
  }
  BoxBlur(img, side);
  BoxBlur(img, side);
  // Normalize to [0, 1].
  float max_val = *std::max_element(img.begin(), img.end());
  if (max_val > 0.0f) {
    for (float& v : img) v /= max_val;
  }
  return img;
}

}  // namespace

Result<FederatedSource> GenerateDigits(const DigitsConfig& config,
                                       size_t num_samples, Rng& rng) {
  if (config.image_size < 4) {
    return Status::InvalidArgument("image_size must be >= 4");
  }
  if (config.num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (config.num_writers < 1) {
    return Status::InvalidArgument("num_writers must be >= 1");
  }
  const int side = config.image_size;
  const int dim = side * side;

  std::vector<std::vector<float>> prototypes(config.num_classes);
  for (int c = 0; c < config.num_classes; ++c) {
    prototypes[c] = MakePrototype(side, c, config.prototype_seed);
  }
  // Per-writer style: a smooth additive offset image shared across classes.
  std::vector<std::vector<float>> writer_styles(config.num_writers);
  for (int w = 0; w < config.num_writers; ++w) {
    Rng style_rng(config.prototype_seed * 7919ULL +
                  static_cast<uint64_t>(w) + 17);
    std::vector<float> style(dim);
    for (float& v : style) {
      v = static_cast<float>(style_rng.Gaussian(0.0, 1.0));
    }
    BoxBlur(style, side);
    writer_styles[w] = std::move(style);
  }

  FEDSHAP_ASSIGN_OR_RETURN(Dataset data,
                           Dataset::Create(dim, config.num_classes));
  data.Reserve(num_samples);
  std::vector<int> group_ids;
  group_ids.reserve(num_samples);

  std::vector<float> row(dim);
  for (size_t i = 0; i < num_samples; ++i) {
    int label = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config.num_classes)));
    int writer = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config.num_writers)));
    const std::vector<float>& proto = prototypes[label];
    const std::vector<float>& style = writer_styles[writer];
    for (int d = 0; d < dim; ++d) {
      double value = proto[d] +
                     config.writer_shift * style[d] +
                     config.pixel_noise * rng.Gaussian();
      row[d] = static_cast<float>(std::clamp(value, -1.0, 2.0));
    }
    data.Append(row.data(), static_cast<float>(label));
    group_ids.push_back(writer);
  }

  FederatedSource source;
  source.data = std::move(data);
  source.group_ids = std::move(group_ids);
  source.num_groups = config.num_writers;
  return source;
}

Result<FederatedSource> GenerateTabular(const TabularConfig& config,
                                        size_t num_samples, Rng& rng) {
  if (config.num_occupations < 1) {
    return Status::InvalidArgument("num_occupations must be >= 1");
  }
  FEDSHAP_ASSIGN_OR_RETURN(Dataset data,
                           Dataset::Create(kTabularFeatures, 2));
  data.Reserve(num_samples);
  std::vector<int> group_ids;
  group_ids.reserve(num_samples);

  // Occupation-specific propensity offsets make the natural partition
  // heterogeneous across clients (like real occupations vs income).
  Rng schema_rng(config.schema_seed);
  std::vector<double> occupation_income_shift(config.num_occupations);
  std::vector<double> occupation_education_shift(config.num_occupations);
  for (int o = 0; o < config.num_occupations; ++o) {
    occupation_income_shift[o] = schema_rng.Gaussian(0.0, 0.8);
    occupation_education_shift[o] = schema_rng.Gaussian(0.0, 1.5);
  }

  std::vector<float> row(kTabularFeatures);
  for (size_t i = 0; i < num_samples; ++i) {
    int occupation = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config.num_occupations)));
    double age = std::clamp(rng.Gaussian(38.0, 12.0), 17.0, 90.0);
    double education = std::clamp(
        rng.Gaussian(10.0 + occupation_education_shift[occupation], 2.5),
        1.0, 16.0);
    double hours = std::clamp(rng.Gaussian(40.0, 10.0), 1.0, 99.0);
    // Heavy-tailed capital gain: mostly zero, occasionally large.
    double capital_gain =
        rng.Bernoulli(0.08) ? std::exp(rng.Gaussian(8.0, 1.0)) : 0.0;
    double capital_loss =
        rng.Bernoulli(0.04) ? std::exp(rng.Gaussian(6.5, 0.7)) : 0.0;
    double married = rng.Bernoulli(0.47) ? 1.0 : 0.0;
    double sex = rng.Bernoulli(0.67) ? 1.0 : 0.0;
    double race = static_cast<double>(rng.UniformInt(5));
    double workclass = static_cast<double>(rng.UniformInt(7));
    double relationship = static_cast<double>(rng.UniformInt(6));
    double native_country = rng.Bernoulli(0.9) ? 0.0 : 1.0;
    double fnlwgt = rng.Gaussian(1.9e5, 1.0e5);

    // Latent propensity: nonlinear mix mirroring known Adult signal
    // (education, age, hours, capital gain, marital status, occupation).
    double z = 0.35 * (education - 10.0) + 0.04 * (age - 38.0) +
               0.03 * (hours - 40.0) + 1.2 * (capital_gain > 0 ? 1.0 : 0.0) +
               0.9 * married + occupation_income_shift[occupation] - 1.1;
    // Sharpen the decision boundary: the dominant noise source should be
    // the explicit label_noise flips, not mid-range Bernoulli draws, so
    // that model accuracy saturates with data like the real Adult task.
    double p = 1.0 / (1.0 + std::exp(-2.5 * z));
    int label = rng.Bernoulli(p) ? 1 : 0;
    if (rng.Bernoulli(config.label_noise)) label = 1 - label;

    // Features are standardized to comparable scales so SGD behaves.
    row[0] = static_cast<float>((age - 38.0) / 12.0);
    row[1] = static_cast<float>((education - 10.0) / 2.5);
    row[2] = static_cast<float>((hours - 40.0) / 10.0);
    row[3] = static_cast<float>(std::log1p(capital_gain) / 10.0);
    row[4] = static_cast<float>(std::log1p(capital_loss) / 8.0);
    row[5] = static_cast<float>(married);
    row[6] = static_cast<float>(sex);
    row[7] = static_cast<float>(race / 4.0);
    row[8] = static_cast<float>(workclass / 6.0);
    row[9] = static_cast<float>(relationship / 5.0);
    row[10] = static_cast<float>(native_country);
    row[11] = static_cast<float>((fnlwgt - 1.9e5) / 1.0e5);
    row[12] = static_cast<float>(
        occupation / std::max(1.0, config.num_occupations - 1.0));
    row[13] = static_cast<float>(rng.Gaussian());  // distractor feature

    data.Append(row.data(), static_cast<float>(label));
    group_ids.push_back(occupation);
  }

  FederatedSource source;
  source.data = std::move(data);
  source.group_ids = std::move(group_ids);
  source.num_groups = config.num_occupations;
  return source;
}

Result<Dataset> GenerateRegression(const RegressionConfig& config,
                                   size_t num_samples, Rng& rng) {
  if (config.dim < 1) return Status::InvalidArgument("dim must be >= 1");
  Rng weight_rng(config.weight_seed);
  std::vector<double> weights(config.dim);
  for (double& w : weights) w = weight_rng.Gaussian();

  FEDSHAP_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(config.dim, 0));
  data.Reserve(num_samples);
  std::vector<float> row(config.dim);
  for (size_t i = 0; i < num_samples; ++i) {
    double y = 0.0;
    for (int d = 0; d < config.dim; ++d) {
      double x = rng.Gaussian();
      row[d] = static_cast<float>(x);
      y += weights[d] * x;
    }
    y += rng.Gaussian(0.0, config.noise_stddev);
    data.Append(row.data(), static_cast<float>(y));
  }
  return data;
}

Result<Dataset> GenerateBlobs(int num_classes, int dim, double separation,
                              size_t num_samples, Rng& rng) {
  if (num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (dim < 1) return Status::InvalidArgument("dim must be >= 1");
  // Deterministic well-separated centers on coordinate directions.
  std::vector<std::vector<double>> centers(num_classes,
                                           std::vector<double>(dim, 0.0));
  for (int c = 0; c < num_classes; ++c) {
    centers[c][c % dim] = separation * (1 + c / dim);
    if (c % 2 == 1) centers[c][c % dim] *= -1.0;
  }
  FEDSHAP_ASSIGN_OR_RETURN(Dataset data, Dataset::Create(dim, num_classes));
  data.Reserve(num_samples);
  std::vector<float> row(dim);
  for (size_t i = 0; i < num_samples; ++i) {
    int label = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(num_classes)));
    for (int d = 0; d < dim; ++d) {
      row[d] = static_cast<float>(centers[label][d] + rng.Gaussian());
    }
    data.Append(row.data(), static_cast<float>(label));
  }
  return data;
}

}  // namespace fedshap
