#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace fedshap {

namespace {

/// Splits shuffled indices into contiguous chunks with the given sizes.
std::vector<std::vector<size_t>> Chunk(const std::vector<size_t>& order,
                                       const std::vector<size_t>& sizes) {
  std::vector<std::vector<size_t>> chunks;
  size_t cursor = 0;
  for (size_t sz : sizes) {
    std::vector<size_t> chunk(order.begin() + cursor,
                              order.begin() + cursor + sz);
    cursor += sz;
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

/// Equal sizes summing to at most `total` (remainder rows are dropped so all
/// clients match exactly, as in the paper's same-size setups).
std::vector<size_t> EqualSizes(size_t total, int parts) {
  std::vector<size_t> sizes(parts, total / parts);
  return sizes;
}

}  // namespace

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kSameSizeSameDist:
      return "same-size-same-distr";
    case PartitionScheme::kSameSizeDiffDist:
      return "same-size-diff-distr";
    case PartitionScheme::kDiffSizeSameDist:
      return "diff-size-same-distr";
    case PartitionScheme::kSameSizeNoisyLabel:
      return "same-size-noisy-label";
    case PartitionScheme::kSameSizeNoisyFeature:
      return "same-size-noisy-feature";
  }
  return "unknown";
}

Result<std::vector<Dataset>> PartitionDataset(const Dataset& data,
                                              const PartitionConfig& config,
                                              Rng& rng) {
  const int n = config.num_clients;
  if (n < 1) return Status::InvalidArgument("num_clients must be >= 1");
  if (data.size() < static_cast<size_t>(n)) {
    return Status::InvalidArgument("fewer rows than clients");
  }

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  std::vector<Dataset> clients;

  switch (config.scheme) {
    case PartitionScheme::kSameSizeSameDist:
    case PartitionScheme::kSameSizeNoisyLabel:
    case PartitionScheme::kSameSizeNoisyFeature: {
      auto chunks = Chunk(order, EqualSizes(data.size(), n));
      for (auto& chunk : chunks) clients.push_back(data.Subset(chunk));
      break;
    }
    case PartitionScheme::kDiffSizeSameDist: {
      // Sizes proportional to 1 : 2 : ... : n.
      size_t denom = static_cast<size_t>(n) * (n + 1) / 2;
      std::vector<size_t> sizes(n);
      for (int i = 0; i < n; ++i) {
        sizes[i] = data.size() * static_cast<size_t>(i + 1) / denom;
        if (sizes[i] == 0) sizes[i] = 1;
      }
      // Clamp so the total never exceeds available rows.
      size_t total = std::accumulate(sizes.begin(), sizes.end(), size_t{0});
      while (total > data.size()) {
        for (int i = n - 1; i >= 0 && total > data.size(); --i) {
          if (sizes[i] > 1) {
            --sizes[i];
            --total;
          }
        }
      }
      auto chunks = Chunk(order, sizes);
      for (auto& chunk : chunks) clients.push_back(data.Subset(chunk));
      break;
    }
    case PartitionScheme::kSameSizeDiffDist: {
      if (data.num_classes() < 2) {
        return Status::InvalidArgument(
            "label-skew partition needs a classification dataset");
      }
      // Bucket rows by class, then fill each client with `label_skew`
      // dominant-class rows and uniform remainder.
      std::vector<std::vector<size_t>> by_class(data.num_classes());
      for (size_t idx : order) by_class[data.ClassLabel(idx)].push_back(idx);
      std::vector<size_t> next_in_class(data.num_classes(), 0);
      size_t per_client = data.size() / n;

      // Round-robin cursor over classes for the uniform remainder.
      int uniform_cursor = 0;
      auto take_from_class = [&](int cls) -> int {
        // Returns a row of class `cls`, or -1 when exhausted.
        if (next_in_class[cls] < by_class[cls].size()) {
          return static_cast<int>(by_class[cls][next_in_class[cls]++]);
        }
        return -1;
      };
      auto take_any = [&]() -> int {
        for (int tries = 0; tries < data.num_classes(); ++tries) {
          int cls = uniform_cursor;
          uniform_cursor = (uniform_cursor + 1) % data.num_classes();
          int row = take_from_class(cls);
          if (row >= 0) return row;
        }
        return -1;
      };

      for (int i = 0; i < n; ++i) {
        int dominant = i % data.num_classes();
        std::vector<size_t> rows;
        rows.reserve(per_client);
        size_t dominant_quota =
            static_cast<size_t>(config.label_skew * per_client);
        for (size_t r = 0; r < per_client; ++r) {
          int row = (r < dominant_quota) ? take_from_class(dominant) : -1;
          if (row < 0) row = take_any();
          if (row < 0) break;  // Source exhausted.
          rows.push_back(static_cast<size_t>(row));
        }
        clients.push_back(data.Subset(rows));
      }
      break;
    }
  }

  // Per-client quality degradation for the noisy setups: client i gets noise
  // level i/(n-1) * max (client 0 is clean, client n-1 the noisiest).
  if (config.scheme == PartitionScheme::kSameSizeNoisyLabel) {
    for (int i = 0; i < n; ++i) {
      double level =
          (n == 1) ? 0.0 : config.max_label_noise * i / (n - 1.0);
      FEDSHAP_RETURN_NOT_OK(FlipLabels(clients[i], level, rng));
    }
  } else if (config.scheme == PartitionScheme::kSameSizeNoisyFeature) {
    for (int i = 0; i < n; ++i) {
      double level =
          (n == 1) ? 0.0 : config.max_feature_noise * i / (n - 1.0);
      FEDSHAP_RETURN_NOT_OK(AddFeatureNoise(clients[i], level, rng));
    }
  }

  return clients;
}

Result<std::vector<Dataset>> PartitionByGroup(const FederatedSource& source,
                                              int num_clients, Rng& rng) {
  if (num_clients < 1) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (source.num_groups < num_clients) {
    return Status::InvalidArgument(
        "need at least as many groups as clients");
  }
  // Randomly assign whole groups to clients, round-robin over a shuffled
  // group order so client sizes stay balanced in expectation.
  std::vector<int> group_order(source.num_groups);
  std::iota(group_order.begin(), group_order.end(), 0);
  rng.Shuffle(group_order);
  std::vector<int> group_to_client(source.num_groups);
  for (int g = 0; g < source.num_groups; ++g) {
    group_to_client[group_order[g]] = g % num_clients;
  }

  std::vector<std::vector<size_t>> rows_per_client(num_clients);
  for (size_t i = 0; i < source.data.size(); ++i) {
    int group = source.group_ids[i];
    FEDSHAP_CHECK(group >= 0 && group < source.num_groups);
    rows_per_client[group_to_client[group]].push_back(i);
  }
  std::vector<Dataset> clients;
  clients.reserve(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    clients.push_back(source.data.Subset(rows_per_client[i]));
  }
  return clients;
}

Result<std::vector<Dataset>> PartitionDirichlet(const Dataset& data,
                                                int num_clients,
                                                double alpha, Rng& rng) {
  if (num_clients < 1) {
    return Status::InvalidArgument("num_clients must be >= 1");
  }
  if (alpha <= 0.0) return Status::InvalidArgument("alpha must be > 0");
  if (data.num_classes() < 2) {
    return Status::InvalidArgument(
        "Dirichlet partition needs a classification dataset");
  }
  // Bucket shuffled rows by class.
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::vector<std::vector<size_t>> by_class(data.num_classes());
  for (size_t idx : order) by_class[data.ClassLabel(idx)].push_back(idx);

  std::vector<std::vector<size_t>> rows_per_client(num_clients);
  for (int cls = 0; cls < data.num_classes(); ++cls) {
    const std::vector<size_t>& rows = by_class[cls];
    if (rows.empty()) continue;
    const std::vector<double> shares = rng.Dirichlet(alpha, num_clients);
    // Cumulative-share boundaries chop this class's rows into slices.
    size_t cursor = 0;
    double cumulative = 0.0;
    for (int client = 0; client < num_clients; ++client) {
      cumulative += shares[client];
      const size_t boundary =
          (client == num_clients - 1)
              ? rows.size()
              : static_cast<size_t>(cumulative * rows.size());
      for (; cursor < boundary && cursor < rows.size(); ++cursor) {
        rows_per_client[client].push_back(rows[cursor]);
      }
    }
  }
  std::vector<Dataset> clients;
  clients.reserve(num_clients);
  for (int client = 0; client < num_clients; ++client) {
    clients.push_back(data.Subset(rows_per_client[client]));
  }
  return clients;
}

Status FlipLabels(Dataset& data, double fraction, Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  if (data.num_classes() < 2) {
    return Status::InvalidArgument("label flipping needs >= 2 classes");
  }
  size_t flips = static_cast<size_t>(fraction * data.size());
  std::vector<int> rows = rng.SampleWithoutReplacement(
      static_cast<int>(data.size()), static_cast<int>(flips));
  for (int row : rows) {
    int old_label = data.ClassLabel(row);
    // Uniform over the other labels.
    int offset = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(data.num_classes() - 1)));
    int new_label = (old_label + 1 + offset) % data.num_classes();
    data.SetTarget(row, static_cast<float>(new_label));
  }
  return Status::OK();
}

Status AddFeatureNoise(Dataset& data, double scale, Rng& rng) {
  if (scale < 0.0) return Status::InvalidArgument("scale must be >= 0");
  if (scale == 0.0) return Status::OK();
  // Row-major draw order kept across the columnar-storage refactor so a
  // seeded run perturbs every value with the same Gaussian as before.
  for (size_t i = 0; i < data.size(); ++i) {
    for (int d = 0; d < data.num_features(); ++d) {
      data.SetValue(i, d,
                    data.Value(i, d) +
                        static_cast<float>(scale * rng.Gaussian()));
    }
  }
  return Status::OK();
}

}  // namespace fedshap
