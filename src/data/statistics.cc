#include "data/statistics.h"

#include <cmath>
#include <sstream>

namespace fedshap {

DatasetSummary Summarize(const Dataset& data) {
  DatasetSummary summary;
  summary.rows = data.size();
  summary.num_features = data.num_features();
  summary.num_classes = data.num_classes();
  if (data.empty()) return summary;

  const int d = data.num_features();
  summary.feature_mean.assign(d, 0.0);
  summary.feature_stddev.assign(d, 0.0);
  // Row-major accumulation order kept across the columnar-storage
  // refactor so the floating-point sums stay bit-identical.
  for (size_t i = 0; i < data.size(); ++i) {
    for (int f = 0; f < d; ++f) summary.feature_mean[f] += data.Value(i, f);
  }
  for (int f = 0; f < d; ++f) {
    summary.feature_mean[f] /= static_cast<double>(data.size());
  }
  for (size_t i = 0; i < data.size(); ++i) {
    for (int f = 0; f < d; ++f) {
      const double diff = data.Value(i, f) - summary.feature_mean[f];
      summary.feature_stddev[f] += diff * diff;
    }
  }
  for (int f = 0; f < d; ++f) {
    summary.feature_stddev[f] =
        std::sqrt(summary.feature_stddev[f] / data.size());
  }

  if (data.num_classes() > 0) {
    summary.class_counts = data.ClassHistogram();
    for (size_t count : summary.class_counts) {
      if (count == 0) continue;
      const double p = static_cast<double>(count) / data.size();
      summary.label_entropy_bits -= p * std::log2(p);
    }
  }
  return summary;
}

double ClientDrift(const std::vector<Dataset>& clients) {
  // Global mean over all rows.
  std::vector<double> global;
  size_t total_rows = 0;
  int non_empty = 0;
  for (const Dataset& client : clients) {
    if (client.empty()) continue;
    ++non_empty;
    if (global.empty()) global.assign(client.num_features(), 0.0);
    for (size_t i = 0; i < client.size(); ++i) {
      for (size_t f = 0; f < global.size(); ++f) {
        global[f] += client.Value(i, static_cast<int>(f));
      }
    }
    total_rows += client.size();
  }
  if (non_empty < 2 || total_rows == 0) return 0.0;
  for (double& g : global) g /= static_cast<double>(total_rows);

  double drift = 0.0;
  for (const Dataset& client : clients) {
    if (client.empty()) continue;
    DatasetSummary summary = Summarize(client);
    double distance_sq = 0.0;
    for (size_t f = 0; f < global.size(); ++f) {
      const double diff = summary.feature_mean[f] - global[f];
      distance_sq += diff * diff;
    }
    drift += std::sqrt(distance_sq);
  }
  return drift / non_empty;
}

std::string SummaryToString(const DatasetSummary& summary) {
  std::ostringstream os;
  os << "rows=" << summary.rows << " features=" << summary.num_features;
  if (summary.num_classes > 0) {
    os << " classes=" << summary.num_classes << " entropy="
       << std::round(summary.label_entropy_bits * 100.0) / 100.0 << "b";
  }
  return os.str();
}

}  // namespace fedshap
