#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {

Result<Dataset> Dataset::Create(int num_features, int num_classes) {
  if (num_features <= 0) {
    return Status::InvalidArgument("num_features must be positive");
  }
  if (num_classes < 0) {
    return Status::InvalidArgument("num_classes must be >= 0");
  }
  return Dataset(num_features, num_classes);
}

void Dataset::Reserve(size_t rows) {
  for (AlignedFloats& column : columns_) {
    column.reserve(column.size() + rows);
  }
  labels_.reserve(labels_.size() + rows);
}

void Dataset::Append(const float* features, float target) {
  FEDSHAP_CHECK(num_features_ > 0);
  for (int f = 0; f < num_features_; ++f) {
    columns_[f].push_back(features[f]);
  }
  labels_.push_back(target);
}

void Dataset::Append(const std::vector<float>& features, float target) {
  FEDSHAP_CHECK(static_cast<int>(features.size()) == num_features_);
  Append(features.data(), target);
}

void Dataset::CopyRow(size_t i, float* out) const {
  for (int f = 0; f < num_features_; ++f) out[f] = columns_[f][i];
}

int Dataset::ClassLabel(size_t i) const {
  FEDSHAP_CHECK(num_classes_ > 0);
  int label = static_cast<int>(std::lround(labels_[i]));
  FEDSHAP_DCHECK(label >= 0 && label < num_classes_);
  return label;
}

Dataset Dataset::Subset(const std::vector<size_t>& indices) const {
  for (size_t idx : indices) FEDSHAP_CHECK(idx < size());
  Dataset out(num_features_, num_classes_);
  // Column-wise gather: each destination column is filled in one pass
  // over one contiguous source column.
  for (int f = 0; f < num_features_; ++f) {
    const AlignedFloats& src = columns_[f];
    AlignedFloats& dst = out.columns_[f];
    dst.reserve(indices.size());
    for (size_t idx : indices) dst.push_back(src[idx]);
  }
  out.labels_.reserve(indices.size());
  for (size_t idx : indices) out.labels_.push_back(labels_[idx]);
  return out;
}

Dataset Dataset::Head(size_t count) const {
  count = std::min(count, size());
  Dataset out(num_features_, num_classes_);
  for (int f = 0; f < num_features_; ++f) {
    out.columns_[f].assign(columns_[f].begin(),
                           columns_[f].begin() + count);
  }
  out.labels_.assign(labels_.begin(), labels_.begin() + count);
  return out;
}

Result<Dataset> Dataset::Merge(const std::vector<const Dataset*>& parts) {
  int num_features = 0;
  int num_classes = 0;
  size_t total = 0;
  for (const Dataset* part : parts) {
    if (part == nullptr || part->empty()) continue;
    if (num_features == 0) {
      num_features = part->num_features();
      num_classes = part->num_classes();
    } else if (part->num_features() != num_features ||
               part->num_classes() != num_classes) {
      return Status::InvalidArgument(
          "cannot merge datasets with different schemas");
    }
    total += part->size();
  }
  if (num_features == 0) {
    // All parts empty: produce an empty 1-feature dataset so callers can
    // still ask for size()==0. Schema is irrelevant for an empty set.
    return Dataset(1, 0);
  }
  Dataset out(num_features, num_classes);
  out.Reserve(total);
  // Column-wise concatenation: each output column is the parts' columns
  // back to back, so the merged rows appear in part order then row order.
  for (int f = 0; f < num_features; ++f) {
    AlignedFloats& dst = out.columns_[f];
    for (const Dataset* part : parts) {
      if (part == nullptr || part->empty()) continue;
      const float* src = part->Column(f);
      dst.insert(dst.end(), src, src + part->size());
    }
  }
  for (const Dataset* part : parts) {
    if (part == nullptr || part->empty()) continue;
    out.labels_.insert(out.labels_.end(), part->targets().begin(),
                       part->targets().end());
  }
  return out;
}

void Dataset::Shuffle(Rng& rng) {
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  *this = Subset(order);
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction,
                                           Rng& rng) const {
  FEDSHAP_CHECK(train_fraction >= 0.0 && train_fraction <= 1.0);
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  size_t train_rows = static_cast<size_t>(train_fraction * size());
  std::vector<size_t> train_idx(order.begin(), order.begin() + train_rows);
  std::vector<size_t> test_idx(order.begin() + train_rows, order.end());
  return {Subset(train_idx), Subset(test_idx)};
}

std::vector<size_t> Dataset::ClassHistogram() const {
  FEDSHAP_CHECK(num_classes_ > 0);
  std::vector<size_t> histogram(num_classes_, 0);
  for (size_t i = 0; i < size(); ++i) ++histogram[ClassLabel(i)];
  return histogram;
}

std::string Dataset::DebugString() const {
  std::ostringstream os;
  os << "Dataset(rows=" << size() << ", features=" << num_features_
     << ", classes=" << num_classes_ << ")";
  return os.str();
}

uint64_t Dataset::Fingerprint() const {
  Hasher64 hasher;
  hasher.MixU64(static_cast<uint64_t>(num_features_))
      .MixU64(static_cast<uint64_t>(num_classes_))
      .MixU64(size());
  // Features are hashed in row-major element order: MixBytes folds bytes
  // sequentially, so feeding one reassembled row at a time produces the
  // exact digest the historical row-major storage produced — on-disk
  // utility stores keyed by this fingerprint stay valid.
  std::vector<float> row(static_cast<size_t>(num_features_));
  for (size_t i = 0; i < size(); ++i) {
    CopyRow(i, row.data());
    hasher.MixBytes(row.data(), row.size() * sizeof(float));
  }
  hasher.MixBytes(labels_.data(), labels_.size() * sizeof(float));
  return hasher.digest();
}

Result<DatasetView> DatasetView::Gather(
    const std::vector<const Dataset*>& parts) {
  DatasetView view;
  size_t total = 0;
  for (const Dataset* part : parts) {
    if (part == nullptr || part->empty()) continue;
    if (view.num_features_ == 0) {
      view.num_features_ = part->num_features();
      view.num_classes_ = part->num_classes();
    } else if (part->num_features() != view.num_features_ ||
               part->num_classes() != view.num_classes_) {
      return Status::InvalidArgument(
          "cannot gather datasets with different schemas");
    }
    total += part->size();
  }
  view.rows_.reserve(total);
  view.targets_.reserve(total);
  for (const Dataset* part : parts) {
    if (part == nullptr || part->empty()) continue;
    FEDSHAP_CHECK(part->size() <= UINT32_MAX);
    const uint32_t part_index = static_cast<uint32_t>(view.parts_.size());
    view.parts_.push_back(part);
    for (size_t i = 0; i < part->size(); ++i) {
      view.rows_.push_back(RowRef{part_index, static_cast<uint32_t>(i)});
      view.targets_.push_back(part->Target(i));
    }
  }
  return view;
}

DatasetView DatasetView::Of(const Dataset& data) {
  Result<DatasetView> view = Gather({&data});
  FEDSHAP_CHECK(view.ok());  // a single dataset cannot schema-conflict
  return std::move(view).value();
}

void DatasetView::CopyRow(size_t i, float* out) const {
  const RowRef& ref = rows_[i];
  parts_[ref.part]->CopyRow(ref.row, out);
}

std::vector<DatasetView::ColumnSlice> DatasetView::ColumnSlices(
    int f) const {
  std::vector<ColumnSlice> slices;
  slices.reserve(parts_.size());
  for (const Dataset* part : parts_) {
    slices.push_back(ColumnSlice{part->Column(f), part->size()});
  }
  return slices;
}

int DatasetView::ClassLabel(size_t i) const {
  FEDSHAP_CHECK(num_classes_ > 0);
  int label = static_cast<int>(std::lround(targets_[i]));
  FEDSHAP_DCHECK(label >= 0 && label < num_classes_);
  return label;
}

}  // namespace fedshap
