#ifndef FEDSHAP_DATA_PARTITION_H_
#define FEDSHAP_DATA_PARTITION_H_

#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// The five synthetic federated partition setups of the paper's Sec. V-A
/// plus the "natural" group partition used for FEMNIST (by writer) and
/// Adult (by occupation).
enum class PartitionScheme {
  /// (a) equal sizes, identical label distribution.
  kSameSizeSameDist,
  /// (b) equal sizes, label-skewed: each client has one dominant label.
  kSameSizeDiffDist,
  /// (c) sizes in ratio 1 : 2 : ... : n, identical distribution.
  kDiffSizeSameDist,
  /// (d) equal sizes; client i has i/(n-1) * max_label_noise of its labels
  /// flipped to a uniformly random different label.
  kSameSizeNoisyLabel,
  /// (e) equal sizes; client i's features get N(0,1) noise scaled by
  /// i/(n-1) * max_feature_noise.
  kSameSizeNoisyFeature,
};

/// Parameters for PartitionDataset.
struct PartitionConfig {
  /// Which of the synthetic setups to apply.
  PartitionScheme scheme = PartitionScheme::kSameSizeSameDist;
  /// Number of client shards n.
  int num_clients = 10;
  /// For kSameSizeDiffDist: fraction of a client's data drawn from its
  /// dominant label (the rest is uniform over all labels).
  double label_skew = 0.6;
  /// For kSameSizeNoisyLabel: the noisiest client's flip fraction (paper
  /// uses 0%..20%).
  double max_label_noise = 0.2;
  /// For kSameSizeNoisyFeature: the noisiest client's noise scale (paper
  /// multiplies N(0,1) noise by 0.00..0.20).
  double max_feature_noise = 0.2;
};

/// Human-readable name of a scheme (e.g. "same-size-same-distr").
const char* PartitionSchemeName(PartitionScheme scheme);

/// Splits `data` into num_clients client datasets per `config`.
/// The input is shuffled first; the union of the outputs is the input (for
/// noisy setups, up to the injected noise).
Result<std::vector<Dataset>> PartitionDataset(const Dataset& data,
                                              const PartitionConfig& config,
                                              Rng& rng);

/// Natural federated partition: distributes the source's groups (writers /
/// occupations) across `num_clients` clients, so each client owns all rows
/// of its assigned groups. Mirrors FEMNIST's user-id partition.
Result<std::vector<Dataset>> PartitionByGroup(const FederatedSource& source,
                                              int num_clients, Rng& rng);

/// Dirichlet label-skew partition (Hsu et al. / the standard non-IID FL
/// benchmark protocol, an extension beyond the paper's five setups): for
/// each class, client shares are drawn from Dirichlet(alpha) and the
/// class's rows are distributed accordingly. Small alpha produces extreme
/// label skew; alpha -> infinity approaches the IID split. Clients may end
/// up with different sizes; every input row is assigned exactly once.
Result<std::vector<Dataset>> PartitionDirichlet(const Dataset& data,
                                                int num_clients,
                                                double alpha, Rng& rng);

/// In-place label flipping: each selected row's class label is changed to a
/// different class chosen uniformly. `fraction` in [0, 1].
Status FlipLabels(Dataset& data, double fraction, Rng& rng);

/// In-place additive Gaussian feature noise scaled by `scale`.
Status AddFeatureNoise(Dataset& data, double scale, Rng& rng);

}  // namespace fedshap

#endif  // FEDSHAP_DATA_PARTITION_H_
