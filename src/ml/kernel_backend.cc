#include "ml/kernel_backend.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

#include "ml/kernel_dispatch.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedshap {

namespace {

/// The bound table + backend, published together. Kernel call sites load
/// the table pointer with acquire semantics, so rebinding between
/// trainings is safe; rebinding *during* a kernel call is documented as
/// unsupported (the call would simply finish on the old table).
std::atomic<const internal::KernelTable*> g_active_table{nullptr};
std::atomic<int> g_active_backend{static_cast<int>(KernelBackend::kScalar)};

bool CpuSupports(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return true;
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    case KernelBackend::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
    case KernelBackend::kAvx512:
      return __builtin_cpu_supports("avx512f");
#else
    case KernelBackend::kAvx2:
    case KernelBackend::kAvx512:
      return false;
#endif
  }
  return false;
}

const internal::KernelTable* TableFor(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return &internal::ScalarKernelTable();
    case KernelBackend::kAvx2:
      return internal::Avx2KernelTable();
    case KernelBackend::kAvx512:
      return internal::Avx512KernelTable();
  }
  return nullptr;
}

void Bind(KernelBackend backend) {
  const internal::KernelTable* table = TableFor(backend);
  FEDSHAP_CHECK(table != nullptr);
  g_active_backend.store(static_cast<int>(backend),
                         std::memory_order_relaxed);
  g_active_table.store(table, std::memory_order_release);
}

/// One-time startup selection: FEDSHAP_KERNEL_BACKEND env override, else
/// the widest available backend.
void SelectInitialBackend() {
  KernelBackend backend = AutoDetectKernelBackend();
  if (const char* env = std::getenv("FEDSHAP_KERNEL_BACKEND")) {
    Result<KernelBackend> parsed = ParseKernelBackend(env);
    if (!parsed.ok()) {
      FEDSHAP_LOG(Warning) << "FEDSHAP_KERNEL_BACKEND=" << env
                           << " not recognized; using auto detection";
    } else if (!KernelBackendAvailable(parsed.value())) {
      FEDSHAP_LOG(Warning) << "FEDSHAP_KERNEL_BACKEND=" << env
                           << " is not available on this machine; using "
                              "auto detection";
    } else {
      backend = parsed.value();
    }
  }
  Bind(backend);
}

void EnsureInitialized() {
  // call_once so startup selection runs exactly one time: a plain
  // checked flag could re-run SelectInitialBackend concurrently with an
  // explicit SetKernelBackend and silently revert the caller's pin.
  static std::once_flag once;
  std::call_once(once, SelectInitialBackend);
}

}  // namespace

namespace internal {

const KernelTable& ActiveKernelTable() {
  EnsureInitialized();
  return *g_active_table.load(std::memory_order_acquire);
}

}  // namespace internal

const char* KernelBackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kAvx2:
      return "avx2";
    case KernelBackend::kAvx512:
      return "avx512";
  }
  return "?";
}

Result<KernelBackend> ParseKernelBackend(const std::string& name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "avx2") return KernelBackend::kAvx2;
  if (name == "avx512") return KernelBackend::kAvx512;
  if (name == "auto") return AutoDetectKernelBackend();
  return Status::InvalidArgument(
      "unknown kernel backend '" + name +
      "' (expected scalar | avx2 | avx512 | auto)");
}

bool KernelBackendAvailable(KernelBackend backend) {
  return TableFor(backend) != nullptr && CpuSupports(backend);
}

KernelBackend AutoDetectKernelBackend() {
  if (KernelBackendAvailable(KernelBackend::kAvx512)) {
    return KernelBackend::kAvx512;
  }
  if (KernelBackendAvailable(KernelBackend::kAvx2)) {
    return KernelBackend::kAvx2;
  }
  return KernelBackend::kScalar;
}

KernelBackend SelectedKernelBackend() {
  EnsureInitialized();
  return static_cast<KernelBackend>(
      g_active_backend.load(std::memory_order_relaxed));
}

Status SetKernelBackend(KernelBackend backend) {
  EnsureInitialized();
  if (!KernelBackendAvailable(backend)) {
    return Status::InvalidArgument(
        std::string("kernel backend '") + KernelBackendName(backend) +
        "' is not available on this machine");
  }
  Bind(backend);
  return Status::OK();
}

std::string KernelProvenanceString() {
  const KernelBackend active = SelectedKernelBackend();
  const KernelBackend detected = AutoDetectKernelBackend();
  std::string line = "kernels: backend=";
  line += KernelBackendName(active);
  line += active == detected ? " (auto)" : " (pinned)";
  line += " worker-budget=" +
          std::to_string(WorkerBudget::Global().total());
  return line;
}

}  // namespace fedshap
