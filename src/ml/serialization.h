#ifndef FEDSHAP_ML_SERIALIZATION_H_
#define FEDSHAP_ML_SERIALIZATION_H_

#include <string>

#include "ml/model.h"
#include "util/status.h"

namespace fedshap {

/// Persists a model's parameters to a small self-describing text file:
///
///   fedshap-model v1
///   <architecture name>
///   <parameter count>
///   <one parameter per line, hex float for exact round-trips>
///
/// Valuations are functions of trained models; persisting the shared
/// initialization (or a final federated model) makes valuation runs
/// auditable and resumable across processes.
Status SaveModelParameters(const std::string& path, const Model& model);

/// Restores parameters saved by SaveModelParameters into `model`.
/// Fails if the file is malformed, the architecture name differs, or the
/// parameter count does not match the model.
Status LoadModelParameters(const std::string& path, Model& model);

}  // namespace fedshap

#endif  // FEDSHAP_ML_SERIALIZATION_H_
