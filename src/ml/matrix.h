#ifndef FEDSHAP_ML_MATRIX_H_
#define FEDSHAP_ML_MATRIX_H_

#include <cstddef>
#include <new>
#include <vector>

#include "util/aligned.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// The ML substrate's compute kernels.
///
/// Two tiers live here:
///
///  - a minimal dense row-major `Matrix` plus the historical per-example
///    kernels (`MatVec`, `MatTVec`, `Rank1Update`, `SolveLinearSystem`);
///  - the *batched* kernels (`MatMul`, `MatTMat`, `AddOuterBatch`, the
///    fused bias/activation/softmax helpers and the fused SGD update
///    steps) that the models' `ComputeGradientBatched` paths and
///    `TrainSgd` are built on. They operate on raw row-major float
///    buffers so models can address slices of their flat parameter
///    vectors directly.
///
/// The batched kernels are written as blocked saxpy-style loops (the
/// inner loop walks contiguous output/right-operand rows with no
/// reduction dependence). Their hot bodies dispatch at runtime through
/// the SIMD backend table of ml/kernel_backend.h: the portable scalar
/// loops (compiler autovectorized at the build's baseline ISA) are the
/// always-available reference, and explicit AVX2+FMA / AVX-512F
/// implementations are bound when CPUID says the machine supports them.
/// This is where the per-training speedup of the valuation hot path
/// comes from: every utility query is a full FL training, and these
/// loops are its inner core. Buffers need no particular alignment (the
/// vector backends use unaligned loads), but `AlignedFloats` storage is
/// 64-byte aligned so hot loads never split cache lines.
///
/// **Tolerance contract.** Batched kernels reassociate floating-point
/// sums relative to the per-example reference path (e.g. a bias is added
/// after the product sum instead of seeding the accumulator), and the
/// SIMD backends additionally widen the saxpy loops and fuse
/// multiply-adds, so results are equal only within tolerance, not
/// bitwise. The contract, enforced by tests/ml_kernel_equivalence_test.cc
/// on randomized shapes for every available kernel backend, is
///
///   |batched - reference| <= kKernelAbsTol + kKernelRelTol * |reference|
///
/// per element, for every kernel and for every model's per-step loss and
/// gradient (reduction dimensions up to a few thousand). Purely
/// element-wise kernels (bias/ReLU/softmax rows, the fused SGD steps)
/// perform the reference arithmetic per element in the same order and
/// must match the scalar path to float rounding (4 ulp).
inline constexpr float kKernelAbsTol = 1e-4f;
/// Relative term of the kernel tolerance contract (see kKernelAbsTol).
inline constexpr float kKernelRelTol = 1e-3f;

// AlignedAllocator / AlignedFloats moved to util/aligned.h so the
// columnar Dataset can share the 64-byte-aligned buffer type without
// depending on the ML layer; included here so kernel code keeps finding
// them in their historical home.

/// Minimal dense row-major float matrix used by the hand-rolled models.
/// Not a general linear-algebra library: only the kernels the ML substrate
/// needs (mat-vec, rank-1 update, small dense solve).
class Matrix {
 public:
  /// An empty 0 x 0 matrix.
  Matrix() = default;
  /// A zero-initialized rows x cols matrix.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0f) {}

  /// Number of rows.
  size_t rows() const { return rows_; }
  /// Number of columns.
  size_t cols() const { return cols_; }

  /// Mutable element access (row r, column c).
  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  /// Element access (row r, column c).
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Mutable pointer to the start of row r.
  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  /// Pointer to the start of row r.
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  /// Mutable flat row-major storage (64-byte aligned).
  AlignedFloats& data() { return data_; }
  /// Flat row-major storage (64-byte aligned).
  const AlignedFloats& data() const { return data_; }

  /// Sets every element to `value`.
  void Fill(float value);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  AlignedFloats data_;
};

/// out = M * x. `x` must have M.cols() entries; `out` is resized to M.rows().
void MatVec(const Matrix& m, const float* x, std::vector<float>& out);

/// out = M^T * x. `x` must have M.rows() entries; `out` resized to M.cols().
void MatTVec(const Matrix& m, const float* x, std::vector<float>& out);

/// M += alpha * a * b^T (rank-1 update; a has M.rows(), b has M.cols()).
void Rank1Update(Matrix& m, float alpha, const float* a, const float* b);

// ---------------------------------------------------------------------------
// Batched kernels (raw row-major buffers). Shapes are caller-guaranteed:
// a buffer documented as r x c must hold r*c floats.

/// c = a * b with a: m x k, b: k x n, c: m x n (overwritten). Blocked over
/// k with a 4-row micro-tile; the inner loop is a saxpy over a contiguous
/// row of b, so it vectorizes without reassociation flags.
void MatMul(const float* __restrict a, size_t m, size_t k,
            const float* __restrict b, size_t n, float* __restrict c);

/// c += a * b, same shapes as MatMul. The accumulate variant (used when a
/// bias or prior partial product already seeds `c`).
void MatMulAcc(const float* __restrict a, size_t m, size_t k,
               const float* __restrict b, size_t n, float* __restrict c);

/// c = a^T * b with a: m x k, b: m x n, c: k x n (overwritten). The
/// transpose-side product of the gradient paths (weight gradient =
/// deltas^T * activations), implemented as an internal transpose of `a`
/// followed by the blocked GEMM so the micro-tile's b-row reuse applies.
/// Use AddOuterBatch instead when accumulating onto existing content or
/// scaling by an alpha.
void MatTMat(const float* __restrict a, size_t m, size_t k,
             const float* __restrict b, size_t n, float* __restrict c);

/// acc += alpha * a^T * b with a: batch x rows, b: batch x cols,
/// acc: rows x cols — a rank-`batch` update accumulating one outer
/// product per batch row. Rows of `a` that are exactly zero are skipped,
/// which makes sparse backward deltas (CNN pool routing) cheap.
void AddOuterBatch(float* __restrict acc, size_t rows, size_t cols,
                   float alpha, const float* __restrict a,
                   const float* __restrict b, size_t batch);

/// out = a^T with a: rows x cols, out: cols x rows (overwritten). Used to
/// feed row-major weight matrices to MatMul's saxpy layout.
void Transpose(const float* __restrict a, size_t rows, size_t cols,
               float* __restrict out);

/// m[r][c] += bias[c] for every row r of m: rows x cols.
void AddBiasRows(float* __restrict m, size_t rows, size_t cols,
                 const float* __restrict bias);

/// Fused bias + ReLU: m[r][c] = max(m[r][c] + bias[c], 0).
void AddBiasReluRows(float* __restrict m, size_t rows, size_t cols,
                     const float* __restrict bias);

/// delta[i] = 0 wherever act[i] <= 0 (the ReLU gate of the backward
/// pass; `act` holds post-ReLU activations).
void ReluMaskBackward(float* __restrict delta, const float* __restrict act,
                      size_t n);

/// Numerically stable in-place softmax over each row of m: rows x cols.
/// Performs exactly the per-row arithmetic of SoftmaxInPlace.
void SoftmaxRows(float* m, size_t rows, size_t cols);

/// out[c] = sum over rows of m[r][c]; m: rows x cols, out: cols
/// (overwritten). Accumulates in row order, matching the per-example
/// reference's accumulation order bit for bit.
void ColumnSums(const float* __restrict m, size_t rows, size_t cols,
                float* __restrict out);

// ---------------------------------------------------------------------------
// Fused SGD weight-update steps (element-wise; bit-compatible with the
// historical scalar loops in TrainSgd).

/// p[i] -= lr * (g[i] + wd * p[i]).
void SgdStep(float* __restrict p, const float* __restrict g, size_t n,
             float lr, float wd);

/// v[i] = momentum * v[i] + g[i] + wd * p[i]; p[i] -= lr * v[i].
void SgdMomentumStep(float* __restrict p, float* __restrict v,
                     const float* __restrict g, size_t n, float lr,
                     float momentum, float wd);

/// g[i] += mu * (p[i] - ref[i]) — the FedProx proximal term.
void AddProximal(float* __restrict g, const float* __restrict p,
                 const float* __restrict ref, size_t n, float mu);

/// Solves the square system A * x = b in double precision by Gaussian
/// elimination with partial pivoting. A is given row-major with dimension
/// n x n. Requires n > 0, a.size() == n*n and b.size() == n (anything
/// else returns InvalidArgument). Fails when A is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b, int n);

}  // namespace fedshap

#endif  // FEDSHAP_ML_MATRIX_H_
