#ifndef FEDSHAP_ML_MATRIX_H_
#define FEDSHAP_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace fedshap {

/// Minimal dense row-major float matrix used by the hand-rolled models.
/// Not a general linear-algebra library: only the kernels the ML substrate
/// needs (mat-vec, rank-1 update, small dense solve).
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* RowPtr(size_t r) { return data_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return data_.data() + r * cols_; }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void Fill(float value);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

/// out = M * x. `x` must have M.cols() entries; `out` is resized to M.rows().
void MatVec(const Matrix& m, const float* x, std::vector<float>& out);

/// out = M^T * x. `x` must have M.rows() entries; `out` resized to M.cols().
void MatTVec(const Matrix& m, const float* x, std::vector<float>& out);

/// M += alpha * a * b^T (rank-1 update; a has M.rows(), b has M.cols()).
void Rank1Update(Matrix& m, float alpha, const float* a, const float* b);

/// Solves the square system A * x = b in double precision by Gaussian
/// elimination with partial pivoting. A is given row-major with dimension
/// n x n. Fails when A is (numerically) singular.
Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b, int n);

}  // namespace fedshap

#endif  // FEDSHAP_ML_MATRIX_H_
