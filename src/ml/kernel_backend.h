#ifndef FEDSHAP_ML_KERNEL_BACKEND_H_
#define FEDSHAP_ML_KERNEL_BACKEND_H_

#include <string>

#include "util/status.h"

namespace fedshap {

/// \file
/// Runtime-dispatched SIMD backends for the ML substrate's batched
/// kernels (ml/matrix.h).
///
/// The kernels in matrix.cc route their hot inner bodies through a
/// per-process dispatch table. At startup the table is bound to the
/// widest instruction set the CPU supports (probed via CPUID):
///
///   - kScalar:  the portable blocked loops (compiler autovectorized at
///               the build's baseline ISA) — always available, and the
///               reference every vector backend is tested against;
///   - kAvx2:    explicit AVX2+FMA micro-kernels (8-lane);
///   - kAvx512:  explicit AVX-512F micro-kernels (16-lane), only when
///               both the compiler and the CPU support it.
///
/// **Determinism contract.** The selected backend never changes *which*
/// coalition is trained, any workload fingerprint, or the sequence of
/// utility queries — only the float rounding inside a training. For a
/// fixed backend, results are bit-identical across runs and across
/// worker counts. GEMM-shaped kernels (MatMul/MatTMat/AddOuterBatch)
/// agree with the scalar backend within the tolerance contract of
/// ml/matrix.h (kKernelAbsTol/kKernelRelTol); element-wise kernels
/// (bias/ReLU/softmax rows, ColumnSums, the fused SGD steps) perform the
/// reference arithmetic per element in the reference order and match the
/// scalar backend to float rounding. Persisted utility stores are
/// addressed by workload fingerprint only, so they are portable across
/// backends *within that tolerance*; pin FEDSHAP_KERNEL_BACKEND=scalar
/// when bit-exact cross-machine reproduction matters (the golden-value
/// tests do exactly this).
///
/// Override order: SetKernelBackend() > FEDSHAP_KERNEL_BACKEND env var
/// ("scalar" | "avx2" | "avx512" | "auto") > CPUID auto-detection.
enum class KernelBackend {
  kScalar = 0,  ///< Portable blocked loops; always available reference.
  kAvx2 = 1,    ///< Explicit AVX2+FMA micro-kernels (8-lane).
  kAvx512 = 2,  ///< Explicit AVX-512F micro-kernels (16-lane).
};

/// Human-readable backend name ("scalar", "avx2", "avx512").
const char* KernelBackendName(KernelBackend backend);

/// Parses a backend name as accepted by FEDSHAP_KERNEL_BACKEND. "auto"
/// returns the auto-detected backend for this machine.
Result<KernelBackend> ParseKernelBackend(const std::string& name);

/// True when `backend` was compiled in *and* this CPU can execute it.
/// kScalar is always available.
bool KernelBackendAvailable(KernelBackend backend);

/// The backend the dispatch table is currently bound to. The first call
/// resolves FEDSHAP_KERNEL_BACKEND / CPUID; thereafter it reports the
/// active selection.
KernelBackend SelectedKernelBackend();

/// The widest backend this build + CPU supports (ignores any override).
KernelBackend AutoDetectKernelBackend();

/// Rebinds the dispatch table to `backend`. Fails with InvalidArgument
/// when the backend is not available on this machine. Not synchronized
/// with in-flight kernel calls: switch between trainings (tests and
/// benches do), not during one.
Status SetKernelBackend(KernelBackend backend);

/// One-line provenance string naming the active kernel backend and the
/// effective worker budget, e.g.
///   "kernels: backend=avx2 (auto) worker-budget=8"
/// Every bench/example binary prints this (and fedshapd --status
/// includes it) so performance numbers are attributable to a concrete
/// hardware configuration.
std::string KernelProvenanceString();

}  // namespace fedshap

#endif  // FEDSHAP_ML_KERNEL_BACKEND_H_
