#ifndef FEDSHAP_ML_MLP_H_
#define FEDSHAP_ML_MLP_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace fedshap {

/// One-hidden-layer multilayer perceptron: dim -> hidden (ReLU) -> classes
/// (softmax), trained with cross-entropy. The "MLP" FL model of the paper's
/// evaluation, sized for fast CPU training.
class Mlp : public Model {
 public:
  /// Builds an uninitialized dim -> hidden -> num_classes network.
  Mlp(int dim, int hidden, int num_classes);

  std::unique_ptr<Model> Clone() const override;
  std::string Name() const override;
  size_t NumParameters() const override;
  std::vector<float> GetParameters() const override;
  Status SetParameters(const std::vector<float>& params) override;
  void InitializeParameters(Rng& rng) override;
  double ComputeGradient(const Dataset& data,
                         const std::vector<size_t>& batch,
                         std::vector<float>& grad) const override;
  double ComputeGradientBatched(const Dataset& data,
                                const std::vector<size_t>& batch,
                                std::vector<float>& grad) const override;
  void Predict(const float* features,
               std::vector<float>& output) const override;
  int NumOutputs() const override { return num_classes_; }

  /// Hidden-layer width.
  int hidden() const { return hidden_; }

 private:
  // Parameter layout inside the flat vector:
  //   W1: hidden x dim      offset 0
  //   b1: hidden            offset w1_count
  //   W2: classes x hidden  offset w1_count + hidden
  //   b2: classes           tail
  size_t W1() const { return 0; }
  size_t B1() const { return static_cast<size_t>(hidden_) * dim_; }
  size_t W2() const { return B1() + hidden_; }
  size_t B2() const { return W2() + static_cast<size_t>(num_classes_) * hidden_; }

  /// Forward pass for one row; fills hidden activations (post-ReLU) and
  /// softmax probabilities.
  void Forward(const float* x, std::vector<float>& hidden_act,
               std::vector<float>& probs) const;

  int dim_;
  int hidden_;
  int num_classes_;
  std::vector<float> params_;
};

}  // namespace fedshap

#endif  // FEDSHAP_ML_MLP_H_
