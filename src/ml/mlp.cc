#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

#include "ml/logistic_regression.h"  // SoftmaxInPlace
#include "ml/matrix.h"
#include "util/logging.h"

namespace fedshap {

Mlp::Mlp(int dim, int hidden, int num_classes)
    : dim_(dim), hidden_(hidden), num_classes_(num_classes) {
  FEDSHAP_CHECK(dim >= 1);
  FEDSHAP_CHECK(hidden >= 1);
  FEDSHAP_CHECK(num_classes >= 2);
  params_.assign(B2() + num_classes_, 0.0f);
}

std::unique_ptr<Model> Mlp::Clone() const {
  return std::make_unique<Mlp>(*this);
}

std::string Mlp::Name() const {
  return "mlp(" + std::to_string(dim_) + "-" + std::to_string(hidden_) +
         "-" + std::to_string(num_classes_) + ")";
}

size_t Mlp::NumParameters() const { return params_.size(); }

std::vector<float> Mlp::GetParameters() const { return params_; }

Status Mlp::SetParameters(const std::vector<float>& params) {
  if (params.size() != params_.size()) {
    return Status::InvalidArgument("parameter size mismatch");
  }
  params_ = params;
  return Status::OK();
}

void Mlp::InitializeParameters(Rng& rng) {
  // He initialization for the ReLU layer, Xavier-ish for the head.
  const double scale1 = std::sqrt(2.0 / dim_);
  const double scale2 = std::sqrt(1.0 / hidden_);
  const size_t w1_count = B1();
  for (size_t i = 0; i < w1_count; ++i) {
    params_[i] = static_cast<float>(rng.Gaussian(0.0, scale1));
  }
  std::fill(params_.begin() + B1(), params_.begin() + W2(), 0.0f);
  for (size_t i = W2(); i < B2(); ++i) {
    params_[i] = static_cast<float>(rng.Gaussian(0.0, scale2));
  }
  std::fill(params_.begin() + B2(), params_.end(), 0.0f);
}

void Mlp::Forward(const float* x, std::vector<float>& hidden_act,
                  std::vector<float>& probs) const {
  hidden_act.assign(hidden_, 0.0f);
  const float* w1 = params_.data() + W1();
  const float* b1 = params_.data() + B1();
  for (int h = 0; h < hidden_; ++h) {
    const float* row = w1 + static_cast<size_t>(h) * dim_;
    float acc = b1[h];
    for (int d = 0; d < dim_; ++d) acc += row[d] * x[d];
    hidden_act[h] = acc > 0.0f ? acc : 0.0f;  // ReLU
  }
  probs.assign(num_classes_, 0.0f);
  const float* w2 = params_.data() + W2();
  const float* b2 = params_.data() + B2();
  for (int c = 0; c < num_classes_; ++c) {
    const float* row = w2 + static_cast<size_t>(c) * hidden_;
    float acc = b2[c];
    for (int h = 0; h < hidden_; ++h) acc += row[h] * hidden_act[h];
    probs[c] = acc;
  }
  SoftmaxInPlace(probs);
}

double Mlp::ComputeGradient(const Dataset& data,
                            const std::vector<size_t>& batch,
                            std::vector<float>& grad) const {
  grad.assign(params_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  std::vector<float> hidden_act, probs, dhidden(hidden_);
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  double total_loss = 0.0;
  const float* w2 = params_.data() + W2();
  for (size_t idx : batch) {
    data.CopyRow(idx, row.data());
    const float* x = row.data();
    const int label = data.ClassLabel(idx);
    Forward(x, hidden_act, probs);
    total_loss += -std::log(std::max(probs[label], 1e-12f));

    // Output layer: dlogit_c = p_c - 1[c==label].
    std::fill(dhidden.begin(), dhidden.end(), 0.0f);
    float* gw2 = grad.data() + W2();
    float* gb2 = grad.data() + B2();
    for (int c = 0; c < num_classes_; ++c) {
      const float delta = probs[c] - (c == label ? 1.0f : 0.0f);
      const float* w2_row = w2 + static_cast<size_t>(c) * hidden_;
      float* gw2_row = gw2 + static_cast<size_t>(c) * hidden_;
      for (int h = 0; h < hidden_; ++h) {
        gw2_row[h] += delta * hidden_act[h];
        dhidden[h] += delta * w2_row[h];
      }
      gb2[c] += delta;
    }
    // Hidden layer through ReLU.
    float* gw1 = grad.data() + W1();
    float* gb1 = grad.data() + B1();
    for (int h = 0; h < hidden_; ++h) {
      if (hidden_act[h] <= 0.0f) continue;  // ReLU gate
      const float dh = dhidden[h];
      float* gw1_row = gw1 + static_cast<size_t>(h) * dim_;
      for (int d = 0; d < dim_; ++d) gw1_row[d] += dh * x[d];
      gb1[h] += dh;
    }
  }
  const float inv = 1.0f / static_cast<float>(batch.size());
  for (float& g : grad) g *= inv;
  return total_loss / static_cast<double>(batch.size());
}

double Mlp::ComputeGradientBatched(const Dataset& data,
                                   const std::vector<size_t>& batch,
                                   std::vector<float>& grad) const {
  grad.assign(params_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  const size_t bsz = batch.size();
  const size_t dim = static_cast<size_t>(dim_);
  const size_t hidden = static_cast<size_t>(hidden_);
  const size_t classes = static_cast<size_t>(num_classes_);
  const float inv = 1.0f / static_cast<float>(bsz);

  // Per-thread scratch: gradient steps run once per minibatch, so these
  // amortize to zero allocations per epoch.
  static thread_local AlignedFloats xb, w1t, h, w2t, probs, dh;
  GatherRows(data, batch, xb);

  // Hidden layer: H = relu(X * W1^T + b1). W1 is transposed once per
  // batch so the product runs in saxpy form; the cost amortizes over the
  // batch rows.
  w1t.resize(dim * hidden);
  Transpose(params_.data() + W1(), hidden, dim, w1t.data());
  h.resize(bsz * hidden);
  MatMul(xb.data(), bsz, dim, w1t.data(), hidden, h.data());
  AddBiasReluRows(h.data(), bsz, hidden, params_.data() + B1());

  // Output layer: probs = softmax(H * W2^T + b2).
  w2t.resize(hidden * classes);
  Transpose(params_.data() + W2(), classes, hidden, w2t.data());
  probs.resize(bsz * classes);
  MatMul(h.data(), bsz, hidden, w2t.data(), classes, probs.data());
  AddBiasRows(probs.data(), bsz, classes, params_.data() + B2());
  SoftmaxRows(probs.data(), bsz, classes);

  // Loss; probs becomes the logit deltas (p_c - 1[c == label]) in place,
  // pre-scaled by 1/bsz so every downstream gradient product comes out
  // averaged with no separate scaling pass.
  double total_loss = 0.0;
  for (size_t i = 0; i < bsz; ++i) {
    const int label = data.ClassLabel(batch[i]);
    float* row = probs.data() + i * classes;
    total_loss += -std::log(std::max(row[label], 1e-12f));
    row[label] -= 1.0f;
  }
  for (size_t i = 0; i < bsz * classes; ++i) probs[i] *= inv;

  // Output-layer gradients: gW2 = delta^T * H, gb2 = column sums.
  AddOuterBatch(grad.data() + W2(), classes, hidden, 1.0f, probs.data(),
                h.data(), bsz);
  ColumnSums(probs.data(), bsz, classes, grad.data() + B2());

  // Backprop into the hidden layer: dH = delta * W2, gated by the ReLU.
  dh.resize(bsz * hidden);
  MatMul(probs.data(), bsz, classes, params_.data() + W2(), hidden,
         dh.data());
  ReluMaskBackward(dh.data(), h.data(), bsz * hidden);
  // gW1 = dH^T * X (dH is already 1/bsz-scaled through the deltas).
  MatTMat(dh.data(), bsz, hidden, xb.data(), dim, grad.data() + W1());
  ColumnSums(dh.data(), bsz, hidden, grad.data() + B1());
  return total_loss / static_cast<double>(bsz);
}

void Mlp::Predict(const float* features, std::vector<float>& output) const {
  std::vector<float> hidden_act;
  Forward(features, hidden_act, output);
}

}  // namespace fedshap
