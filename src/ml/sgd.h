#ifndef FEDSHAP_ML_SGD_H_
#define FEDSHAP_ML_SGD_H_

#include "data/dataset.h"
#include "ml/model.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// Minibatch SGD hyper-parameters shared by local FL training and
/// centralized baselines.
struct SgdConfig {
  /// Passes over the data.
  int epochs = 1;
  /// Examples per minibatch.
  int batch_size = 32;
  /// Step size.
  double learning_rate = 0.1;
  /// Classical momentum coefficient (0 = plain SGD).
  double momentum = 0.0;
  /// L2 regularization coefficient.
  double weight_decay = 0.0;
  /// Gradient execution path; part of the workload identity (hashed into
  /// utility fingerprints) because the two paths differ in float
  /// association.
  GradientMode gradient_mode = GradientMode::kBatched;
  /// FedProx proximal coefficient mu (Li et al., MLSys 2020): adds
  /// mu * (w - w_ref) to every gradient step, where w_ref is the model's
  /// parameters when TrainSgd starts (the global model, in FL terms).
  /// Zero disables the proximal term and recovers plain FedAvg local SGD.
  double proximal_mu = 0.0;
};

/// Runs `config.epochs` epochs of shuffled minibatch SGD on `data`,
/// mutating `model` in place. Returns the average training loss of the last
/// epoch. A no-op (returning 0) on an empty dataset — an FL client with no
/// data contributes nothing, which is what the null-player axiom expects.
///
/// Batch order is drawn from `rng` identically under both gradient modes,
/// and the weight update runs through the fused SGD kernels of
/// ml/matrix.h; with `config.gradient_mode == kBatched` (the default) each
/// minibatch's forward/backward additionally executes through the blocked
/// batched kernels instead of one example at a time.
Result<double> TrainSgd(Model& model, const Dataset& data,
                        const SgdConfig& config, Rng& rng);

}  // namespace fedshap

#endif  // FEDSHAP_ML_SGD_H_
