#ifndef FEDSHAP_ML_CNN_H_
#define FEDSHAP_ML_CNN_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace fedshap {

/// Small convolutional network for the square single-channel images
/// produced by the digit generator:
///
///   input (side x side) -> conv 3x3 (valid, `filters` channels) -> ReLU
///   -> maxpool 2x2 (stride 2) -> dense -> softmax
///
/// The "CNN" FL model of the paper's evaluation; implemented with manual
/// forward/backward passes (no autograd), sized for CPU-scale FL rounds.
class Cnn : public Model {
 public:
  /// `side` is the image width/height; features are side*side floats.
  Cnn(int side, int filters, int num_classes);

  std::unique_ptr<Model> Clone() const override;
  std::string Name() const override;
  size_t NumParameters() const override;
  std::vector<float> GetParameters() const override;
  Status SetParameters(const std::vector<float>& params) override;
  void InitializeParameters(Rng& rng) override;
  double ComputeGradient(const Dataset& data,
                         const std::vector<size_t>& batch,
                         std::vector<float>& grad) const override;
  double ComputeGradientBatched(const Dataset& data,
                                const std::vector<size_t>& batch,
                                std::vector<float>& grad) const override;
  void Predict(const float* features,
               std::vector<float>& output) const override;
  int NumOutputs() const override { return num_classes_; }

 private:
  // Derived sizes.
  int conv_side() const { return side_ - 2; }        // valid 3x3 conv
  int pool_side() const { return conv_side() / 2; }  // 2x2/2 maxpool
  size_t conv_area() const {
    return static_cast<size_t>(conv_side()) * conv_side();
  }
  size_t pool_area() const {
    return static_cast<size_t>(pool_side()) * pool_side();
  }
  size_t flat_size() const { return pool_area() * filters_; }

  // Flat parameter layout: conv weights (filters*9), conv bias (filters),
  // dense weights (classes*flat), dense bias (classes).
  size_t ConvW() const { return 0; }
  size_t ConvB() const { return static_cast<size_t>(filters_) * 9; }
  size_t DenseW() const { return ConvB() + filters_; }
  size_t DenseB() const {
    return DenseW() + static_cast<size_t>(num_classes_) * flat_size();
  }

  /// Forward pass for one image. Fills the post-ReLU conv maps, the pooled
  /// activations with their argmax positions (for backprop routing) and the
  /// softmax probabilities.
  void Forward(const float* x, std::vector<float>& conv_act,
               std::vector<float>& pooled, std::vector<int>& pool_argmax,
               std::vector<float>& probs) const;

  int side_;
  int filters_;
  int num_classes_;
  std::vector<float> params_;
};

}  // namespace fedshap

#endif  // FEDSHAP_ML_CNN_H_
