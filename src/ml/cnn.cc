#include "ml/cnn.h"

#include <algorithm>
#include <cmath>

#include "ml/logistic_regression.h"  // SoftmaxInPlace
#include "ml/matrix.h"
#include "util/logging.h"

namespace fedshap {

Cnn::Cnn(int side, int filters, int num_classes)
    : side_(side), filters_(filters), num_classes_(num_classes) {
  FEDSHAP_CHECK(side >= 6);  // need a >=2x2 pooled map after conv+pool
  FEDSHAP_CHECK(filters >= 1);
  FEDSHAP_CHECK(num_classes >= 2);
  params_.assign(DenseB() + num_classes_, 0.0f);
}

std::unique_ptr<Model> Cnn::Clone() const {
  return std::make_unique<Cnn>(*this);
}

std::string Cnn::Name() const {
  return "cnn(" + std::to_string(side_) + "x" + std::to_string(side_) +
         ",f" + std::to_string(filters_) + "-" +
         std::to_string(num_classes_) + ")";
}

size_t Cnn::NumParameters() const { return params_.size(); }

std::vector<float> Cnn::GetParameters() const { return params_; }

Status Cnn::SetParameters(const std::vector<float>& params) {
  if (params.size() != params_.size()) {
    return Status::InvalidArgument("parameter size mismatch");
  }
  params_ = params;
  return Status::OK();
}

void Cnn::InitializeParameters(Rng& rng) {
  const double conv_scale = std::sqrt(2.0 / 9.0);
  const double dense_scale = std::sqrt(1.0 / static_cast<double>(flat_size()));
  for (size_t i = ConvW(); i < ConvB(); ++i) {
    params_[i] = static_cast<float>(rng.Gaussian(0.0, conv_scale));
  }
  std::fill(params_.begin() + ConvB(), params_.begin() + DenseW(), 0.0f);
  for (size_t i = DenseW(); i < DenseB(); ++i) {
    params_[i] = static_cast<float>(rng.Gaussian(0.0, dense_scale));
  }
  std::fill(params_.begin() + DenseB(), params_.end(), 0.0f);
}

void Cnn::Forward(const float* x, std::vector<float>& conv_act,
                  std::vector<float>& pooled, std::vector<int>& pool_argmax,
                  std::vector<float>& probs) const {
  const int cs = conv_side();
  const int ps = pool_side();
  conv_act.assign(static_cast<size_t>(filters_) * conv_area(), 0.0f);
  pooled.assign(flat_size(), 0.0f);
  pool_argmax.assign(flat_size(), 0);

  const float* conv_w = params_.data() + ConvW();
  const float* conv_b = params_.data() + ConvB();
  for (int f = 0; f < filters_; ++f) {
    const float* w = conv_w + static_cast<size_t>(f) * 9;
    float* map = conv_act.data() + static_cast<size_t>(f) * conv_area();
    for (int r = 0; r < cs; ++r) {
      for (int c = 0; c < cs; ++c) {
        float acc = conv_b[f];
        for (int dr = 0; dr < 3; ++dr) {
          const float* src = x + (r + dr) * side_ + c;
          acc += w[dr * 3 + 0] * src[0] + w[dr * 3 + 1] * src[1] +
                 w[dr * 3 + 2] * src[2];
        }
        map[r * cs + c] = acc > 0.0f ? acc : 0.0f;  // ReLU
      }
    }
    // 2x2 max pooling (stride 2); remembers the winning offset for backprop.
    float* pooled_map = pooled.data() + static_cast<size_t>(f) * pool_area();
    int* argmax_map =
        pool_argmax.data() + static_cast<size_t>(f) * pool_area();
    for (int pr = 0; pr < ps; ++pr) {
      for (int pc = 0; pc < ps; ++pc) {
        float best = -1.0f;
        int best_idx = (2 * pr) * cs + 2 * pc;
        for (int dr = 0; dr < 2; ++dr) {
          for (int dc = 0; dc < 2; ++dc) {
            const int idx = (2 * pr + dr) * cs + (2 * pc + dc);
            if (map[idx] > best) {
              best = map[idx];
              best_idx = idx;
            }
          }
        }
        pooled_map[pr * ps + pc] = best;
        argmax_map[pr * ps + pc] = best_idx;
      }
    }
  }

  // Dense head over the flattened pooled maps.
  probs.assign(num_classes_, 0.0f);
  const float* dense_w = params_.data() + DenseW();
  const float* dense_b = params_.data() + DenseB();
  for (int c = 0; c < num_classes_; ++c) {
    const float* row = dense_w + static_cast<size_t>(c) * flat_size();
    float acc = dense_b[c];
    for (size_t i = 0; i < flat_size(); ++i) acc += row[i] * pooled[i];
    probs[c] = acc;
  }
  SoftmaxInPlace(probs);
}

double Cnn::ComputeGradient(const Dataset& data,
                            const std::vector<size_t>& batch,
                            std::vector<float>& grad) const {
  grad.assign(params_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  FEDSHAP_CHECK(data.num_features() == side_ * side_);

  const int cs = conv_side();
  std::vector<float> conv_act, pooled, probs;
  std::vector<int> pool_argmax;
  std::vector<float> dpooled(flat_size());
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  double total_loss = 0.0;

  const float* dense_w = params_.data() + DenseW();
  for (size_t idx : batch) {
    data.CopyRow(idx, row.data());
    const float* x = row.data();
    const int label = data.ClassLabel(idx);
    Forward(x, conv_act, pooled, pool_argmax, probs);
    total_loss += -std::log(std::max(probs[label], 1e-12f));

    // Dense layer backward.
    std::fill(dpooled.begin(), dpooled.end(), 0.0f);
    float* gdense_w = grad.data() + DenseW();
    float* gdense_b = grad.data() + DenseB();
    for (int c = 0; c < num_classes_; ++c) {
      const float delta = probs[c] - (c == label ? 1.0f : 0.0f);
      const float* w_row = dense_w + static_cast<size_t>(c) * flat_size();
      float* gw_row = gdense_w + static_cast<size_t>(c) * flat_size();
      for (size_t i = 0; i < flat_size(); ++i) {
        gw_row[i] += delta * pooled[i];
        dpooled[i] += delta * w_row[i];
      }
      gdense_b[c] += delta;
    }

    // Pool -> ReLU -> conv backward. Gradients flow only through each pool
    // window's argmax and only where the ReLU was active.
    float* gconv_w = grad.data() + ConvW();
    float* gconv_b = grad.data() + ConvB();
    for (int f = 0; f < filters_; ++f) {
      const float* map = conv_act.data() + static_cast<size_t>(f) * conv_area();
      const float* dpool_map =
          dpooled.data() + static_cast<size_t>(f) * pool_area();
      const int* argmax_map =
          pool_argmax.data() + static_cast<size_t>(f) * pool_area();
      float* gw = gconv_w + static_cast<size_t>(f) * 9;
      for (size_t p = 0; p < pool_area(); ++p) {
        const float dact = dpool_map[p];
        if (dact == 0.0f) continue;
        const int conv_idx = argmax_map[p];
        if (map[conv_idx] <= 0.0f) continue;  // ReLU gate
        const int r = conv_idx / cs;
        const int c = conv_idx % cs;
        for (int dr = 0; dr < 3; ++dr) {
          const float* src = x + (r + dr) * side_ + c;
          gw[dr * 3 + 0] += dact * src[0];
          gw[dr * 3 + 1] += dact * src[1];
          gw[dr * 3 + 2] += dact * src[2];
        }
        gconv_b[f] += dact;
      }
    }
  }
  const float inv = 1.0f / static_cast<float>(batch.size());
  for (float& g : grad) g *= inv;
  return total_loss / static_cast<double>(batch.size());
}

double Cnn::ComputeGradientBatched(const Dataset& data,
                                   const std::vector<size_t>& batch,
                                   std::vector<float>& grad) const {
  grad.assign(params_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  FEDSHAP_CHECK(data.num_features() == side_ * side_);
  const size_t bsz = batch.size();
  const int cs = conv_side();
  const int ps = pool_side();
  const size_t ca = conv_area();
  const size_t pa = pool_area();
  const size_t flat = flat_size();
  const size_t classes = static_cast<size_t>(num_classes_);
  const size_t filters = static_cast<size_t>(filters_);
  const size_t feat = static_cast<size_t>(side_) * side_;
  const float inv = 1.0f / static_cast<float>(bsz);

  static thread_local AlignedFloats xb, col, col_t, conv, pooled, wdt,
      probs, dpooled, dconv;
  static thread_local std::vector<int> pool_argmax;
  GatherRows(data, batch, xb);

  // im2col: one row of 9 patch pixels per (example, conv position),
  // plus its transpose. The whole batch's 3x3 convolution then becomes
  // one (filters x 9) * (9 x bsz*ca) product whose inner loops run over
  // all bsz*ca conv positions at once — with only `filters` output rows,
  // the row-major orientation would leave the saxpy width at `filters`.
  const size_t n_conv = bsz * ca;
  col.resize(n_conv * 9);
  for (size_t i = 0; i < bsz; ++i) {
    const float* x = xb.data() + i * feat;
    float* example_rows = col.data() + i * ca * 9;
    for (int r = 0; r < cs; ++r) {
      for (int c = 0; c < cs; ++c) {
        float* row = example_rows + (static_cast<size_t>(r) * cs + c) * 9;
        for (int dr = 0; dr < 3; ++dr) {
          const float* src = x + (r + dr) * side_ + c;
          row[dr * 3 + 0] = src[0];
          row[dr * 3 + 1] = src[1];
          row[dr * 3 + 2] = src[2];
        }
      }
    }
  }
  col_t.resize(9 * n_conv);
  Transpose(col.data(), n_conv, 9, col_t.data());

  // conv: filter-major (filters x bsz*ca) with each filter's maps laid
  // out exactly like the per-example path's conv_act, then fused
  // per-filter bias + ReLU.
  conv.resize(filters * n_conv);
  MatMul(params_.data() + ConvW(), filters, 9, col_t.data(), n_conv,
         conv.data());
  const float* conv_b = params_.data() + ConvB();
  for (size_t f = 0; f < filters; ++f) {
    float* map = conv.data() + f * n_conv;
    const float bias = conv_b[f];
    for (size_t p = 0; p < n_conv; ++p) {
      const float v = map[p] + bias;
      map[p] = v > 0.0f ? v : 0.0f;
    }
  }

  // 2x2/2 max pooling into the per-example flatten order the dense head
  // expects ([filter][pool position]), remembering each window's argmax
  // with the same strictly-greater tie-breaking as the reference path.
  pooled.resize(bsz * flat);
  pool_argmax.resize(bsz * flat);
  for (size_t i = 0; i < bsz; ++i) {
    float* pooled_i = pooled.data() + i * flat;
    int* argmax_i = pool_argmax.data() + i * flat;
    for (size_t f = 0; f < filters; ++f) {
      const float* map = conv.data() + f * n_conv + i * ca;
      for (int pr = 0; pr < ps; ++pr) {
        for (int pc = 0; pc < ps; ++pc) {
          float best = -1.0f;
          int best_idx = (2 * pr) * cs + 2 * pc;
          for (int dr = 0; dr < 2; ++dr) {
            for (int dc = 0; dc < 2; ++dc) {
              const int idx = (2 * pr + dr) * cs + (2 * pc + dc);
              if (map[idx] > best) {
                best = map[idx];
                best_idx = idx;
              }
            }
          }
          pooled_i[f * pa + pr * ps + pc] = best;
          argmax_i[f * pa + pr * ps + pc] = best_idx;
        }
      }
    }
  }

  // Dense head: probs = softmax(pooled * Wd^T + bd).
  wdt.resize(flat * classes);
  Transpose(params_.data() + DenseW(), classes, flat, wdt.data());
  probs.resize(bsz * classes);
  MatMul(pooled.data(), bsz, flat, wdt.data(), classes, probs.data());
  AddBiasRows(probs.data(), bsz, classes, params_.data() + DenseB());
  SoftmaxRows(probs.data(), bsz, classes);

  double total_loss = 0.0;
  for (size_t i = 0; i < bsz; ++i) {
    const int label = data.ClassLabel(batch[i]);
    float* row = probs.data() + i * classes;
    total_loss += -std::log(std::max(row[label], 1e-12f));
    row[label] -= 1.0f;
  }

  // Dense gradients, then backprop onto the pooled activations.
  AddOuterBatch(grad.data() + DenseW(), classes, flat, inv, probs.data(),
                pooled.data(), bsz);
  ColumnSums(probs.data(), bsz, classes, grad.data() + DenseB());
  dpooled.resize(bsz * flat);
  MatMul(probs.data(), bsz, classes, params_.data() + DenseW(), flat,
         dpooled.data());

  // Route each pooled gradient to its window's argmax (windows are
  // disjoint, so each conv position receives at most one), gated by the
  // ReLU. dconv is mostly zeros; AddOuterBatch skips the zero rows.
  // dconv stays (bsz*ca x filters), the orientation the rank-k gradient
  // update below consumes directly.
  dconv.assign(n_conv * filters, 0.0f);
  for (size_t i = 0; i < bsz; ++i) {
    const float* dpooled_i = dpooled.data() + i * flat;
    const int* argmax_i = pool_argmax.data() + i * flat;
    float* dconv_i = dconv.data() + i * ca * filters;
    for (size_t f = 0; f < filters; ++f) {
      const float* map = conv.data() + f * n_conv + i * ca;
      for (size_t p = 0; p < pa; ++p) {
        const float dact = dpooled_i[f * pa + p];
        if (dact == 0.0f) continue;
        const size_t conv_idx = static_cast<size_t>(argmax_i[f * pa + p]);
        if (map[conv_idx] <= 0.0f) continue;  // ReLU gate
        dconv_i[conv_idx * filters + f] = dact;
      }
    }
  }

  // Conv gradients: gW = dconv^T * im2col, gb = column sums of dconv.
  AddOuterBatch(grad.data() + ConvW(), filters, 9, inv, dconv.data(),
                col.data(), bsz * ca);
  ColumnSums(dconv.data(), bsz * ca, filters, grad.data() + ConvB());
  for (size_t c = 0; c < classes; ++c) grad[DenseB() + c] *= inv;
  for (size_t f = 0; f < filters; ++f) grad[ConvB() + f] *= inv;
  return total_loss / static_cast<double>(bsz);
}

void Cnn::Predict(const float* features, std::vector<float>& output) const {
  std::vector<float> conv_act, pooled;
  std::vector<int> pool_argmax;
  Forward(features, conv_act, pooled, pool_argmax, output);
}

}  // namespace fedshap
