#ifndef FEDSHAP_ML_METRICS_H_
#define FEDSHAP_ML_METRICS_H_

#include "data/dataset.h"
#include "ml/model.h"

namespace fedshap {

/// Fraction of rows whose argmax score equals the class label. Returns 0 for
/// an empty dataset. Classification models only.
double EvaluateAccuracy(const Model& model, const Dataset& data);

/// Mean squared error of the model's scalar output against the targets.
double EvaluateMse(const Model& model, const Dataset& data);

/// Mean absolute error of the model's scalar output against the targets.
double EvaluateMae(const Model& model, const Dataset& data);

/// MSE between two raw vectors (used for theory checks).
double MseBetween(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace fedshap

#endif  // FEDSHAP_ML_METRICS_H_
