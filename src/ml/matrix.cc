#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "ml/kernel_dispatch.h"
#include "util/logging.h"

namespace fedshap {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void MatVec(const Matrix& m, const float* x, std::vector<float>& out) {
  out.assign(m.rows(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    float acc = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
}

void MatTVec(const Matrix& m, const float* x, std::vector<float>& out) {
  out.assign(m.cols(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    const float xr = x[r];
    for (size_t c = 0; c < m.cols(); ++c) out[c] += row[c] * xr;
  }
}

void Rank1Update(Matrix& m, float alpha, const float* a, const float* b) {
  for (size_t r = 0; r < m.rows(); ++r) {
    float* row = m.RowPtr(r);
    const float ar = alpha * a[r];
    for (size_t c = 0; c < m.cols(); ++c) row[c] += ar * b[c];
  }
}

// ---------------------------------------------------------------------------
// Batched kernels.
//
// The public functions below dispatch their hot bodies through the
// backend table of ml/kernel_backend.h. The implementations in this
// anonymous namespace are the *scalar* backend: portable blocked loops
// the compiler autovectorizes at the build's baseline ISA, and the
// reference the AVX2/AVX-512 tables (matrix_avx2.cc / matrix_avx512.cc)
// are tested against.

namespace {

/// k-panel height: bounds the slice of b the micro-tile walks (kKc * n
/// floats) so it stays hot in L1/L2 for large reduction dimensions.
constexpr size_t kKc = 256;

/// The shared GEMM body: accumulates a * b into c. A 4-row micro-tile
/// (one load of b's row feeds four output rows) crossed with a 2-step
/// unroll of the reduction dimension (one read-modify-write of the
/// output row pays for two rank-1 contributions). The inner j-loops are
/// pure saxpy over contiguous rows — no reduction dependence — so they
/// auto-vectorize without -ffast-math.
void MatMulBody(const float* __restrict a, size_t m, size_t k,
                       const float* __restrict b, size_t n,
                       float* __restrict c) {
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t k1 = std::min(k, k0 + kKc);
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      size_t kk = k0;
      for (; kk + 2 <= k1; kk += 2) {
        const float* b0 = b + kk * n;
        const float* b1 = b0 + n;
        const float f00 = a0[kk], f01 = a0[kk + 1];
        const float f10 = a1[kk], f11 = a1[kk + 1];
        const float f20 = a2[kk], f21 = a2[kk + 1];
        const float f30 = a3[kk], f31 = a3[kk + 1];
        for (size_t j = 0; j < n; ++j) {
          const float v0 = b0[j];
          const float v1 = b1[j];
          c0[j] += f00 * v0 + f01 * v1;
          c1[j] += f10 * v0 + f11 * v1;
          c2[j] += f20 * v0 + f21 * v1;
          c3[j] += f30 * v0 + f31 * v1;
        }
      }
      for (; kk < k1; ++kk) {
        const float* brow = b + kk * n;
        const float f0 = a0[kk];
        const float f1 = a1[kk];
        const float f2 = a2[kk];
        const float f3 = a3[kk];
        for (size_t j = 0; j < n; ++j) {
          const float bv = brow[j];
          c0[j] += f0 * bv;
          c1[j] += f1 * bv;
          c2[j] += f2 * bv;
          c3[j] += f3 * bv;
        }
      }
    }
    for (; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (size_t kk = k0; kk < k1; ++kk) {
        const float* brow = b + kk * n;
        const float f = arow[kk];
        for (size_t j = 0; j < n; ++j) crow[j] += f * brow[j];
      }
    }
  }
}

void AddOuterBatchScalar(float* __restrict acc, size_t rows, size_t cols,
                         float alpha, const float* __restrict a,
                         const float* __restrict b, size_t batch) {
  // 2-step unroll of the batch (reduction) dimension: one traversal of
  // acc's row absorbs two outer products. Rows of `a` whose coefficients
  // are zero contribute nothing and are skipped, which makes the
  // mostly-zero backward deltas of pooled layers cheap.
  size_t s = 0;
  for (; s + 2 <= batch; s += 2) {
    const float* a0 = a + s * rows;
    const float* a1 = a0 + rows;
    const float* b0 = b + s * cols;
    const float* b1 = b0 + cols;
    for (size_t r = 0; r < rows; ++r) {
      const float f0 = alpha * a0[r];
      const float f1 = alpha * a1[r];
      if (f0 == 0.0f && f1 == 0.0f) continue;
      float* crow = acc + r * cols;
      for (size_t c = 0; c < cols; ++c) crow[c] += f0 * b0[c] + f1 * b1[c];
    }
  }
  for (; s < batch; ++s) {
    const float* arow = a + s * rows;
    const float* brow = b + s * cols;
    for (size_t r = 0; r < rows; ++r) {
      const float f = alpha * arow[r];
      if (f == 0.0f) continue;
      float* crow = acc + r * cols;
      for (size_t c = 0; c < cols; ++c) crow[c] += f * brow[c];
    }
  }
}

}  // namespace

void Transpose(const float* __restrict a, size_t rows, size_t cols,
               float* __restrict out) {
  constexpr size_t kBlock = 32;
  if (rows * cols <= kBlock * kBlock) {
    // Small weight matrices (the per-gradient-step case) fit in L1;
    // plain loops beat the blocked traversal's overhead.
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) out[c * rows + r] = a[r * cols + c];
    }
    return;
  }
  for (size_t r0 = 0; r0 < rows; r0 += kBlock) {
    const size_t r1 = std::min(rows, r0 + kBlock);
    for (size_t c0 = 0; c0 < cols; c0 += kBlock) {
      const size_t c1 = std::min(cols, c0 + kBlock);
      for (size_t r = r0; r < r1; ++r) {
        for (size_t c = c0; c < c1; ++c) out[c * rows + r] = a[r * cols + c];
      }
    }
  }
}

namespace {

void AddBiasRowsScalar(float* __restrict m, size_t rows, size_t cols,
                       const float* __restrict bias) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    for (size_t c = 0; c < cols; ++c) row[c] += bias[c];
  }
}

void AddBiasReluRowsScalar(float* __restrict m, size_t rows, size_t cols,
                           const float* __restrict bias) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      const float v = row[c] + bias[c];
      row[c] = v > 0.0f ? v : 0.0f;
    }
  }
}

void ReluMaskBackwardScalar(float* __restrict delta,
                            const float* __restrict act, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (act[i] <= 0.0f) delta[i] = 0.0f;
  }
}

void SoftmaxRowsScalar(float* m, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    // Same arithmetic order as SoftmaxInPlace so equal logits produce
    // bit-equal probabilities.
    float max_logit = row[0];
    for (size_t c = 1; c < cols; ++c) max_logit = std::max(max_logit, row[c]);
    float total = 0.0f;
    for (size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_logit);
      total += row[c];
    }
    for (size_t c = 0; c < cols; ++c) row[c] /= total;
  }
}

void ColumnSumsScalar(const float* __restrict m, size_t rows, size_t cols,
                      float* __restrict out) {
  std::fill(out, out + cols, 0.0f);
  for (size_t r = 0; r < rows; ++r) {
    const float* row = m + r * cols;
    for (size_t c = 0; c < cols; ++c) out[c] += row[c];
  }
}

void SgdStepScalar(float* __restrict p, const float* __restrict g,
                   size_t n, float lr, float wd) {
  for (size_t i = 0; i < n; ++i) p[i] -= lr * (g[i] + wd * p[i]);
}

void SgdMomentumStepScalar(float* __restrict p, float* __restrict v,
                           const float* __restrict g, size_t n, float lr,
                           float momentum, float wd) {
  for (size_t i = 0; i < n; ++i) {
    v[i] = momentum * v[i] + g[i] + wd * p[i];
    p[i] -= lr * v[i];
  }
}

void AddProximalScalar(float* __restrict g, const float* __restrict p,
                       const float* __restrict ref, size_t n, float mu) {
  for (size_t i = 0; i < n; ++i) g[i] += mu * (p[i] - ref[i]);
}

const internal::KernelTable kScalarTable = {
    MatMulBody,          AddOuterBatchScalar, AddBiasRowsScalar,
    AddBiasReluRowsScalar, ReluMaskBackwardScalar, SoftmaxRowsScalar,
    ColumnSumsScalar,    SgdStepScalar,       SgdMomentumStepScalar,
    AddProximalScalar,
};

}  // namespace

namespace internal {

const KernelTable& ScalarKernelTable() { return kScalarTable; }

}  // namespace internal

// ---------------------------------------------------------------------------
// Public kernels: thin dispatchers through the active backend table.

void MatMulAcc(const float* __restrict a, size_t m, size_t k,
               const float* __restrict b, size_t n, float* __restrict c) {
  internal::ActiveKernelTable().mat_mul_body(a, m, k, b, n, c);
}

void MatMul(const float* __restrict a, size_t m, size_t k,
            const float* __restrict b, size_t n, float* __restrict c) {
  std::fill(c, c + m * n, 0.0f);
  internal::ActiveKernelTable().mat_mul_body(a, m, k, b, n, c);
}

void MatTMat(const float* __restrict a, size_t m, size_t k,
             const float* __restrict b, size_t n, float* __restrict c) {
  // Transpose a once, then run the product as a plain GEMM: the 4-row
  // micro-tile shares each b-row load across four output rows, which the
  // outer-product formulation (AddOuterBatch) cannot.
  static thread_local AlignedFloats at;
  at.resize(k * m);
  Transpose(a, m, k, at.data());
  std::fill(c, c + k * n, 0.0f);
  internal::ActiveKernelTable().mat_mul_body(at.data(), k, m, b, n, c);
}

void AddOuterBatch(float* __restrict acc, size_t rows, size_t cols,
                   float alpha, const float* __restrict a,
                   const float* __restrict b, size_t batch) {
  internal::ActiveKernelTable().add_outer_batch(acc, rows, cols, alpha, a,
                                                b, batch);
}

void AddBiasRows(float* __restrict m, size_t rows, size_t cols,
                 const float* __restrict bias) {
  internal::ActiveKernelTable().add_bias_rows(m, rows, cols, bias);
}

void AddBiasReluRows(float* __restrict m, size_t rows, size_t cols,
                     const float* __restrict bias) {
  internal::ActiveKernelTable().add_bias_relu_rows(m, rows, cols, bias);
}

void ReluMaskBackward(float* __restrict delta, const float* __restrict act,
                      size_t n) {
  internal::ActiveKernelTable().relu_mask_backward(delta, act, n);
}

void SoftmaxRows(float* m, size_t rows, size_t cols) {
  internal::ActiveKernelTable().softmax_rows(m, rows, cols);
}

void ColumnSums(const float* __restrict m, size_t rows, size_t cols,
                float* __restrict out) {
  internal::ActiveKernelTable().column_sums(m, rows, cols, out);
}

void SgdStep(float* __restrict p, const float* __restrict g, size_t n,
             float lr, float wd) {
  internal::ActiveKernelTable().sgd_step(p, g, n, lr, wd);
}

void SgdMomentumStep(float* __restrict p, float* __restrict v,
                     const float* __restrict g, size_t n, float lr,
                     float momentum, float wd) {
  internal::ActiveKernelTable().sgd_momentum_step(p, v, g, n, lr, momentum,
                                                  wd);
}

void AddProximal(float* __restrict g, const float* __restrict p,
                 const float* __restrict ref, size_t n, float mu) {
  internal::ActiveKernelTable().add_proximal(g, p, ref, n, mu);
}

Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b, int n) {
  if (n <= 0) return Status::InvalidArgument("system dimension must be > 0");
  if (a.size() != static_cast<size_t>(n) * n) {
    return Status::InvalidArgument("matrix a must have exactly n*n entries");
  }
  if (b.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("vector b must have exactly n entries");
  }
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (int r = col + 1; r < n; ++r) {
      double candidate = std::fabs(a[r * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("singular linear system");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * n + col];
    for (int r = col + 1; r < n; ++r) {
      double factor = a[r * n + col] / diag;
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < n; ++c) acc -= a[r * n + c] * x[c];
    x[r] = acc / a[r * n + r];
  }
  return x;
}

}  // namespace fedshap
