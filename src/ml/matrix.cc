#include "ml/matrix.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedshap {

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void MatVec(const Matrix& m, const float* x, std::vector<float>& out) {
  out.assign(m.rows(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    float acc = 0.0f;
    for (size_t c = 0; c < m.cols(); ++c) acc += row[c] * x[c];
    out[r] = acc;
  }
}

void MatTVec(const Matrix& m, const float* x, std::vector<float>& out) {
  out.assign(m.cols(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.RowPtr(r);
    const float xr = x[r];
    for (size_t c = 0; c < m.cols(); ++c) out[c] += row[c] * xr;
  }
}

void Rank1Update(Matrix& m, float alpha, const float* a, const float* b) {
  for (size_t r = 0; r < m.rows(); ++r) {
    float* row = m.RowPtr(r);
    const float ar = alpha * a[r];
    for (size_t c = 0; c < m.cols(); ++c) row[c] += ar * b[c];
  }
}

Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b, int n) {
  if (n <= 0) return Status::InvalidArgument("system dimension must be > 0");
  if (a.size() != static_cast<size_t>(n) * n ||
      b.size() != static_cast<size_t>(n)) {
    return Status::InvalidArgument("system size mismatch");
  }
  for (int col = 0; col < n; ++col) {
    // Partial pivoting.
    int pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (int r = col + 1; r < n; ++r) {
      double candidate = std::fabs(a[r * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("singular linear system");
    }
    if (pivot != col) {
      for (int c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    const double diag = a[col * n + col];
    for (int r = col + 1; r < n; ++r) {
      double factor = a[r * n + col] / diag;
      if (factor == 0.0) continue;
      for (int c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (int r = n - 1; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < n; ++c) acc -= a[r * n + c] * x[c];
    x[r] = acc / a[r * n + r];
  }
  return x;
}

}  // namespace fedshap
