#ifndef FEDSHAP_ML_LINEAR_REGRESSION_H_
#define FEDSHAP_ML_LINEAR_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace fedshap {

/// Ordinary least-squares linear model y = w.x + b with 0.5*(pred-y)^2 loss.
///
/// Used by the theory-side experiments (the paper's variance analysis in
/// Thm. 2 and the error bound in Thm. 3 assume FL linear regression) and as
/// the simplest gradient-trainable model for tests.
class LinearRegression : public Model {
 public:
  /// Builds an uninitialized model over `dim` features.
  explicit LinearRegression(int dim);

  std::unique_ptr<Model> Clone() const override;
  std::string Name() const override;
  size_t NumParameters() const override;
  std::vector<float> GetParameters() const override;
  Status SetParameters(const std::vector<float>& params) override;
  void InitializeParameters(Rng& rng) override;
  double ComputeGradient(const Dataset& data,
                         const std::vector<size_t>& batch,
                         std::vector<float>& grad) const override;
  double ComputeGradientBatched(const Dataset& data,
                                const std::vector<size_t>& batch,
                                std::vector<float>& grad) const override;
  void Predict(const float* features,
               std::vector<float>& output) const override;
  int NumOutputs() const override { return 1; }
  const float* AffineScorer(const float** bias) const override {
    *bias = weights_.data() + dim_;
    return weights_.data();
  }

  /// Exact least-squares fit via the normal equations (ridge-regularized by
  /// `l2` for numerical stability). Replaces the current parameters.
  Status FitClosedForm(const Dataset& data, double l2 = 1e-8);

  /// Feature dimension.
  int dim() const { return dim_; }

 private:
  int dim_;
  std::vector<float> weights_;  // dim_ weights followed by a bias.
};

}  // namespace fedshap

#endif  // FEDSHAP_ML_LINEAR_REGRESSION_H_
