#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedshap {

double EvaluateAccuracy(const Model& model, const Dataset& data) {
  if (data.empty()) return 0.0;
  FEDSHAP_CHECK(data.num_classes() > 0);
  std::vector<float> scores;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    data.CopyRow(i, row.data());
    model.Predict(row.data(), scores);
    int prediction = static_cast<int>(
        std::max_element(scores.begin(), scores.end()) - scores.begin());
    if (prediction == data.ClassLabel(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

double EvaluateMse(const Model& model, const Dataset& data) {
  if (data.empty()) return 0.0;
  std::vector<float> out;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    data.CopyRow(i, row.data());
    model.Predict(row.data(), out);
    double diff = static_cast<double>(out[0]) - data.Target(i);
    total += diff * diff;
  }
  return total / static_cast<double>(data.size());
}

double EvaluateMae(const Model& model, const Dataset& data) {
  if (data.empty()) return 0.0;
  std::vector<float> out;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  double total = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    data.CopyRow(i, row.data());
    model.Predict(row.data(), out);
    total += std::fabs(static_cast<double>(out[0]) - data.Target(i));
  }
  return total / static_cast<double>(data.size());
}

double MseBetween(const std::vector<double>& a,
                  const std::vector<double>& b) {
  FEDSHAP_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    total += diff * diff;
  }
  return total / static_cast<double>(a.size());
}

}  // namespace fedshap
