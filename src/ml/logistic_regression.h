#ifndef FEDSHAP_ML_LOGISTIC_REGRESSION_H_
#define FEDSHAP_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "ml/model.h"

namespace fedshap {

/// Multinomial (softmax) logistic regression with cross-entropy loss.
/// Parameters: a classes x dim weight matrix followed by per-class biases.
class LogisticRegression : public Model {
 public:
  /// Builds an uninitialized dim -> num_classes classifier.
  LogisticRegression(int dim, int num_classes);

  std::unique_ptr<Model> Clone() const override;
  std::string Name() const override;
  size_t NumParameters() const override;
  std::vector<float> GetParameters() const override;
  Status SetParameters(const std::vector<float>& params) override;
  void InitializeParameters(Rng& rng) override;
  double ComputeGradient(const Dataset& data,
                         const std::vector<size_t>& batch,
                         std::vector<float>& grad) const override;
  double ComputeGradientBatched(const Dataset& data,
                                const std::vector<size_t>& batch,
                                std::vector<float>& grad) const override;
  void Predict(const float* features,
               std::vector<float>& output) const override;
  int NumOutputs() const override { return num_classes_; }
  // Softmax is monotone per row, so argmax over the affine logits equals
  // argmax over Predict()'s probabilities.
  const float* AffineScorer(const float** bias) const override {
    *bias = params_.data() + static_cast<size_t>(num_classes_) * dim_;
    return params_.data();
  }

 private:
  /// Writes softmax probabilities for one row into `probs`.
  void Forward(const float* x, std::vector<float>& probs) const;

  int dim_;
  int num_classes_;
  std::vector<float> params_;  // [W (classes*dim), b (classes)]
};

/// Numerically stable in-place softmax over `logits`.
void SoftmaxInPlace(std::vector<float>& logits);

}  // namespace fedshap

#endif  // FEDSHAP_ML_LOGISTIC_REGRESSION_H_
