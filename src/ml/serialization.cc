#include "ml/serialization.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fedshap {

namespace {
constexpr char kMagic[] = "fedshap-model v1";
}  // namespace

Status SaveModelParameters(const std::string& path, const Model& model) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);
  const std::vector<float> params = model.GetParameters();
  out << kMagic << "\n" << model.Name() << "\n" << params.size() << "\n";
  char buffer[64];
  for (float p : params) {
    // Hex float representation round-trips bit-exactly.
    std::snprintf(buffer, sizeof(buffer), "%a", static_cast<double>(p));
    out << buffer << "\n";
  }
  if (!out) return Status::Internal("failed writing model file: " + path);
  return Status::OK();
}

Status LoadModelParameters(const std::string& path, Model& model) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open model file: " + path);
  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) {
    return Status::InvalidArgument("not a fedshap model file: " + path);
  }
  std::string name;
  std::getline(in, name);
  if (name != model.Name()) {
    return Status::InvalidArgument(
        "architecture mismatch: file holds '" + name + "', model is '" +
        model.Name() + "'");
  }
  size_t count = 0;
  in >> count;
  if (!in || count != model.NumParameters()) {
    return Status::InvalidArgument("parameter count mismatch in " + path);
  }
  std::vector<float> params(count);
  for (size_t i = 0; i < count; ++i) {
    std::string token;
    in >> token;
    if (!in) return Status::InvalidArgument("truncated model file: " + path);
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || errno != 0) {
      return Status::InvalidArgument("bad parameter value in " + path);
    }
    params[i] = static_cast<float>(value);
  }
  return model.SetParameters(params);
}

}  // namespace fedshap
