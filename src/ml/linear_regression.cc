#include "ml/linear_regression.h"

#include <cmath>

#include "ml/matrix.h"
#include "util/logging.h"

namespace fedshap {

LinearRegression::LinearRegression(int dim)
    : dim_(dim), weights_(dim + 1, 0.0f) {
  FEDSHAP_CHECK(dim >= 1);
}

std::unique_ptr<Model> LinearRegression::Clone() const {
  return std::make_unique<LinearRegression>(*this);
}

std::string LinearRegression::Name() const {
  return "linreg(" + std::to_string(dim_) + ")";
}

size_t LinearRegression::NumParameters() const { return weights_.size(); }

std::vector<float> LinearRegression::GetParameters() const {
  return weights_;
}

Status LinearRegression::SetParameters(const std::vector<float>& params) {
  if (params.size() != weights_.size()) {
    return Status::InvalidArgument("parameter size mismatch");
  }
  weights_ = params;
  return Status::OK();
}

void LinearRegression::InitializeParameters(Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (int d = 0; d < dim_; ++d) {
    weights_[d] = static_cast<float>(rng.Gaussian(0.0, scale));
  }
  weights_[dim_] = 0.0f;
}

double LinearRegression::ComputeGradient(const Dataset& data,
                                         const std::vector<size_t>& batch,
                                         std::vector<float>& grad) const {
  grad.assign(weights_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  double total_loss = 0.0;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  for (size_t idx : batch) {
    data.CopyRow(idx, row.data());
    const float* x = row.data();
    double pred = weights_[dim_];
    for (int d = 0; d < dim_; ++d) pred += weights_[d] * x[d];
    const double err = pred - data.Target(idx);
    total_loss += 0.5 * err * err;
    for (int d = 0; d < dim_; ++d) {
      grad[d] += static_cast<float>(err * x[d]);
    }
    grad[dim_] += static_cast<float>(err);
  }
  const float inv = 1.0f / static_cast<float>(batch.size());
  for (float& g : grad) g *= inv;
  return total_loss / static_cast<double>(batch.size());
}

double LinearRegression::ComputeGradientBatched(
    const Dataset& data, const std::vector<size_t>& batch,
    std::vector<float>& grad) const {
  grad.assign(weights_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  const size_t bsz = batch.size();
  const size_t dim = static_cast<size_t>(dim_);
  const float inv = 1.0f / static_cast<float>(bsz);

  static thread_local AlignedFloats xb, err;
  GatherRows(data, batch, xb);

  // Per-row predictions over the gathered batch, then the averaged error
  // vector (scaling before the reduction keeps the gradient GEMM below
  // alpha-free).
  err.resize(bsz);
  const float bias = weights_[dim_];
  double total_loss = 0.0;
  float bias_grad = 0.0f;
  for (size_t i = 0; i < bsz; ++i) {
    const float* row = xb.data() + i * dim;
    float acc = 0.0f;
    for (size_t d = 0; d < dim; ++d) acc += weights_[d] * row[d];
    const double e =
        static_cast<double>(acc) + bias - data.Target(batch[i]);
    total_loss += 0.5 * e * e;
    err[i] = static_cast<float>(e) * inv;
    bias_grad += err[i];
  }

  // grad_w = (err/bsz)^T as a 1 x bsz row times X (bsz x dim): a single
  // saxpy-form GEMM row, so the inner loop runs over the full feature
  // width.
  MatMul(err.data(), 1, bsz, xb.data(), dim, grad.data());
  grad[dim_] = bias_grad;
  return total_loss / static_cast<double>(bsz);
}

void LinearRegression::Predict(const float* features,
                               std::vector<float>& output) const {
  double pred = weights_[dim_];
  for (int d = 0; d < dim_; ++d) pred += weights_[d] * features[d];
  output.assign(1, static_cast<float>(pred));
}

Status LinearRegression::FitClosedForm(const Dataset& data, double l2) {
  if (data.num_features() != dim_) {
    return Status::InvalidArgument("dataset dimension mismatch");
  }
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  // Augmented design: [x, 1]. Normal equations (X^T X + l2 I) w = X^T y.
  const int n = dim_ + 1;
  std::vector<double> xtx(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> xty(n, 0.0);
  std::vector<float> row(static_cast<size_t>(dim_));
  for (size_t i = 0; i < data.size(); ++i) {
    data.CopyRow(i, row.data());
    for (int a = 0; a < n; ++a) {
      const double xa = (a < dim_) ? row[a] : 1.0;
      xty[a] += xa * data.Target(i);
      for (int b = a; b < n; ++b) {
        const double xb = (b < dim_) ? row[b] : 1.0;
        xtx[a * n + b] += xa * xb;
      }
    }
  }
  for (int a = 0; a < n; ++a) {
    xtx[a * n + a] += l2;
    for (int b = 0; b < a; ++b) xtx[a * n + b] = xtx[b * n + a];
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> solution,
                           SolveLinearSystem(std::move(xtx), std::move(xty),
                                             n));
  for (int a = 0; a < n; ++a) weights_[a] = static_cast<float>(solution[a]);
  return Status::OK();
}

}  // namespace fedshap
