#ifndef FEDSHAP_ML_GBDT_H_
#define FEDSHAP_ML_GBDT_H_

#include <vector>

#include "data/dataset.h"
#include "util/status.h"

namespace fedshap {

/// Hyper-parameters for the gradient-boosted decision tree learner.
struct GbdtConfig {
  /// Boosting rounds (trees in the ensemble).
  int num_trees = 20;
  /// Maximum tree depth.
  int max_depth = 3;
  /// Shrinkage applied to each tree's contribution (XGBoost's eta).
  double learning_rate = 0.3;
  /// L2 regularization on leaf weights (XGBoost's lambda).
  double reg_lambda = 1.0;
  /// Minimum hessian sum per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// Minimum number of samples per child.
  int min_samples_leaf = 2;
};

/// XGBoost-style gradient boosting for binary classification with logistic
/// loss (second-order splits, exact greedy split finding).
///
/// This is the "XGB" FL model of the paper's Adult experiments (Table V).
/// In cross-silo horizontal FL the booster is fit on the merged coalition
/// dataset; gradient-based SV baselines are not applicable to it, exactly as
/// the paper notes.
class Gbdt {
 public:
  /// Creates an unfit booster with the given hyper-parameters.
  explicit Gbdt(const GbdtConfig& config) : config_(config) {}

  /// Trains on a binary classification dataset (labels in {0, 1}).
  /// Replaces any previously fit ensemble.
  Status Fit(const Dataset& data);

  /// Trains on a gathered view (same contract as Fit(Dataset)). This is
  /// the coalition-evaluation path: GbdtUtility assembles D_S as an
  /// index view over the member clients' shards instead of copying
  /// every row per evaluated coalition; the split search then reads the
  /// shards' columns directly. Fitting a view of a dataset produces the
  /// identical ensemble to fitting the dataset.
  Status Fit(const DatasetView& data);

  /// Raw additive score (log-odds).
  double PredictLogit(const float* features) const;

  /// Sigmoid of the logit.
  double PredictProbability(const float* features) const;

  /// Classification accuracy at the 0.5 probability threshold.
  double EvaluateAccuracy(const Dataset& data) const;

  /// Trees fit so far (0 before Fit).
  int num_trees() const { return static_cast<int>(trees_.size()); }
  /// The hyper-parameters the booster was created with.
  const GbdtConfig& config() const { return config_; }

 private:
  struct Node {
    // Internal node: feature/threshold route left (<=) or right (>).
    int feature = -1;
    float threshold = 0.0f;
    int left = -1;
    int right = -1;
    // Leaf payload (already scaled by the learning rate).
    float value = 0.0f;
    bool IsLeaf() const { return feature < 0; }
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(const float* features) const;
    // Routes view row i through the tree reading only the features the
    // visited nodes test (no row materialization).
    double Predict(const DatasetView& data, size_t i) const;
  };

  /// Recursively grows a tree over `rows`; returns the new node's index.
  int BuildNode(const DatasetView& data, const std::vector<double>& grad,
                const std::vector<double>& hess, std::vector<int>& rows,
                int depth, Tree& tree);

  GbdtConfig config_;
  std::vector<Tree> trees_;
};

}  // namespace fedshap

#endif  // FEDSHAP_ML_GBDT_H_
