// AVX2+FMA kernel backend (see ml/kernel_backend.h for the dispatch and
// determinism contract). This translation unit is compiled with
// -mavx2 -mfma -ffp-contract=off and must only be *executed* after a
// CPUID check (kernel_backend.cc guards binding); -ffp-contract=off
// keeps the element-wise kernels' separate mul/add intrinsics from being
// re-fused, so they stay bit-identical to the scalar backend, while the
// GEMM-shaped kernels use explicit _mm256_fmadd_ps under the tolerance
// contract of ml/matrix.h.

#include "ml/kernel_dispatch.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace fedshap {
namespace internal {
namespace {

/// Same k-panel height as the scalar backend: bounds the b-slice the
/// micro-tile walks so it stays hot in L1/L2.
constexpr size_t kKc = 256;

/// c += a * b (a: m x k, b: k x n, all row-major). The scalar backend's
/// 4-row x 2-k micro-tile with the saxpy j-loop widened to 8 lanes: one
/// load of b's row feeds four FMA output rows.
void MatMulBodyAvx2(const float* __restrict a, size_t m, size_t k,
                    const float* __restrict b, size_t n,
                    float* __restrict c) {
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t k1 = std::min(k, k0 + kKc);
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      size_t kk = k0;
      for (; kk + 2 <= k1; kk += 2) {
        const float* b0 = b + kk * n;
        const float* b1 = b0 + n;
        const __m256 f00 = _mm256_broadcast_ss(a0 + kk);
        const __m256 f01 = _mm256_broadcast_ss(a0 + kk + 1);
        const __m256 f10 = _mm256_broadcast_ss(a1 + kk);
        const __m256 f11 = _mm256_broadcast_ss(a1 + kk + 1);
        const __m256 f20 = _mm256_broadcast_ss(a2 + kk);
        const __m256 f21 = _mm256_broadcast_ss(a2 + kk + 1);
        const __m256 f30 = _mm256_broadcast_ss(a3 + kk);
        const __m256 f31 = _mm256_broadcast_ss(a3 + kk + 1);
        size_t j = 0;
        for (; j + 8 <= n; j += 8) {
          const __m256 v0 = _mm256_loadu_ps(b0 + j);
          const __m256 v1 = _mm256_loadu_ps(b1 + j);
          __m256 r0 = _mm256_loadu_ps(c0 + j);
          __m256 r1 = _mm256_loadu_ps(c1 + j);
          __m256 r2 = _mm256_loadu_ps(c2 + j);
          __m256 r3 = _mm256_loadu_ps(c3 + j);
          r0 = _mm256_fmadd_ps(f00, v0, _mm256_fmadd_ps(f01, v1, r0));
          r1 = _mm256_fmadd_ps(f10, v0, _mm256_fmadd_ps(f11, v1, r1));
          r2 = _mm256_fmadd_ps(f20, v0, _mm256_fmadd_ps(f21, v1, r2));
          r3 = _mm256_fmadd_ps(f30, v0, _mm256_fmadd_ps(f31, v1, r3));
          _mm256_storeu_ps(c0 + j, r0);
          _mm256_storeu_ps(c1 + j, r1);
          _mm256_storeu_ps(c2 + j, r2);
          _mm256_storeu_ps(c3 + j, r3);
        }
        const float s00 = a0[kk], s01 = a0[kk + 1];
        const float s10 = a1[kk], s11 = a1[kk + 1];
        const float s20 = a2[kk], s21 = a2[kk + 1];
        const float s30 = a3[kk], s31 = a3[kk + 1];
        for (; j < n; ++j) {
          const float v0 = b0[j];
          const float v1 = b1[j];
          c0[j] += s00 * v0 + s01 * v1;
          c1[j] += s10 * v0 + s11 * v1;
          c2[j] += s20 * v0 + s21 * v1;
          c3[j] += s30 * v0 + s31 * v1;
        }
      }
      for (; kk < k1; ++kk) {
        const float* brow = b + kk * n;
        const __m256 f0 = _mm256_broadcast_ss(a0 + kk);
        const __m256 f1 = _mm256_broadcast_ss(a1 + kk);
        const __m256 f2 = _mm256_broadcast_ss(a2 + kk);
        const __m256 f3 = _mm256_broadcast_ss(a3 + kk);
        size_t j = 0;
        for (; j + 8 <= n; j += 8) {
          const __m256 bv = _mm256_loadu_ps(brow + j);
          _mm256_storeu_ps(
              c0 + j, _mm256_fmadd_ps(f0, bv, _mm256_loadu_ps(c0 + j)));
          _mm256_storeu_ps(
              c1 + j, _mm256_fmadd_ps(f1, bv, _mm256_loadu_ps(c1 + j)));
          _mm256_storeu_ps(
              c2 + j, _mm256_fmadd_ps(f2, bv, _mm256_loadu_ps(c2 + j)));
          _mm256_storeu_ps(
              c3 + j, _mm256_fmadd_ps(f3, bv, _mm256_loadu_ps(c3 + j)));
        }
        for (; j < n; ++j) {
          const float bv = brow[j];
          c0[j] += a0[kk] * bv;
          c1[j] += a1[kk] * bv;
          c2[j] += a2[kk] * bv;
          c3[j] += a3[kk] * bv;
        }
      }
    }
    for (; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (size_t kk = k0; kk < k1; ++kk) {
        const float* brow = b + kk * n;
        const __m256 f = _mm256_broadcast_ss(arow + kk);
        size_t j = 0;
        for (; j + 8 <= n; j += 8) {
          _mm256_storeu_ps(
              crow + j,
              _mm256_fmadd_ps(f, _mm256_loadu_ps(brow + j),
                              _mm256_loadu_ps(crow + j)));
        }
        for (; j < n; ++j) crow[j] += arow[kk] * brow[j];
      }
    }
  }
}

void AddOuterBatchAvx2(float* __restrict acc, size_t rows, size_t cols,
                       float alpha, const float* __restrict a,
                       const float* __restrict b, size_t batch) {
  // Same shape (2-step batch unroll, zero-coefficient row skipping) as
  // the scalar backend, with the column loop widened to 8 FMA lanes.
  size_t s = 0;
  for (; s + 2 <= batch; s += 2) {
    const float* a0 = a + s * rows;
    const float* a1 = a0 + rows;
    const float* b0 = b + s * cols;
    const float* b1 = b0 + cols;
    for (size_t r = 0; r < rows; ++r) {
      const float f0 = alpha * a0[r];
      const float f1 = alpha * a1[r];
      if (f0 == 0.0f && f1 == 0.0f) continue;
      float* crow = acc + r * cols;
      const __m256 vf0 = _mm256_set1_ps(f0);
      const __m256 vf1 = _mm256_set1_ps(f1);
      size_t c = 0;
      for (; c + 8 <= cols; c += 8) {
        __m256 v = _mm256_loadu_ps(crow + c);
        v = _mm256_fmadd_ps(vf0, _mm256_loadu_ps(b0 + c), v);
        v = _mm256_fmadd_ps(vf1, _mm256_loadu_ps(b1 + c), v);
        _mm256_storeu_ps(crow + c, v);
      }
      for (; c < cols; ++c) crow[c] += f0 * b0[c] + f1 * b1[c];
    }
  }
  for (; s < batch; ++s) {
    const float* arow = a + s * rows;
    const float* brow = b + s * cols;
    for (size_t r = 0; r < rows; ++r) {
      const float f = alpha * arow[r];
      if (f == 0.0f) continue;
      float* crow = acc + r * cols;
      const __m256 vf = _mm256_set1_ps(f);
      size_t c = 0;
      for (; c + 8 <= cols; c += 8) {
        _mm256_storeu_ps(
            crow + c, _mm256_fmadd_ps(vf, _mm256_loadu_ps(brow + c),
                                      _mm256_loadu_ps(crow + c)));
      }
      for (; c < cols; ++c) crow[c] += f * brow[c];
    }
  }
}

// ---------------------------------------------------------------------------
// Element-wise kernels: separate mul/add intrinsics (no FMA), same
// per-element arithmetic order as the scalar backend — bit-identical.

void AddBiasRowsAvx2(float* __restrict m, size_t rows, size_t cols,
                     const float* __restrict bias) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(row + c, _mm256_add_ps(_mm256_loadu_ps(row + c),
                                              _mm256_loadu_ps(bias + c)));
    }
    for (; c < cols; ++c) row[c] += bias[c];
  }
}

void AddBiasReluRowsAvx2(float* __restrict m, size_t rows, size_t cols,
                         const float* __restrict bias) {
  const __m256 zero = _mm256_setzero_ps();
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 v = _mm256_add_ps(_mm256_loadu_ps(row + c),
                                     _mm256_loadu_ps(bias + c));
      // max(v, +0) returns +0 for v <= 0 (incl. -0), matching the scalar
      // `v > 0 ? v : 0`.
      _mm256_storeu_ps(row + c, _mm256_max_ps(v, zero));
    }
    for (; c < cols; ++c) {
      const float v = row[c] + bias[c];
      row[c] = v > 0.0f ? v : 0.0f;
    }
  }
}

void ReluMaskBackwardAvx2(float* __restrict delta,
                          const float* __restrict act, size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Zero delta where act <= 0 (ordered compare: an unordered act keeps
    // its delta, exactly like the scalar `if (act <= 0)`).
    const __m256 le = _mm256_cmp_ps(_mm256_loadu_ps(act + i), zero,
                                    _CMP_LE_OQ);
    _mm256_storeu_ps(delta + i,
                     _mm256_andnot_ps(le, _mm256_loadu_ps(delta + i)));
  }
  for (; i < n; ++i) {
    if (act[i] <= 0.0f) delta[i] = 0.0f;
  }
}

void SoftmaxRowsAvx2(float* m, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    // Vectorized max reduction: float max is order-independent, so this
    // reproduces the scalar backend's max_logit bit for bit.
    float max_logit = row[0];
    size_t c = 1;
    if (cols >= 9) {
      __m256 vmax = _mm256_loadu_ps(row);
      c = 8;
      for (; c + 8 <= cols; c += 8) {
        vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row + c));
      }
      alignas(32) float lanes[8];
      _mm256_store_ps(lanes, vmax);
      max_logit = lanes[0];
      for (int lane = 1; lane < 8; ++lane) {
        max_logit = std::max(max_logit, lanes[lane]);
      }
    }
    for (; c < cols; ++c) max_logit = std::max(max_logit, row[c]);
    // exp + sum stay scalar in row order: the accumulation order of
    // `total` is part of the bitwise contract with SoftmaxInPlace.
    float total = 0.0f;
    for (size_t cc = 0; cc < cols; ++cc) {
      row[cc] = std::exp(row[cc] - max_logit);
      total += row[cc];
    }
    const __m256 vtotal = _mm256_set1_ps(total);
    size_t cc = 0;
    for (; cc + 8 <= cols; cc += 8) {
      _mm256_storeu_ps(row + cc,
                       _mm256_div_ps(_mm256_loadu_ps(row + cc), vtotal));
    }
    for (; cc < cols; ++cc) row[cc] /= total;
  }
}

void ColumnSumsAvx2(const float* __restrict m, size_t rows, size_t cols,
                    float* __restrict out) {
  for (size_t c = 0; c < cols; ++c) out[c] = 0.0f;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = m + r * cols;
    size_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      // Each column still accumulates strictly in row order, so the sums
      // match the scalar backend bit for bit.
      _mm256_storeu_ps(out + c, _mm256_add_ps(_mm256_loadu_ps(out + c),
                                              _mm256_loadu_ps(row + c)));
    }
    for (; c < cols; ++c) out[c] += row[c];
  }
}

void SgdStepAvx2(float* __restrict p, const float* __restrict g, size_t n,
                 float lr, float wd) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vwd = _mm256_set1_ps(wd);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vp = _mm256_loadu_ps(p + i);
    const __m256 step = _mm256_add_ps(_mm256_loadu_ps(g + i),
                                      _mm256_mul_ps(vwd, vp));
    _mm256_storeu_ps(p + i, _mm256_sub_ps(vp, _mm256_mul_ps(vlr, step)));
  }
  for (; i < n; ++i) p[i] -= lr * (g[i] + wd * p[i]);
}

void SgdMomentumStepAvx2(float* __restrict p, float* __restrict v,
                         const float* __restrict g, size_t n, float lr,
                         float momentum, float wd) {
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vmom = _mm256_set1_ps(momentum);
  const __m256 vwd = _mm256_set1_ps(wd);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vp = _mm256_loadu_ps(p + i);
    // ((momentum * v) + g) + (wd * p): the scalar expression's rounding
    // order, term by term.
    const __m256 vv = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(vmom, _mm256_loadu_ps(v + i)),
                      _mm256_loadu_ps(g + i)),
        _mm256_mul_ps(vwd, vp));
    _mm256_storeu_ps(v + i, vv);
    _mm256_storeu_ps(p + i, _mm256_sub_ps(vp, _mm256_mul_ps(vlr, vv)));
  }
  for (; i < n; ++i) {
    v[i] = momentum * v[i] + g[i] + wd * p[i];
    p[i] -= lr * v[i];
  }
}

void AddProximalAvx2(float* __restrict g, const float* __restrict p,
                     const float* __restrict ref, size_t n, float mu) {
  const __m256 vmu = _mm256_set1_ps(mu);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(p + i),
                                      _mm256_loadu_ps(ref + i));
    _mm256_storeu_ps(g + i, _mm256_add_ps(_mm256_loadu_ps(g + i),
                                          _mm256_mul_ps(vmu, diff)));
  }
  for (; i < n; ++i) g[i] += mu * (p[i] - ref[i]);
}

const KernelTable kAvx2Table = {
    MatMulBodyAvx2,       AddOuterBatchAvx2, AddBiasRowsAvx2,
    AddBiasReluRowsAvx2,  ReluMaskBackwardAvx2, SoftmaxRowsAvx2,
    ColumnSumsAvx2,       SgdStepAvx2,       SgdMomentumStepAvx2,
    AddProximalAvx2,
};

}  // namespace

const KernelTable* Avx2KernelTable() { return &kAvx2Table; }

}  // namespace internal
}  // namespace fedshap

#else  // !(__AVX2__ && __FMA__)

namespace fedshap {
namespace internal {

const KernelTable* Avx2KernelTable() { return nullptr; }

}  // namespace internal
}  // namespace fedshap

#endif
