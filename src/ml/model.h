#ifndef FEDSHAP_ML_MODEL_H_
#define FEDSHAP_ML_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "ml/matrix.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// Interface every gradient-trainable FL model implements (linear/logistic
/// regression, MLP, CNN).
///
/// The FedAvg substrate only needs four capabilities: flat parameter access
/// (to ship models between server and clients), minibatch gradients (for
/// local SGD), prediction (for utility evaluation) and cloning (to train an
/// independent model per coalition from the same initialization).
///
/// Which gradient execution path to drive (TrainSgd steps and Loss
/// evaluation). Both paths consume inputs in the same order and average
/// the same per-batch loss, so a seeded run is deterministic under
/// either; they differ only in floating-point association (see the
/// tolerance contract in ml/matrix.h).
enum class GradientMode {
  /// Whole-minibatch execution through the blocked kernels of
  /// ml/matrix.h (Model::ComputeGradientBatched). The fast path and the
  /// default.
  kBatched,
  /// The historical one-example-at-a-time reference path
  /// (Model::ComputeGradient). Kept selectable as the ground truth the
  /// batched path is validated against.
  kPerExample,
};

/// Parameters are exposed as one flat float vector; the layout is
/// model-internal but stable for a given architecture, which is what FedAvg
/// aggregation requires.
class Model {
 public:
  virtual ~Model() = default;

  /// Deep copy, preserving current parameters.
  virtual std::unique_ptr<Model> Clone() const = 0;

  /// Architecture name for logs, e.g. "mlp(64-32-10)".
  virtual std::string Name() const = 0;

  /// Length of the flat parameter vector.
  virtual size_t NumParameters() const = 0;

  /// Copy of the flat parameter vector.
  virtual std::vector<float> GetParameters() const = 0;

  /// Replaces all parameters; `params` must have NumParameters() entries.
  virtual Status SetParameters(const std::vector<float>& params) = 0;

  /// Draws fresh initial parameters (e.g. scaled Gaussians).
  virtual void InitializeParameters(Rng& rng) = 0;

  /// Computes the average loss over the given rows of `data` and
  /// accumulates d(avg loss)/d(params) into `grad` (which the callee
  /// resizes/zeroes). Returns the average loss.
  ///
  /// This is the *reference* gradient path: one example at a time,
  /// scalar loops. It stays the ground truth that the batched path is
  /// tested against.
  virtual double ComputeGradient(const Dataset& data,
                                 const std::vector<size_t>& batch,
                                 std::vector<float>& grad) const = 0;

  /// Batched-kernel twin of ComputeGradient: same contract (average loss
  /// returned, averaged gradient in `grad`), computed by gathering the
  /// batch into a contiguous matrix and running the blocked kernels of
  /// ml/matrix.h over the whole minibatch at once. Results match
  /// ComputeGradient within the kernel tolerance contract documented in
  /// ml/matrix.h (not bitwise: batched kernels reassociate sums).
  ///
  /// The default forwards to ComputeGradient so models without a batched
  /// implementation keep working; the four trainable models override it.
  virtual double ComputeGradientBatched(const Dataset& data,
                                        const std::vector<size_t>& batch,
                                        std::vector<float>& grad) const {
    return ComputeGradient(data, batch, grad);
  }

  /// Model output for a single example: per-class scores for classifiers
  /// (argmax = prediction), a single value for regressors.
  virtual void Predict(const float* features,
                       std::vector<float>& output) const = 0;

  /// Fused multi-model scoring capability. When the model's per-example
  /// scores are an affine map logits = W*x + b — with W a NumOutputs() x
  /// num-features row-major block followed by the NumOutputs() biases,
  /// and any final activation monotone per row so argmax over the logits
  /// equals argmax over Predict()'s output — returns the W block and sets
  /// `*bias` to the bias block. Callers can then stack several models'
  /// W^T side by side and score them all with one GEMM dispatch (see
  /// FedAvgUtility::EvaluateBatchFused). Returns nullptr for models
  /// without an affine scoring head (the default); callers fall back to
  /// per-example Predict. Pointers are valid until the parameters change.
  virtual const float* AffineScorer(const float** bias) const {
    (void)bias;
    return nullptr;
  }

  /// Average loss over an entire dataset (no gradient returned). Runs in
  /// bounded-size chunks through the selected gradient path, so the
  /// kPerExample mode yields a fully reference-path value and the
  /// batched mode's scratch stays O(chunk), not O(dataset).
  virtual double Loss(const Dataset& data,
                      GradientMode mode = GradientMode::kBatched) const;

  /// Number of model outputs (classes, or 1 for regression).
  virtual int NumOutputs() const = 0;
};

/// Copies the selected rows of `data` into one contiguous row-major
/// batch x num_features() matrix (`out` is resized, 64-byte-aligned so
/// the SIMD kernel backends load it without split cache lines). The
/// gather step every batched gradient path starts with.
void GatherRows(const Dataset& data, const std::vector<size_t>& batch,
                AlignedFloats& out);

/// Numerically estimates d(loss)/d(params) by central differences; used by
/// the gradient-check tests. O(NumParameters) loss evaluations — test-sized
/// models only.
std::vector<float> NumericalGradient(Model& model, const Dataset& data,
                                     const std::vector<size_t>& batch,
                                     float epsilon = 1e-3f);

}  // namespace fedshap

#endif  // FEDSHAP_ML_MODEL_H_
