#ifndef FEDSHAP_ML_KERNEL_DISPATCH_H_
#define FEDSHAP_ML_KERNEL_DISPATCH_H_

#include <cstddef>

namespace fedshap {
namespace internal {

/// \file
/// Library-internal plumbing of the SIMD kernel dispatch (see
/// ml/kernel_backend.h for the public contract). Each backend is one
/// translation unit compiled with its own ISA flags and exports exactly
/// one KernelTable of function pointers; matrix.cc's public kernels call
/// through the active table, which kernel_backend.cc binds at startup.

/// Function-pointer table of the kernel bodies that have per-ISA
/// implementations. Entries mirror the public kernels of ml/matrix.h;
/// `mat_mul_body` is the shared accumulate-GEMM micro-kernel under
/// MatMul/MatMulAcc/MatTMat (c += a * b, a: m x k, b: k x n).
struct KernelTable {
  /// The accumulate-GEMM micro-kernel (c += a * b) under
  /// MatMul/MatMulAcc/MatTMat.
  void (*mat_mul_body)(const float* a, size_t m, size_t k, const float* b,
                       size_t n, float* c);
  /// Backend body of AddOuterBatch.
  void (*add_outer_batch)(float* acc, size_t rows, size_t cols, float alpha,
                          const float* a, const float* b, size_t batch);
  /// Backend body of AddBiasRows.
  void (*add_bias_rows)(float* m, size_t rows, size_t cols,
                        const float* bias);
  /// Backend body of AddBiasReluRows.
  void (*add_bias_relu_rows)(float* m, size_t rows, size_t cols,
                             const float* bias);
  /// Backend body of ReluMaskBackward.
  void (*relu_mask_backward)(float* delta, const float* act, size_t n);
  /// Backend body of SoftmaxRows.
  void (*softmax_rows)(float* m, size_t rows, size_t cols);
  /// Backend body of ColumnSums.
  void (*column_sums)(const float* m, size_t rows, size_t cols, float* out);
  /// Backend body of SgdStep.
  void (*sgd_step)(float* p, const float* g, size_t n, float lr, float wd);
  /// Backend body of SgdMomentumStep.
  void (*sgd_momentum_step)(float* p, float* v, const float* g, size_t n,
                            float lr, float momentum, float wd);
  /// Backend body of AddProximal.
  void (*add_proximal)(float* g, const float* p, const float* ref, size_t n,
                       float mu);
};

/// The portable scalar table (matrix.cc). Always present; also the
/// reference the vector backends are tested against.
const KernelTable& ScalarKernelTable();

/// The AVX2+FMA table (matrix_avx2.cc), or nullptr when the build did
/// not compile it. Callers must additionally check CPUID before binding.
const KernelTable* Avx2KernelTable();

/// The AVX-512F table (matrix_avx512.cc), or nullptr when not compiled.
const KernelTable* Avx512KernelTable();

/// The table the public kernels currently dispatch through. The first
/// call triggers backend auto-selection (kernel_backend.cc).
const KernelTable& ActiveKernelTable();

}  // namespace internal
}  // namespace fedshap

#endif  // FEDSHAP_ML_KERNEL_DISPATCH_H_
