#include "ml/model.h"

#include <numeric>

#include "util/logging.h"

namespace fedshap {

double Model::Loss(const Dataset& data) const {
  std::vector<size_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<float> unused_grad;
  return ComputeGradient(data, all, unused_grad);
}

std::vector<float> NumericalGradient(Model& model, const Dataset& data,
                                     const std::vector<size_t>& batch,
                                     float epsilon) {
  std::vector<float> params = model.GetParameters();
  std::vector<float> grad(params.size(), 0.0f);
  std::vector<float> scratch;
  for (size_t p = 0; p < params.size(); ++p) {
    const float saved = params[p];
    params[p] = saved + epsilon;
    FEDSHAP_CHECK_OK(model.SetParameters(params));
    double plus = model.ComputeGradient(data, batch, scratch);
    params[p] = saved - epsilon;
    FEDSHAP_CHECK_OK(model.SetParameters(params));
    double minus = model.ComputeGradient(data, batch, scratch);
    params[p] = saved;
    grad[p] = static_cast<float>((plus - minus) / (2.0 * epsilon));
  }
  FEDSHAP_CHECK_OK(model.SetParameters(params));
  return grad;
}

}  // namespace fedshap
