#include "ml/model.h"

#include <cstring>
#include <numeric>

#include "util/logging.h"

namespace fedshap {

void GatherRows(const Dataset& data, const std::vector<size_t>& batch,
                AlignedFloats& out) {
  const size_t dim = static_cast<size_t>(data.num_features());
  out.resize(batch.size() * dim);
  // Column-iterator gather: each source column is read contiguously and
  // scattered to its strided slot in the row-major batch. Pure copies,
  // so the batch is bit-identical to the former row-memcpy gather.
  for (size_t f = 0; f < dim; ++f) {
    const float* column = data.Column(static_cast<int>(f));
    float* dst = out.data() + f;
    for (size_t b = 0; b < batch.size(); ++b) {
      dst[b * dim] = column[batch[b]];
    }
  }
}

double Model::Loss(const Dataset& data, GradientMode mode) const {
  if (data.empty()) return 0.0;
  // Loss evaluation sits on the utility hot path (the kNegativeLoss
  // metric runs it once per trained coalition), so it goes through the
  // gradient paths in chunks: big enough to amortize the batched
  // kernels, small enough that per-thread scratch never scales with the
  // test-set size.
  constexpr size_t kChunk = 256;
  std::vector<size_t> rows;
  std::vector<float> unused_grad;
  double total = 0.0;
  for (size_t start = 0; start < data.size(); start += kChunk) {
    const size_t end = std::min(data.size(), start + kChunk);
    rows.resize(end - start);
    std::iota(rows.begin(), rows.end(), start);
    const double avg =
        mode == GradientMode::kBatched
            ? ComputeGradientBatched(data, rows, unused_grad)
            : ComputeGradient(data, rows, unused_grad);
    total += avg * static_cast<double>(rows.size());
  }
  return total / static_cast<double>(data.size());
}

std::vector<float> NumericalGradient(Model& model, const Dataset& data,
                                     const std::vector<size_t>& batch,
                                     float epsilon) {
  std::vector<float> params = model.GetParameters();
  std::vector<float> grad(params.size(), 0.0f);
  std::vector<float> scratch;
  for (size_t p = 0; p < params.size(); ++p) {
    const float saved = params[p];
    params[p] = saved + epsilon;
    FEDSHAP_CHECK_OK(model.SetParameters(params));
    double plus = model.ComputeGradient(data, batch, scratch);
    params[p] = saved - epsilon;
    FEDSHAP_CHECK_OK(model.SetParameters(params));
    double minus = model.ComputeGradient(data, batch, scratch);
    params[p] = saved;
    grad[p] = static_cast<float>((plus - minus) / (2.0 * epsilon));
  }
  FEDSHAP_CHECK_OK(model.SetParameters(params));
  return grad;
}

}  // namespace fedshap
