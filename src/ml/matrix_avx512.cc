// AVX-512F kernel backend (see ml/kernel_backend.h for the dispatch and
// determinism contract). Compiled with -mavx512f -ffp-contract=off and
// only ever *executed* after kernel_backend.cc's CPUID check. Structure
// mirrors matrix_avx2.cc at 16 lanes; the element-wise kernels use
// separate mul/add intrinsics so they stay bit-identical to the scalar
// backend, while the GEMM-shaped kernels use explicit FMA under the
// tolerance contract of ml/matrix.h.

#include "ml/kernel_dispatch.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace fedshap {
namespace internal {
namespace {

/// Same k-panel height as the scalar backend.
constexpr size_t kKc = 256;

/// c += a * b (a: m x k, b: k x n, row-major): the 4-row x 2-k
/// micro-tile with a 16-lane FMA j-loop.
void MatMulBodyAvx512(const float* __restrict a, size_t m, size_t k,
                      const float* __restrict b, size_t n,
                      float* __restrict c) {
  for (size_t k0 = 0; k0 < k; k0 += kKc) {
    const size_t k1 = std::min(k, k0 + kKc);
    size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + i * k;
      const float* a1 = a0 + k;
      const float* a2 = a1 + k;
      const float* a3 = a2 + k;
      float* c0 = c + i * n;
      float* c1 = c0 + n;
      float* c2 = c1 + n;
      float* c3 = c2 + n;
      size_t kk = k0;
      for (; kk + 2 <= k1; kk += 2) {
        const float* b0 = b + kk * n;
        const float* b1 = b0 + n;
        const __m512 f00 = _mm512_set1_ps(a0[kk]);
        const __m512 f01 = _mm512_set1_ps(a0[kk + 1]);
        const __m512 f10 = _mm512_set1_ps(a1[kk]);
        const __m512 f11 = _mm512_set1_ps(a1[kk + 1]);
        const __m512 f20 = _mm512_set1_ps(a2[kk]);
        const __m512 f21 = _mm512_set1_ps(a2[kk + 1]);
        const __m512 f30 = _mm512_set1_ps(a3[kk]);
        const __m512 f31 = _mm512_set1_ps(a3[kk + 1]);
        size_t j = 0;
        for (; j + 16 <= n; j += 16) {
          const __m512 v0 = _mm512_loadu_ps(b0 + j);
          const __m512 v1 = _mm512_loadu_ps(b1 + j);
          __m512 r0 = _mm512_loadu_ps(c0 + j);
          __m512 r1 = _mm512_loadu_ps(c1 + j);
          __m512 r2 = _mm512_loadu_ps(c2 + j);
          __m512 r3 = _mm512_loadu_ps(c3 + j);
          r0 = _mm512_fmadd_ps(f00, v0, _mm512_fmadd_ps(f01, v1, r0));
          r1 = _mm512_fmadd_ps(f10, v0, _mm512_fmadd_ps(f11, v1, r1));
          r2 = _mm512_fmadd_ps(f20, v0, _mm512_fmadd_ps(f21, v1, r2));
          r3 = _mm512_fmadd_ps(f30, v0, _mm512_fmadd_ps(f31, v1, r3));
          _mm512_storeu_ps(c0 + j, r0);
          _mm512_storeu_ps(c1 + j, r1);
          _mm512_storeu_ps(c2 + j, r2);
          _mm512_storeu_ps(c3 + j, r3);
        }
        for (; j < n; ++j) {
          const float v0 = b0[j];
          const float v1 = b1[j];
          c0[j] += a0[kk] * v0 + a0[kk + 1] * v1;
          c1[j] += a1[kk] * v0 + a1[kk + 1] * v1;
          c2[j] += a2[kk] * v0 + a2[kk + 1] * v1;
          c3[j] += a3[kk] * v0 + a3[kk + 1] * v1;
        }
      }
      for (; kk < k1; ++kk) {
        const float* brow = b + kk * n;
        const __m512 f0 = _mm512_set1_ps(a0[kk]);
        const __m512 f1 = _mm512_set1_ps(a1[kk]);
        const __m512 f2 = _mm512_set1_ps(a2[kk]);
        const __m512 f3 = _mm512_set1_ps(a3[kk]);
        size_t j = 0;
        for (; j + 16 <= n; j += 16) {
          const __m512 bv = _mm512_loadu_ps(brow + j);
          _mm512_storeu_ps(
              c0 + j, _mm512_fmadd_ps(f0, bv, _mm512_loadu_ps(c0 + j)));
          _mm512_storeu_ps(
              c1 + j, _mm512_fmadd_ps(f1, bv, _mm512_loadu_ps(c1 + j)));
          _mm512_storeu_ps(
              c2 + j, _mm512_fmadd_ps(f2, bv, _mm512_loadu_ps(c2 + j)));
          _mm512_storeu_ps(
              c3 + j, _mm512_fmadd_ps(f3, bv, _mm512_loadu_ps(c3 + j)));
        }
        for (; j < n; ++j) {
          const float bv = brow[j];
          c0[j] += a0[kk] * bv;
          c1[j] += a1[kk] * bv;
          c2[j] += a2[kk] * bv;
          c3[j] += a3[kk] * bv;
        }
      }
    }
    for (; i < m; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (size_t kk = k0; kk < k1; ++kk) {
        const float* brow = b + kk * n;
        const __m512 f = _mm512_set1_ps(arow[kk]);
        size_t j = 0;
        for (; j + 16 <= n; j += 16) {
          _mm512_storeu_ps(
              crow + j,
              _mm512_fmadd_ps(f, _mm512_loadu_ps(brow + j),
                              _mm512_loadu_ps(crow + j)));
        }
        for (; j < n; ++j) crow[j] += arow[kk] * brow[j];
      }
    }
  }
}

void AddOuterBatchAvx512(float* __restrict acc, size_t rows, size_t cols,
                         float alpha, const float* __restrict a,
                         const float* __restrict b, size_t batch) {
  size_t s = 0;
  for (; s + 2 <= batch; s += 2) {
    const float* a0 = a + s * rows;
    const float* a1 = a0 + rows;
    const float* b0 = b + s * cols;
    const float* b1 = b0 + cols;
    for (size_t r = 0; r < rows; ++r) {
      const float f0 = alpha * a0[r];
      const float f1 = alpha * a1[r];
      if (f0 == 0.0f && f1 == 0.0f) continue;
      float* crow = acc + r * cols;
      const __m512 vf0 = _mm512_set1_ps(f0);
      const __m512 vf1 = _mm512_set1_ps(f1);
      size_t c = 0;
      for (; c + 16 <= cols; c += 16) {
        __m512 v = _mm512_loadu_ps(crow + c);
        v = _mm512_fmadd_ps(vf0, _mm512_loadu_ps(b0 + c), v);
        v = _mm512_fmadd_ps(vf1, _mm512_loadu_ps(b1 + c), v);
        _mm512_storeu_ps(crow + c, v);
      }
      for (; c < cols; ++c) crow[c] += f0 * b0[c] + f1 * b1[c];
    }
  }
  for (; s < batch; ++s) {
    const float* arow = a + s * rows;
    const float* brow = b + s * cols;
    for (size_t r = 0; r < rows; ++r) {
      const float f = alpha * arow[r];
      if (f == 0.0f) continue;
      float* crow = acc + r * cols;
      const __m512 vf = _mm512_set1_ps(f);
      size_t c = 0;
      for (; c + 16 <= cols; c += 16) {
        _mm512_storeu_ps(
            crow + c, _mm512_fmadd_ps(vf, _mm512_loadu_ps(brow + c),
                                      _mm512_loadu_ps(crow + c)));
      }
      for (; c < cols; ++c) crow[c] += f * brow[c];
    }
  }
}

// ---------------------------------------------------------------------------
// Element-wise kernels: separate mul/add, scalar arithmetic order —
// bit-identical to the scalar backend.

void AddBiasRowsAvx512(float* __restrict m, size_t rows, size_t cols,
                       const float* __restrict bias) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      _mm512_storeu_ps(row + c, _mm512_add_ps(_mm512_loadu_ps(row + c),
                                              _mm512_loadu_ps(bias + c)));
    }
    for (; c < cols; ++c) row[c] += bias[c];
  }
}

void AddBiasReluRowsAvx512(float* __restrict m, size_t rows, size_t cols,
                           const float* __restrict bias) {
  const __m512 zero = _mm512_setzero_ps();
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      const __m512 v = _mm512_add_ps(_mm512_loadu_ps(row + c),
                                     _mm512_loadu_ps(bias + c));
      _mm512_storeu_ps(row + c, _mm512_max_ps(v, zero));
    }
    for (; c < cols; ++c) {
      const float v = row[c] + bias[c];
      row[c] = v > 0.0f ? v : 0.0f;
    }
  }
}

void ReluMaskBackwardAvx512(float* __restrict delta,
                            const float* __restrict act, size_t n) {
  const __m512 zero = _mm512_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // Zero delta where act <= 0; an unordered act keeps its delta, like
    // the scalar `if (act <= 0)`.
    const __mmask16 le = _mm512_cmp_ps_mask(_mm512_loadu_ps(act + i), zero,
                                            _CMP_LE_OQ);
    _mm512_storeu_ps(delta + i,
                     _mm512_mask_mov_ps(_mm512_loadu_ps(delta + i), le,
                                        zero));
  }
  for (; i < n; ++i) {
    if (act[i] <= 0.0f) delta[i] = 0.0f;
  }
}

void SoftmaxRowsAvx512(float* m, size_t rows, size_t cols) {
  for (size_t r = 0; r < rows; ++r) {
    float* row = m + r * cols;
    float max_logit = row[0];
    size_t c = 1;
    if (cols >= 17) {
      __m512 vmax = _mm512_loadu_ps(row);
      c = 16;
      for (; c + 16 <= cols; c += 16) {
        vmax = _mm512_max_ps(vmax, _mm512_loadu_ps(row + c));
      }
      // Max is order-independent, so the reduced value matches the
      // scalar backend bit for bit.
      max_logit = _mm512_reduce_max_ps(vmax);
    }
    for (; c < cols; ++c) max_logit = std::max(max_logit, row[c]);
    float total = 0.0f;
    for (size_t cc = 0; cc < cols; ++cc) {
      row[cc] = std::exp(row[cc] - max_logit);
      total += row[cc];
    }
    const __m512 vtotal = _mm512_set1_ps(total);
    size_t cc = 0;
    for (; cc + 16 <= cols; cc += 16) {
      _mm512_storeu_ps(row + cc,
                       _mm512_div_ps(_mm512_loadu_ps(row + cc), vtotal));
    }
    for (; cc < cols; ++cc) row[cc] /= total;
  }
}

void ColumnSumsAvx512(const float* __restrict m, size_t rows, size_t cols,
                      float* __restrict out) {
  for (size_t c = 0; c < cols; ++c) out[c] = 0.0f;
  for (size_t r = 0; r < rows; ++r) {
    const float* row = m + r * cols;
    size_t c = 0;
    for (; c + 16 <= cols; c += 16) {
      _mm512_storeu_ps(out + c, _mm512_add_ps(_mm512_loadu_ps(out + c),
                                              _mm512_loadu_ps(row + c)));
    }
    for (; c < cols; ++c) out[c] += row[c];
  }
}

void SgdStepAvx512(float* __restrict p, const float* __restrict g, size_t n,
                   float lr, float wd) {
  const __m512 vlr = _mm512_set1_ps(lr);
  const __m512 vwd = _mm512_set1_ps(wd);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 vp = _mm512_loadu_ps(p + i);
    const __m512 step = _mm512_add_ps(_mm512_loadu_ps(g + i),
                                      _mm512_mul_ps(vwd, vp));
    _mm512_storeu_ps(p + i, _mm512_sub_ps(vp, _mm512_mul_ps(vlr, step)));
  }
  for (; i < n; ++i) p[i] -= lr * (g[i] + wd * p[i]);
}

void SgdMomentumStepAvx512(float* __restrict p, float* __restrict v,
                           const float* __restrict g, size_t n, float lr,
                           float momentum, float wd) {
  const __m512 vlr = _mm512_set1_ps(lr);
  const __m512 vmom = _mm512_set1_ps(momentum);
  const __m512 vwd = _mm512_set1_ps(wd);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 vp = _mm512_loadu_ps(p + i);
    const __m512 vv = _mm512_add_ps(
        _mm512_add_ps(_mm512_mul_ps(vmom, _mm512_loadu_ps(v + i)),
                      _mm512_loadu_ps(g + i)),
        _mm512_mul_ps(vwd, vp));
    _mm512_storeu_ps(v + i, vv);
    _mm512_storeu_ps(p + i, _mm512_sub_ps(vp, _mm512_mul_ps(vlr, vv)));
  }
  for (; i < n; ++i) {
    v[i] = momentum * v[i] + g[i] + wd * p[i];
    p[i] -= lr * v[i];
  }
}

void AddProximalAvx512(float* __restrict g, const float* __restrict p,
                       const float* __restrict ref, size_t n, float mu) {
  const __m512 vmu = _mm512_set1_ps(mu);
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 diff = _mm512_sub_ps(_mm512_loadu_ps(p + i),
                                      _mm512_loadu_ps(ref + i));
    _mm512_storeu_ps(g + i, _mm512_add_ps(_mm512_loadu_ps(g + i),
                                          _mm512_mul_ps(vmu, diff)));
  }
  for (; i < n; ++i) g[i] += mu * (p[i] - ref[i]);
}

const KernelTable kAvx512Table = {
    MatMulBodyAvx512,      AddOuterBatchAvx512, AddBiasRowsAvx512,
    AddBiasReluRowsAvx512, ReluMaskBackwardAvx512, SoftmaxRowsAvx512,
    ColumnSumsAvx512,      SgdStepAvx512,       SgdMomentumStepAvx512,
    AddProximalAvx512,
};

}  // namespace

const KernelTable* Avx512KernelTable() { return &kAvx512Table; }

}  // namespace internal
}  // namespace fedshap

#else  // !__AVX512F__

namespace fedshap {
namespace internal {

const KernelTable* Avx512KernelTable() { return nullptr; }

}  // namespace internal
}  // namespace fedshap

#endif
