#include "ml/sgd.h"

#include <numeric>

#include "util/logging.h"

namespace fedshap {

Result<double> TrainSgd(Model& model, const Dataset& data,
                        const SgdConfig& config, Rng& rng) {
  if (config.epochs < 0) {
    return Status::InvalidArgument("epochs must be >= 0");
  }
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (config.proximal_mu < 0.0) {
    return Status::InvalidArgument("proximal_mu must be >= 0");
  }
  if (data.empty() || config.epochs == 0) return 0.0;

  std::vector<float> params = model.GetParameters();
  std::vector<float> velocity;
  if (config.momentum > 0.0) velocity.assign(params.size(), 0.0f);
  // FedProx anchor: the parameters this local run started from.
  std::vector<float> reference;
  if (config.proximal_mu > 0.0) reference = params;

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> batch;
  std::vector<float> grad;

  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      batch.assign(order.begin() + start, order.begin() + end);
      epoch_loss += model.ComputeGradient(data, batch, grad);
      ++batches;
      if (config.proximal_mu > 0.0) {
        const float mu = static_cast<float>(config.proximal_mu);
        for (size_t p = 0; p < params.size(); ++p) {
          grad[p] += mu * (params[p] - reference[p]);
        }
      }
      const float lr = static_cast<float>(config.learning_rate);
      const float wd = static_cast<float>(config.weight_decay);
      if (config.momentum > 0.0) {
        const float mu = static_cast<float>(config.momentum);
        for (size_t p = 0; p < params.size(); ++p) {
          velocity[p] = mu * velocity[p] + grad[p] + wd * params[p];
          params[p] -= lr * velocity[p];
        }
      } else {
        for (size_t p = 0; p < params.size(); ++p) {
          params[p] -= lr * (grad[p] + wd * params[p]);
        }
      }
      FEDSHAP_RETURN_NOT_OK(model.SetParameters(params));
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace fedshap
