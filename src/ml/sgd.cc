#include "ml/sgd.h"

#include <numeric>

#include "ml/matrix.h"
#include "util/logging.h"

namespace fedshap {

Result<double> TrainSgd(Model& model, const Dataset& data,
                        const SgdConfig& config, Rng& rng) {
  if (config.epochs < 0) {
    return Status::InvalidArgument("epochs must be >= 0");
  }
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }
  if (config.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning_rate must be > 0");
  }
  if (config.proximal_mu < 0.0) {
    return Status::InvalidArgument("proximal_mu must be >= 0");
  }
  if (data.empty() || config.epochs == 0) return 0.0;

  std::vector<float> params = model.GetParameters();
  std::vector<float> velocity;
  if (config.momentum > 0.0) velocity.assign(params.size(), 0.0f);
  // FedProx anchor: the parameters this local run started from.
  std::vector<float> reference;
  if (config.proximal_mu > 0.0) reference = params;

  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<size_t> batch;
  std::vector<float> grad;

  const bool batched = config.gradient_mode == GradientMode::kBatched;
  double last_epoch_loss = 0.0;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < order.size();
         start += config.batch_size) {
      size_t end = std::min(order.size(),
                            start + static_cast<size_t>(config.batch_size));
      batch.assign(order.begin() + start, order.begin() + end);
      epoch_loss += batched
                        ? model.ComputeGradientBatched(data, batch, grad)
                        : model.ComputeGradient(data, batch, grad);
      ++batches;
      if (config.proximal_mu > 0.0) {
        AddProximal(grad.data(), params.data(), reference.data(),
                    params.size(), static_cast<float>(config.proximal_mu));
      }
      const float lr = static_cast<float>(config.learning_rate);
      const float wd = static_cast<float>(config.weight_decay);
      if (config.momentum > 0.0) {
        SgdMomentumStep(params.data(), velocity.data(), grad.data(),
                        params.size(), lr,
                        static_cast<float>(config.momentum), wd);
      } else {
        SgdStep(params.data(), grad.data(), params.size(), lr, wd);
      }
      FEDSHAP_RETURN_NOT_OK(model.SetParameters(params));
    }
    last_epoch_loss = batches > 0 ? epoch_loss / batches : 0.0;
  }
  return last_epoch_loss;
}

}  // namespace fedshap
