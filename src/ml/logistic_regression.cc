#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "ml/matrix.h"
#include "util/logging.h"

namespace fedshap {

void SoftmaxInPlace(std::vector<float>& logits) {
  const float max_logit = *std::max_element(logits.begin(), logits.end());
  float total = 0.0f;
  for (float& v : logits) {
    v = std::exp(v - max_logit);
    total += v;
  }
  for (float& v : logits) v /= total;
}

LogisticRegression::LogisticRegression(int dim, int num_classes)
    : dim_(dim),
      num_classes_(num_classes),
      params_(static_cast<size_t>(num_classes) * dim + num_classes, 0.0f) {
  FEDSHAP_CHECK(dim >= 1);
  FEDSHAP_CHECK(num_classes >= 2);
}

std::unique_ptr<Model> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(*this);
}

std::string LogisticRegression::Name() const {
  return "logreg(" + std::to_string(dim_) + "->" +
         std::to_string(num_classes_) + ")";
}

size_t LogisticRegression::NumParameters() const { return params_.size(); }

std::vector<float> LogisticRegression::GetParameters() const {
  return params_;
}

Status LogisticRegression::SetParameters(const std::vector<float>& params) {
  if (params.size() != params_.size()) {
    return Status::InvalidArgument("parameter size mismatch");
  }
  params_ = params;
  return Status::OK();
}

void LogisticRegression::InitializeParameters(Rng& rng) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  const size_t weight_count = static_cast<size_t>(num_classes_) * dim_;
  for (size_t i = 0; i < weight_count; ++i) {
    params_[i] = static_cast<float>(rng.Gaussian(0.0, scale));
  }
  std::fill(params_.begin() + weight_count, params_.end(), 0.0f);
}

void LogisticRegression::Forward(const float* x,
                                 std::vector<float>& probs) const {
  probs.assign(num_classes_, 0.0f);
  const size_t weight_count = static_cast<size_t>(num_classes_) * dim_;
  for (int c = 0; c < num_classes_; ++c) {
    const float* w = params_.data() + static_cast<size_t>(c) * dim_;
    float acc = params_[weight_count + c];
    for (int d = 0; d < dim_; ++d) acc += w[d] * x[d];
    probs[c] = acc;
  }
  SoftmaxInPlace(probs);
}

double LogisticRegression::ComputeGradient(const Dataset& data,
                                           const std::vector<size_t>& batch,
                                           std::vector<float>& grad) const {
  grad.assign(params_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  const size_t weight_count = static_cast<size_t>(num_classes_) * dim_;
  std::vector<float> probs;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  double total_loss = 0.0;
  for (size_t idx : batch) {
    data.CopyRow(idx, row.data());
    const float* x = row.data();
    const int label = data.ClassLabel(idx);
    Forward(x, probs);
    total_loss += -std::log(std::max(probs[label], 1e-12f));
    for (int c = 0; c < num_classes_; ++c) {
      // d(CE)/d(logit_c) = p_c - 1[c == label]
      const float delta = probs[c] - (c == label ? 1.0f : 0.0f);
      float* gw = grad.data() + static_cast<size_t>(c) * dim_;
      for (int d = 0; d < dim_; ++d) gw[d] += delta * x[d];
      grad[weight_count + c] += delta;
    }
  }
  const float inv = 1.0f / static_cast<float>(batch.size());
  for (float& g : grad) g *= inv;
  return total_loss / static_cast<double>(batch.size());
}

double LogisticRegression::ComputeGradientBatched(
    const Dataset& data, const std::vector<size_t>& batch,
    std::vector<float>& grad) const {
  grad.assign(params_.size(), 0.0f);
  if (batch.empty()) return 0.0;
  const size_t bsz = batch.size();
  const size_t dim = static_cast<size_t>(dim_);
  const size_t classes = static_cast<size_t>(num_classes_);
  const size_t weight_count = classes * dim;
  const float inv = 1.0f / static_cast<float>(bsz);

  static thread_local AlignedFloats xb, wt, probs;
  GatherRows(data, batch, xb);

  // Logits = X * W^T + b, computed as X * transpose(W) so the product
  // runs in saxpy (vectorizable) form, then softmax over each row.
  wt.resize(dim * classes);
  Transpose(params_.data(), classes, dim, wt.data());
  probs.resize(bsz * classes);
  MatMul(xb.data(), bsz, dim, wt.data(), classes, probs.data());
  AddBiasRows(probs.data(), bsz, classes, params_.data() + weight_count);
  SoftmaxRows(probs.data(), bsz, classes);

  // Loss, then turn probs into the logit deltas in place.
  double total_loss = 0.0;
  for (size_t i = 0; i < bsz; ++i) {
    const int label = data.ClassLabel(batch[i]);
    float* row = probs.data() + i * classes;
    total_loss += -std::log(std::max(row[label], 1e-12f));
    row[label] -= 1.0f;
  }

  // grad_W = delta^T * X / bsz (the averaging rides along as alpha),
  // grad_b = column sums of delta, averaged after.
  AddOuterBatch(grad.data(), classes, dim, inv, probs.data(), xb.data(),
                bsz);
  ColumnSums(probs.data(), bsz, classes, grad.data() + weight_count);
  for (size_t c = 0; c < classes; ++c) grad[weight_count + c] *= inv;
  return total_loss / static_cast<double>(bsz);
}

void LogisticRegression::Predict(const float* features,
                                 std::vector<float>& output) const {
  Forward(features, output);
}

}  // namespace fedshap
