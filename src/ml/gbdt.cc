#include "ml/gbdt.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.h"

namespace fedshap {

namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

/// Structure gain of a split under XGBoost's second-order objective.
double SplitGain(double gl, double hl, double gr, double hr, double lambda) {
  auto score = [lambda](double g, double h) {
    return g * g / (h + lambda);
  };
  return 0.5 * (score(gl, hl) + score(gr, hr) - score(gl + gr, hl + hr));
}

}  // namespace

double Gbdt::Tree::Predict(const float* features) const {
  if (nodes.empty()) return 0.0;
  int idx = 0;
  while (!nodes[idx].IsLeaf()) {
    const Node& node = nodes[idx];
    idx = features[node.feature] <= node.threshold ? node.left : node.right;
  }
  return nodes[idx].value;
}

double Gbdt::Tree::Predict(const DatasetView& data, size_t i) const {
  if (nodes.empty()) return 0.0;
  int idx = 0;
  while (!nodes[idx].IsLeaf()) {
    const Node& node = nodes[idx];
    idx = data.Value(i, node.feature) <= node.threshold ? node.left
                                                        : node.right;
  }
  return nodes[idx].value;
}

int Gbdt::BuildNode(const DatasetView& data,
                    const std::vector<double>& grad,
                    const std::vector<double>& hess, std::vector<int>& rows,
                    int depth, Tree& tree) {
  double g_total = 0.0, h_total = 0.0;
  for (int row : rows) {
    g_total += grad[row];
    h_total += hess[row];
  }

  const double leaf_value =
      -g_total / (h_total + config_.reg_lambda) * config_.learning_rate;

  auto make_leaf = [&]() {
    Node leaf;
    leaf.value = static_cast<float>(leaf_value);
    tree.nodes.push_back(leaf);
    return static_cast<int>(tree.nodes.size()) - 1;
  };

  if (depth >= config_.max_depth ||
      static_cast<int>(rows.size()) < 2 * config_.min_samples_leaf) {
    return make_leaf();
  }

  // Exact greedy split search over all features.
  int best_feature = -1;
  float best_threshold = 0.0f;
  double best_gain = 1e-9;  // require strictly positive gain
  std::vector<std::pair<float, int>> sorted;
  sorted.reserve(rows.size());
  for (int feature = 0; feature < data.num_features(); ++feature) {
    sorted.clear();
    // Column access: the candidate values of one feature come straight
    // from the member datasets' contiguous column buffers.
    for (int row : rows) sorted.emplace_back(data.Value(row, feature), row);
    std::sort(sorted.begin(), sorted.end());
    double gl = 0.0, hl = 0.0;
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      gl += grad[sorted[i].second];
      hl += hess[sorted[i].second];
      // Can only split between distinct feature values.
      if (sorted[i].first == sorted[i + 1].first) continue;
      const int left_count = static_cast<int>(i) + 1;
      const int right_count = static_cast<int>(sorted.size()) - left_count;
      if (left_count < config_.min_samples_leaf ||
          right_count < config_.min_samples_leaf) {
        continue;
      }
      const double gr = g_total - gl;
      const double hr = h_total - hl;
      if (hl < config_.min_child_weight || hr < config_.min_child_weight) {
        continue;
      }
      const double gain = SplitGain(gl, hl, gr, hr, config_.reg_lambda);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        // Midpoint threshold is robust to unseen values near the boundary.
        best_threshold =
            0.5f * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  std::vector<int> left_rows, right_rows;
  for (int row : rows) {
    if (data.Value(row, best_feature) <= best_threshold) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  // Free the parent's row list before recursing.
  rows.clear();
  rows.shrink_to_fit();

  Node internal;
  internal.feature = best_feature;
  internal.threshold = best_threshold;
  tree.nodes.push_back(internal);
  const int node_idx = static_cast<int>(tree.nodes.size()) - 1;
  const int left_idx =
      BuildNode(data, grad, hess, left_rows, depth + 1, tree);
  const int right_idx =
      BuildNode(data, grad, hess, right_rows, depth + 1, tree);
  tree.nodes[node_idx].left = left_idx;
  tree.nodes[node_idx].right = right_idx;
  return node_idx;
}

Status Gbdt::Fit(const Dataset& data) {
  if (data.num_classes() != 2) {
    return Status::InvalidArgument(
        "Gbdt supports binary classification (num_classes == 2)");
  }
  return Fit(DatasetView::Of(data));
}

Status Gbdt::Fit(const DatasetView& data) {
  if (data.empty()) {
    // No rows: an empty ensemble (matches training on an empty
    // coalition). An empty view carries no schema to validate.
    trees_.clear();
    return Status::OK();
  }
  if (data.num_classes() != 2) {
    return Status::InvalidArgument(
        "Gbdt supports binary classification (num_classes == 2)");
  }
  trees_.clear();
  trees_.reserve(config_.num_trees);

  std::vector<double> logits(data.size(), 0.0);
  std::vector<double> grad(data.size()), hess(data.size());
  for (int t = 0; t < config_.num_trees; ++t) {
    for (size_t i = 0; i < data.size(); ++i) {
      const double p = Sigmoid(logits[i]);
      const double y = static_cast<double>(data.ClassLabel(i));
      grad[i] = p - y;
      hess[i] = std::max(p * (1.0 - p), 1e-12);
    }
    Tree tree;
    std::vector<int> rows(data.size());
    std::iota(rows.begin(), rows.end(), 0);
    BuildNode(data, grad, hess, rows, /*depth=*/0, tree);
    for (size_t i = 0; i < data.size(); ++i) {
      logits[i] += tree.Predict(data, i);
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double Gbdt::PredictLogit(const float* features) const {
  double total = 0.0;
  for (const Tree& tree : trees_) total += tree.Predict(features);
  return total;
}

double Gbdt::PredictProbability(const float* features) const {
  return Sigmoid(PredictLogit(features));
}

double Gbdt::EvaluateAccuracy(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::vector<float> row(static_cast<size_t>(data.num_features()));
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    data.CopyRow(i, row.data());
    const int prediction = PredictProbability(row.data()) >= 0.5 ? 1 : 0;
    if (prediction == data.ClassLabel(i)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace fedshap
