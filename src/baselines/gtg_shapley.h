#ifndef FEDSHAP_BASELINES_GTG_SHAPLEY_H_
#define FEDSHAP_BASELINES_GTG_SHAPLEY_H_

#include "core/valuation_result.h"
#include "fl/reconstruction.h"
#include "util/status.h"

namespace fedshap {

/// Configuration of GTG-Shapley.
struct GtgShapleyConfig {
  /// Maximum sampled permutations per round.
  int max_permutations_per_round = 16;
  /// Between-round truncation: a round whose global model improved utility
  /// by less than this is skipped entirely (its per-round SV is ~0).
  double round_truncation = 0.005;
  /// Within-permutation truncation, relative to the round's full-coalition
  /// reconstructed utility.
  double truncation_tolerance = 0.005;
  /// Early convergence: stop a round's sampling when the max change of the
  /// running averages falls below this for two consecutive permutations.
  double convergence_tolerance = 1e-4;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// GTG-Shapley (Liu et al., 2022): Guided Truncation Gradient Shapley.
///
/// Per FedAvg round, runs truncated Monte-Carlo permutation sampling over
/// models *reconstructed* from that round's recorded client deltas, with
/// (i) between-round truncation (skip rounds whose global utility barely
/// moved) and (ii) within-permutation truncation. The per-round Shapley
/// estimates are summed across rounds.
Result<ValuationResult> GtgShapley(ReconstructionContext& context,
                                   const GtgShapleyConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_GTG_SHAPLEY_H_
