#ifndef FEDSHAP_BASELINES_OR_BASELINE_H_
#define FEDSHAP_BASELINES_OR_BASELINE_H_

#include "core/valuation_result.h"
#include "fl/reconstruction.h"
#include "util/status.h"

namespace fedshap {

/// OR (Song et al., 2019): gradient-reconstruction data valuation.
///
/// Trains the grand coalition once, then *reconstructs* the model of every
/// coalition S by re-aggregating the recorded per-round client deltas and
/// computes the exact MC-SV over the reconstructed utilities. No extra FL
/// training, but no accuracy guarantee either — the reconstructed M_S is
/// generally not the model S would actually have trained, which is exactly
/// the error source the paper observes. Requires n <= 20.
Result<ValuationResult> OrShapley(ReconstructionContext& context);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_OR_BASELINE_H_
