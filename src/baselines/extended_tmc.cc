#include "baselines/extended_tmc.h"

#include <cmath>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> ExtendedTmcShapley(UtilitySession& session,
                                           const ExtendedTmcConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.permutations < 1) {
    return Status::InvalidArgument("permutations must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  FEDSHAP_ASSIGN_OR_RETURN(const double u_empty,
                           session.Evaluate(Coalition()));
  FEDSHAP_ASSIGN_OR_RETURN(const double u_full,
                           session.Evaluate(Coalition::Full(n)));

  std::vector<double> values(n, 0.0);
  for (int t = 0; t < config.permutations; ++t) {
    const std::vector<int> perm = rng.Permutation(n);
    Coalition prefix;
    double prev = u_empty;
    bool truncated = false;
    for (int pos = 0; pos < n; ++pos) {
      const int client = perm[pos];
      if (!truncated &&
          std::fabs(u_full - prev) < config.truncation_tolerance) {
        truncated = true;
      }
      if (truncated) {
        // Marginal contributions past the truncation point are ~0; skip
        // the training entirely (that is TMC's whole point).
        continue;
      }
      prefix.Add(client);
      FEDSHAP_ASSIGN_OR_RETURN(const double current,
                               session.Evaluate(prefix));
      values[client] += current - prev;
      prev = current;
    }
  }
  for (double& v : values) v /= config.permutations;

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

}  // namespace fedshap
