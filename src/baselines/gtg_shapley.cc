#include "baselines/gtg_shapley.h"

#include <cmath>

#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> GtgShapley(ReconstructionContext& context,
                                   const GtgShapleyConfig& config) {
  const int n = context.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.max_permutations_per_round < 1) {
    return Status::InvalidArgument("max_permutations_per_round must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  std::vector<double> values(n, 0.0);
  size_t evaluations = 0;

  for (int round = 0; round < context.num_rounds(); ++round) {
    // Between-round truncation: compare the utility of the actual global
    // model before and after this round.
    FEDSHAP_ASSIGN_OR_RETURN(const double u_before,
                             context.EvaluateGlobalAfterRound(round));
    FEDSHAP_ASSIGN_OR_RETURN(const double u_after,
                             context.EvaluateGlobalAfterRound(round + 1));
    evaluations += 2;
    if (std::fabs(u_after - u_before) < config.round_truncation) continue;

    FEDSHAP_ASSIGN_OR_RETURN(
        const double u_round_full,
        context.EvaluateRoundSubset(round, Coalition::Full(n)));
    ++evaluations;

    std::vector<double> round_sum(n, 0.0);
    int sampled = 0;
    int converged_streak = 0;
    std::vector<double> previous_avg(n, 0.0);
    for (int t = 0; t < config.max_permutations_per_round; ++t) {
      const std::vector<int> perm = rng.Permutation(n);
      Coalition prefix;
      double prev = u_before;
      bool truncated = false;
      for (int pos = 0; pos < n; ++pos) {
        const int client = perm[pos];
        if (!truncated &&
            std::fabs(u_round_full - prev) < config.truncation_tolerance) {
          truncated = true;
        }
        if (truncated) continue;
        prefix.Add(client);
        FEDSHAP_ASSIGN_OR_RETURN(
            const double current,
            context.EvaluateRoundSubset(round, prefix));
        ++evaluations;
        round_sum[client] += current - prev;
        prev = current;
      }
      ++sampled;
      // Convergence of the running averages (GTG's early stop).
      double max_change = 0.0;
      for (int i = 0; i < n; ++i) {
        const double avg = round_sum[i] / sampled;
        max_change = std::max(max_change, std::fabs(avg - previous_avg[i]));
        previous_avg[i] = avg;
      }
      if (sampled >= 2 && max_change < config.convergence_tolerance) {
        if (++converged_streak >= 2) break;
      } else {
        converged_streak = 0;
      }
    }
    for (int i = 0; i < n; ++i) values[i] += round_sum[i] / sampled;
  }

  ValuationResult result;
  result.values = std::move(values);
  result.num_evaluations = evaluations;
  result.num_trainings = 1;
  result.wall_seconds = timer.ElapsedSeconds();
  result.charged_seconds =
      context.grand_training_seconds() + result.wall_seconds;
  return result;
}

}  // namespace fedshap
