#ifndef FEDSHAP_BASELINES_LAMBDA_MR_H_
#define FEDSHAP_BASELINES_LAMBDA_MR_H_

#include "core/valuation_result.h"
#include "fl/reconstruction.h"
#include "util/status.h"

namespace fedshap {

/// Configuration of lambda-MR.
struct LambdaMrConfig {
  /// Per-round decay: round r (0-based) contributes with weight lambda^r.
  /// 1.0 reproduces plain multi-round aggregation.
  double lambda = 1.0;
};

/// lambda-MR (Wei et al., 2020): multi-round gradient-reconstruction SV.
///
/// For every round r, computes an exact MC-SV over models reconstructed
/// from that round's recorded deltas alone (U of "global_{r-1} + aggregated
/// deltas of S"), then aggregates the per-round values with lambda decay:
///
///   phi_i = sum_r lambda^r * phi_i^{(r)}
///
/// Evaluates O(R * 2^n) reconstructed models — the exponential growth in n
/// the paper calls out as limiting its scalability. Requires n <= 20.
Result<ValuationResult> LambdaMrShapley(ReconstructionContext& context,
                                        const LambdaMrConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_LAMBDA_MR_H_
