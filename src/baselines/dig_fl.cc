#include "baselines/dig_fl.h"

#include <cmath>

#include "util/stopwatch.h"

namespace fedshap {

namespace {

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += static_cast<double>(a[i]) * b[i];
  }
  return total;
}

double Norm(const std::vector<float>& a) { return std::sqrt(Dot(a, a)); }

}  // namespace

Result<ValuationResult> DigFlShapley(ReconstructionContext& context) {
  const int n = context.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  Stopwatch timer;

  const TrainingLog& log = context.log();
  std::vector<double> values(n, 0.0);
  size_t evaluations = 0;

  for (int round = 0; round < context.num_rounds(); ++round) {
    FEDSHAP_ASSIGN_OR_RETURN(const double u_before,
                             context.EvaluateGlobalAfterRound(round));
    FEDSHAP_ASSIGN_OR_RETURN(const double u_after,
                             context.EvaluateGlobalAfterRound(round + 1));
    evaluations += 2;
    const double gain = std::max(0.0, u_after - u_before);
    if (gain == 0.0) continue;

    const RoundRecord& record = log.rounds[round];
    if (record.client_deltas.empty()) continue;

    // Aggregated (global) update of this round.
    const size_t dim = record.client_deltas[0].size();
    std::vector<float> global_delta(dim, 0.0f);
    double total_weight = 0.0;
    for (double w : record.client_weights) total_weight += w;
    if (total_weight <= 0.0) continue;
    for (size_t slot = 0; slot < record.client_deltas.size(); ++slot) {
      const float w = static_cast<float>(record.client_weights[slot] /
                                         total_weight);
      const std::vector<float>& delta = record.client_deltas[slot];
      for (size_t p = 0; p < dim; ++p) global_delta[p] += w * delta[p];
    }
    const double global_norm = Norm(global_delta);
    if (global_norm == 0.0) continue;

    // Positive-alignment weights, size-weighted, normalized to sum 1.
    std::vector<double> alignment(record.client_deltas.size(), 0.0);
    double alignment_total = 0.0;
    for (size_t slot = 0; slot < record.client_deltas.size(); ++slot) {
      const std::vector<float>& delta = record.client_deltas[slot];
      const double norm = Norm(delta);
      double cosine = 0.0;
      if (norm > 0.0) {
        cosine = Dot(delta, global_delta) / (norm * global_norm);
      }
      alignment[slot] = record.client_weights[slot] * std::max(0.0, cosine);
      alignment_total += alignment[slot];
    }
    if (alignment_total <= 0.0) continue;
    for (size_t slot = 0; slot < alignment.size(); ++slot) {
      values[record.client_ids[slot]] +=
          gain * alignment[slot] / alignment_total;
    }
  }

  ValuationResult result;
  result.values = std::move(values);
  result.num_evaluations = evaluations;
  result.num_trainings = 1;
  result.wall_seconds = timer.ElapsedSeconds();
  result.charged_seconds =
      context.grand_training_seconds() + result.wall_seconds;
  return result;
}

}  // namespace fedshap
