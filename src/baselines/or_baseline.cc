#include "baselines/or_baseline.h"

#include <bit>

#include "util/combinatorics.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> OrShapley(ReconstructionContext& context) {
  const int n = context.num_clients();
  if (n < 1 || n > 20) {
    return Status::InvalidArgument("OR requires 1 <= n <= 20");
  }
  Stopwatch timer;

  const uint64_t total = 1ULL << n;
  std::vector<double> u(total, 0.0);
  for (uint64_t mask = 0; mask < total; ++mask) {
    Coalition c;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    FEDSHAP_ASSIGN_OR_RETURN(u[mask], context.EvaluateReconstructed(c));
  }

  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const uint64_t bit = 1ULL << i;
    for (uint64_t mask = 0; mask < total; ++mask) {
      if (mask & bit) continue;
      const int s = std::popcount(mask);
      const double weight = 1.0 / (n * BinomialDouble(n - 1, s));
      values[i] += (u[mask | bit] - u[mask]) * weight;
    }
  }

  ValuationResult result;
  result.values = std::move(values);
  result.num_evaluations = total;
  result.num_trainings = 1;  // the single grand-coalition training
  result.wall_seconds = timer.ElapsedSeconds();
  result.charged_seconds =
      context.grand_training_seconds() + result.wall_seconds;
  return result;
}

}  // namespace fedshap
