#include "baselines/lambda_mr.h"

#include <bit>
#include <cmath>

#include "util/combinatorics.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> LambdaMrShapley(ReconstructionContext& context,
                                        const LambdaMrConfig& config) {
  const int n = context.num_clients();
  if (n < 1 || n > 20) {
    return Status::InvalidArgument("lambda-MR requires 1 <= n <= 20");
  }
  if (config.lambda <= 0.0 || config.lambda > 1.0) {
    return Status::InvalidArgument("lambda must be in (0, 1]");
  }
  Stopwatch timer;

  const uint64_t total = 1ULL << n;
  std::vector<double> values(n, 0.0);
  std::vector<double> u(total, 0.0);
  size_t evaluations = 0;
  double round_weight = 1.0;
  for (int round = 0; round < context.num_rounds(); ++round) {
    for (uint64_t mask = 0; mask < total; ++mask) {
      Coalition c;
      for (int i = 0; i < n; ++i) {
        if ((mask >> i) & 1ULL) c.Add(i);
      }
      FEDSHAP_ASSIGN_OR_RETURN(u[mask],
                               context.EvaluateRoundSubset(round, c));
      ++evaluations;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t bit = 1ULL << i;
      double round_value = 0.0;
      for (uint64_t mask = 0; mask < total; ++mask) {
        if (mask & bit) continue;
        const int s = std::popcount(mask);
        const double weight = 1.0 / (n * BinomialDouble(n - 1, s));
        round_value += (u[mask | bit] - u[mask]) * weight;
      }
      values[i] += round_weight * round_value;
    }
    round_weight *= config.lambda;
  }

  ValuationResult result;
  result.values = std::move(values);
  result.num_evaluations = evaluations;
  result.num_trainings = 1;
  result.wall_seconds = timer.ElapsedSeconds();
  result.charged_seconds =
      context.grand_training_seconds() + result.wall_seconds;
  return result;
}

}  // namespace fedshap
