#include "baselines/cc_shapley.h"

#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> CcShapley(UtilitySession& session,
                                  const CcShapleyConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.rounds < 1) {
    return Status::InvalidArgument("rounds must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  // stratum_sum[i][k-1] accumulates client i's complementary contributions
  // whose "with-i" coalition has size k; stratum_count tracks sample sizes.
  std::vector<std::vector<double>> stratum_sum(
      n, std::vector<double>(n, 0.0));
  std::vector<std::vector<int>> stratum_count(n, std::vector<int>(n, 0));

  // Draw every round's (S, N\S) pair first — the rng stream does not
  // depend on utilities — then train the whole batch across the session's
  // thread pool, in the order a sequential run would evaluate.
  std::vector<std::pair<int, Coalition>> drawn;  // (k, S) per round
  std::vector<Coalition> order;
  drawn.reserve(config.rounds);
  order.reserve(2 * static_cast<size_t>(config.rounds));
  for (int t = 0; t < config.rounds; ++t) {
    const int k =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n))) + 1;
    const Coalition s = RandomSubsetOfSize(n, k, rng);
    drawn.emplace_back(k, s);
    order.push_back(s);
    order.push_back(s.ComplementIn(n));
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           session.EvaluateBatch(order));

  for (int t = 0; t < config.rounds; ++t) {
    const int k = drawn[t].first;
    const Coalition& s = drawn[t].second;
    const double u_s = u[2 * static_cast<size_t>(t)];
    const double u_c = u[2 * static_cast<size_t>(t) + 1];
    const double cc = u_s - u_c;
    // One pair informs every client (Zhang et al.'s key efficiency trick).
    for (int i = 0; i < n; ++i) {
      if (s.Contains(i)) {
        stratum_sum[i][k - 1] += cc;
        ++stratum_count[i][k - 1];
      } else {
        const int comp_size = n - k;
        if (comp_size >= 1) {
          stratum_sum[i][comp_size - 1] += -cc;
          ++stratum_count[i][comp_size - 1];
        }
      }
    }
  }

  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      if (stratum_count[i][k] > 0) {
        total += stratum_sum[i][k] / stratum_count[i][k];
      }
    }
    values[i] = total / n;
  }

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

}  // namespace fedshap
