#include "baselines/cc_shapley.h"

#include "core/stratified.h"
#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> CcShapley(UtilitySession& session,
                                  const CcShapleyConfig& config) {
  const int n = session.num_clients();
  if (n < 1) return Status::InvalidArgument("need at least one client");
  if (config.rounds < 1) {
    return Status::InvalidArgument("rounds must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  // strata[i][k-1] accumulates client i's complementary contributions
  // whose "with-i" coalition has size k, as the shared running-moment
  // statistics of the stratified framework (core/stratified.h).
  std::vector<std::vector<StratumMoments>> strata(
      n, std::vector<StratumMoments>(n));

  // Draw every round's (S, N\S) pair first — the rng stream does not
  // depend on utilities — then train the whole batch across the session's
  // thread pool, in the order a sequential run would evaluate.
  std::vector<std::pair<int, Coalition>> drawn;  // (k, S) per round
  std::vector<Coalition> order;
  drawn.reserve(config.rounds);
  order.reserve(2 * static_cast<size_t>(config.rounds));
  for (int t = 0; t < config.rounds; ++t) {
    const int k =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n))) + 1;
    const Coalition s = RandomSubsetOfSize(n, k, rng);
    drawn.emplace_back(k, s);
    order.push_back(s);
    order.push_back(s.ComplementIn(n));
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::vector<double> u,
                           session.EvaluateBatch(order));

  for (int t = 0; t < config.rounds; ++t) {
    const int k = drawn[t].first;
    const Coalition& s = drawn[t].second;
    const double u_s = u[2 * static_cast<size_t>(t)];
    const double u_c = u[2 * static_cast<size_t>(t) + 1];
    const double cc = u_s - u_c;
    // One pair informs every client (Zhang et al.'s key efficiency trick).
    for (int i = 0; i < n; ++i) {
      if (s.Contains(i)) {
        strata[i][k - 1].Add(cc);
      } else {
        const int comp_size = n - k;
        if (comp_size >= 1) {
          strata[i][comp_size - 1].Add(-cc);
        }
      }
    }
  }

  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      if (strata[i][k].count > 0) total += strata[i][k].Mean();
    }
    values[i] = total / n;
  }

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

}  // namespace fedshap
