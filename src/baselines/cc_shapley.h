#ifndef FEDSHAP_BASELINES_CC_SHAPLEY_H_
#define FEDSHAP_BASELINES_CC_SHAPLEY_H_

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Configuration of CC-Shapley.
struct CcShapleyConfig {
  /// Number of sampled complementary pairs. Each round evaluates the
  /// coalition S and its complement N \ S (two trainings), which is why the
  /// paper observes CC-Shapley to be among the slowest sampling baselines
  /// at equal round budgets.
  int rounds = 32;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// CC-Shapley: Zhang et al.'s complementary-contribution sampling
/// (SIGMOD 2023), the state-of-the-art CC-SV sampler the paper compares
/// against.
///
/// Each round draws a size k uniformly and a coalition S of size k, then
/// the single pair (U(S), U(N\S)) yields a complementary-contribution
/// sample for *every* client: members of S at stratum k, non-members at
/// stratum n-k with the negated difference. Stratum means are averaged
/// into the final value.
Result<ValuationResult> CcShapley(UtilitySession& session,
                                  const CcShapleyConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_CC_SHAPLEY_H_
