#ifndef FEDSHAP_BASELINES_EXTENDED_GTB_H_
#define FEDSHAP_BASELINES_EXTENDED_GTB_H_

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Configuration of Extended-GTB.
struct ExtendedGtbConfig {
  /// Number of group-testing samples (subsets drawn).
  int samples = 32;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// Extended-GTB: Jia et al.'s Group-Testing-Based SV estimator extended to
/// FL (the paper's Sec. V-A baseline).
///
/// Draws subsets with the group-testing size distribution q(k) ~
/// (1/k + 1/(n-k)), estimates all pairwise value differences
/// delta_ij ~ phi_i - phi_j from the test responses, then recovers a
/// valuation consistent with the efficiency constraint
/// sum phi = U(N) - U(empty) by solving the (always-feasible) least-squares
/// relaxation of the paper's feasibility program:
///
///   phi_i = (U(N) - U(empty) + sum_j delta_ij) / n
Result<ValuationResult> ExtendedGtbShapley(UtilitySession& session,
                                           const ExtendedGtbConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_EXTENDED_GTB_H_
