#include "baselines/extended_gtb.h"

#include "util/combinatorics.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<ValuationResult> ExtendedGtbShapley(UtilitySession& session,
                                           const ExtendedGtbConfig& config) {
  const int n = session.num_clients();
  if (n < 2) return Status::InvalidArgument("GTB needs at least 2 clients");
  if (config.samples < 1) {
    return Status::InvalidArgument("samples must be >= 1");
  }
  Stopwatch timer;
  Rng rng(config.seed);

  // Group-testing size distribution over k = 1..n-1: q(k) ~ 1/k + 1/(n-k).
  std::vector<double> size_weights(n - 1);
  double z_total = 0.0;
  for (int k = 1; k <= n - 1; ++k) {
    size_weights[k - 1] = 1.0 / k + 1.0 / (n - k);
    z_total += size_weights[k - 1];
  }

  // Test responses: delta_ij accumulates u_t * (B_ti - B_tj).
  std::vector<double> delta(static_cast<size_t>(n) * n, 0.0);
  std::vector<int> membership(n, 0);
  for (int t = 0; t < config.samples; ++t) {
    const int k = static_cast<int>(rng.Categorical(size_weights)) + 1;
    const Coalition s = RandomSubsetOfSize(n, k, rng);
    FEDSHAP_ASSIGN_OR_RETURN(const double u, session.Evaluate(s));
    for (int i = 0; i < n; ++i) membership[i] = s.Contains(i) ? 1 : 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double contribution = u * (membership[i] - membership[j]);
        delta[i * n + j] += contribution;
        delta[j * n + i] -= contribution;
      }
    }
  }
  // Scale to unbiased pairwise-difference estimates (Jia et al., Eq. GT).
  const double scale = z_total / config.samples;
  for (double& d : delta) d *= scale;

  // Efficiency anchor.
  FEDSHAP_ASSIGN_OR_RETURN(const double u_empty,
                           session.Evaluate(Coalition()));
  FEDSHAP_ASSIGN_OR_RETURN(const double u_full,
                           session.Evaluate(Coalition::Full(n)));
  const double total_value = u_full - u_empty;

  // Least-squares solution of {phi_i - phi_j ~= delta_ij, sum phi = total}:
  // phi_i = (total + sum_j delta_ij) / n. This is the limit of the paper's
  // "incrementally relax the feasibility constraints" loop — the smallest
  // relaxation that admits a solution is the least-squares projection.
  std::vector<double> values(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (int j = 0; j < n; ++j) row_sum += delta[i * n + j];
    values[i] = (total_value + row_sum) / n;
  }

  return FinishValuation(std::move(values), session,
                         timer.ElapsedSeconds());
}

}  // namespace fedshap
