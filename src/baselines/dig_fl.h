#ifndef FEDSHAP_BASELINES_DIG_FL_H_
#define FEDSHAP_BASELINES_DIG_FL_H_

#include "core/valuation_result.h"
#include "fl/reconstruction.h"
#include "util/status.h"

namespace fedshap {

/// DIG-FL (Wang et al., ICDE 2022): per-round gradient-alignment
/// contribution estimation with O(n + R) utility evaluations.
///
/// For each round r, the global improvement U_r - U_{r-1} is split across
/// participating clients proportionally to the (clipped-positive) cosine
/// alignment between the client's recorded update and the aggregated global
/// update, weighted by local dataset size:
///
///   phi_i = sum_r max(0, U_r - U_{r-1}) * w_{i,r},
///   w_{i,r} ~ |D_i| * max(0, cos(delta_{i,r}, delta_global_r))
///
/// Fast but uncalibrated against the Shapley scale — the source of the
/// large relative errors the paper reports for it, especially on CNNs.
Result<ValuationResult> DigFlShapley(ReconstructionContext& context);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_DIG_FL_H_
