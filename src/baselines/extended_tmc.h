#ifndef FEDSHAP_BASELINES_EXTENDED_TMC_H_
#define FEDSHAP_BASELINES_EXTENDED_TMC_H_

#include "core/valuation_result.h"
#include "fl/utility_cache.h"
#include "util/status.h"

namespace fedshap {

/// Configuration of Extended-TMC.
struct ExtendedTmcConfig {
  /// Number of sampled permutations (the "sampling rounds" the paper's
  /// Table III assigns; each permutation walks up to n prefixes, so the
  /// evaluation count is roughly n per round, minus truncation).
  int permutations = 32;
  /// Truncation: once the running prefix utility is within this distance
  /// of U(N), the remaining marginal contributions of the permutation are
  /// treated as zero (no further trainings).
  double truncation_tolerance = 0.01;
  /// Seed of the sampling randomness.
  uint64_t seed = 1;
};

/// Extended-TMC: Ghorbani & Zou's Truncated Monte Carlo Shapley extended to
/// FL coalitions (the paper's Sec. V-A baseline). Samples random client
/// permutations and averages truncated marginal contributions:
///
///   phi_i = E_pi [ U(prefix(pi, i) u {i}) - U(prefix(pi, i)) ]     (Eq. 20)
Result<ValuationResult> ExtendedTmcShapley(UtilitySession& session,
                                           const ExtendedTmcConfig& config);

}  // namespace fedshap

#endif  // FEDSHAP_BASELINES_EXTENDED_TMC_H_
