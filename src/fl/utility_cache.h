#ifndef FEDSHAP_FL_UTILITY_CACHE_H_
#define FEDSHAP_FL_UTILITY_CACHE_H_

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fl/utility.h"
#include "util/coalition.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fedshap {

class UtilityStore;

/// \file
/// In-process memoization of utility evaluations (one full FL training
/// per distinct coalition) plus per-run cost accounting. The optional
/// persistent backing (UtilityStore) extends the memoization across
/// processes; see docs/ARCHITECTURE.md for where these layers sit on the
/// utility-evaluation hot path.

/// One memoized utility evaluation: the value and what it cost to compute.
struct UtilityRecord {
  /// U(S), the model quality the coalition's FL training reached.
  double utility = 0.0;
  /// Wall-clock seconds of the underlying train+evaluate (0 on rerun: the
  /// stored cost is from the first, real computation).
  double cost_seconds = 0.0;
};

/// Thread-safe memoization layer over a UtilityFunction.
///
/// Every distinct coalition is trained *exactly* once, even under
/// concurrent access: a Get racing an in-flight computation of the same
/// coalition blocks until that computation lands instead of duplicating
/// the FL training (single-flight). The measured
/// train+evaluate cost is stored alongside the value. This enables the
/// benches' *charged time* accounting: an algorithm run "pays" the recorded
/// training cost of every coalition it asks for, whether or not the value
/// was already cached from an earlier run — i.e. reported time stays
/// faithful to "train and evaluate an FL model per evaluated combination"
/// while ground-truth sweeps stay tractable (see EXPERIMENTS.md).
class UtilityCache {
 public:
  /// `fn` must outlive the cache.
  explicit UtilityCache(const UtilityFunction* fn);

  /// Number of FL clients n of the underlying utility function.
  int num_clients() const { return fn_->num_clients(); }

  /// Returns the record for `coalition`, computing and memoizing on miss.
  /// When `fresh` is non-null, `*fresh` is set to true iff *this call*
  /// performed the training (a miss this caller computed), false on any
  /// kind of hit — including waiting out another thread's in-flight
  /// computation of the same coalition. Callers that share one cache
  /// across several logical runs (the valuation service) use this to
  /// attribute each training to exactly one run.
  Result<UtilityRecord> Get(const Coalition& coalition, bool* fresh = nullptr);

  /// Evaluates all `coalitions` (cache misses in parallel on `pool` when
  /// provided). Useful for the exhaustive phases of IPSS / exact SV.
  /// When `fresh` is non-null it is resized to `coalitions.size()` and
  /// `(*fresh)[i]` records whether evaluating `coalitions[i]` trained a
  /// new model here (same semantics as Get's `fresh`). On failure the
  /// *first* failing coalition's actual Status is returned (lowest index
  /// wins), matching what a sequential pass would surface.
  Status Prefetch(const std::vector<Coalition>& coalitions,
                  ThreadPool* pool = nullptr,
                  std::vector<uint8_t>* fresh = nullptr);

  /// Like Prefetch, but routes the misses through one
  /// UtilityFunction::EvaluateBatchFused dispatch instead of per-coalition
  /// Evaluate calls: same single-flight and store read/write-through
  /// semantics, but the underlying utility may stack the coalitions'
  /// model evaluations into fused GEMM dispatches (values then agree with
  /// Evaluate within the kernel tolerance contract, see ml/matrix.h).
  /// Each fused record's cost_seconds is the batch's wall time amortized
  /// evenly over the coalitions it trained.
  Status PrefetchFused(const std::vector<Coalition>& coalitions,
                       std::vector<uint8_t>* fresh = nullptr);

  /// Attaches a persistent store as the cache's cross-process backing:
  ///
  ///  - on a cache miss the store is consulted *first* (read-through): a
  ///    stored record is served with its original training cost, so
  ///    charged-time accounting is identical to a run that really
  ///    trained it, and no model is trained. Nothing is loaded
  ///    wholesale: a store larger than memory stays on disk until a
  ///    coalition is actually asked for;
  ///  - every freshly computed record is written through to the store,
  ///    which is flushed (fsync'd) once at least `flush_bytes` bytes
  ///    have been appended since the last flush (0 = only on explicit
  ///    UtilityStore::Flush; 1 = after every record), bounding what a
  ///    crash can lose.
  ///
  /// `store` must outlive the cache; its fingerprint must describe the
  /// same workload as the cache's utility function (the caller binds the
  /// two — see ScenarioRunner / UtilityFunction::Fingerprint).
  void AttachStore(UtilityStore* store, size_t flush_bytes = 1);

  /// Drops all memoized entries (e.g. when the underlying utility was
  /// reseeded and old values are stale). Entries already persisted in an
  /// attached store are dropped from memory only, not from disk. All
  /// counters reset, including the unflushed-byte count that paces the
  /// store's implicit flushes.
  void Clear();

  /// Number of memoized entries.
  size_t size() const;
  /// Gets served without a computation: memory hits plus read-through
  /// hits on the attached store.
  size_t hits() const;
  /// Gets that computed a fresh utility (one FL training each).
  size_t misses() const;
  /// Entries served from the attached store instead of being retrained
  /// (read-through hits; 0 when no store is attached).
  size_t preloaded() const;
  /// Total seconds actually spent computing utilities (misses only).
  double total_compute_seconds() const;
  /// Sum of the recorded training costs of every entry, including those
  /// preloaded from a store — i.e. what all held utilities originally
  /// cost, wherever they were computed. The benches' tau (mean training
  /// cost per model) is recorded_cost_seconds() / size().
  double recorded_cost_seconds() const;
  /// Bytes appended to the attached store since its last implicit flush
  /// (0 without a store). Exposed so tests can pin the flush-interval
  /// accounting across Clear()/AttachStore().
  size_t unflushed_bytes() const;

 private:
  /// Write-through + byte-counted flush for one freshly computed record;
  /// called outside the cache mutex (Get and PrefetchFused share it).
  void WriteThrough(UtilityStore* store, const Coalition& coalition,
                    const UtilityRecord& record);
  const UtilityFunction* fn_;
  UtilityStore* store_ = nullptr;
  /// Flush the store once this many bytes have been appended since the
  /// last flush (0 = never implicitly).
  size_t flush_bytes_ = 0;
  size_t unflushed_bytes_ = 0;
  size_t preloaded_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<Coalition, UtilityRecord, CoalitionHash> entries_;
  /// Coalitions currently being computed by some thread; waiters park on
  /// `inflight_done_` until theirs lands in `entries_`.
  std::unordered_set<Coalition, CoalitionHash> inflight_;
  std::condition_variable inflight_done_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  double total_compute_seconds_ = 0.0;
  double recorded_cost_seconds_ = 0.0;
};

/// Per-algorithm-run view of a UtilityCache.
///
/// Valuation algorithms consume this class. It tracks, for one run: how
/// many Evaluate calls were made, how many *distinct* coalitions were
/// needed (= FL trainings a standalone run would have performed; each
/// distinct coalition is charged its recorded training cost exactly once,
/// matching an implementation that memoizes within the run).
class UtilitySession {
 public:
  /// `cache` (and `pool`, when given) must outlive the session. A session
  /// with a pool fans EvaluateBatch misses out over the pool's workers;
  /// without one it degrades to plain sequential evaluation.
  explicit UtilitySession(UtilityCache* cache, ThreadPool* pool = nullptr)
      : cache_(cache), pool_(pool) {}

  /// Number of FL clients n of the underlying utility function.
  int num_clients() const { return cache_->num_clients(); }

  /// U(S), with cost accounting.
  Result<double> Evaluate(const Coalition& coalition);

  /// Evaluates a round's worth of coalitions, returning their utilities in
  /// order. Cache misses are computed in parallel on the session's thread
  /// pool (when set); accounting is identical to calling Evaluate on each
  /// coalition sequentially — same num_evaluations, num_distinct and
  /// charged_seconds, and on failure the same first error.
  Result<std::vector<double>> EvaluateBatch(
      const std::vector<Coalition>& coalitions);

  /// Routes EvaluateBatch misses through the utility's fused
  /// multi-coalition path (UtilityCache::PrefetchFused) instead of
  /// per-coalition dispatch. Off by default: fused values agree with the
  /// unfused path only within the kernel tolerance contract, so callers
  /// opt in per job (`fuse=on`).
  void set_fused(bool fused) { fused_ = fused; }
  /// Whether the fused dispatch path is enabled.
  bool fused() const { return fused_; }

  /// Records that a speculative prefetcher trained `coalition` on this
  /// session's behalf (its cache Get came back fresh). If the session has
  /// already evaluated the coalition the training is attributed now;
  /// otherwise a credit is held and consumed by the first Evaluate of
  /// that coalition. Single-flight in the cache guarantees at most one
  /// fresh training per coalition ever, so num_fresh_trainings stays
  /// exact under any prefetch/evaluate interleaving. Thread-safe against
  /// concurrent Evaluate/EvaluateBatch calls.
  void CreditPrefetchedTraining(const Coalition& coalition);

  /// Total U(.) queries this run issued (statistics for ValuationResult).
  size_t num_evaluations() const;
  /// Distinct coalitions this run needed (= FL trainings a standalone
  /// run would have performed).
  size_t num_distinct() const;
  /// Distinct coalitions this run actually trained itself: evaluations
  /// that missed the shared cache and were computed on this session's
  /// behalf (including trainings a speculative prefetcher ran ahead for
  /// it — see CreditPrefetchedTraining). `num_distinct() -
  /// num_fresh_trainings()` is therefore the number of trainings this run
  /// *reused* — from earlier runs in the process, from concurrent runs
  /// sharing the cache, or from an attached store. The valuation service
  /// reports this as its cross-job dedup metric.
  size_t num_fresh_trainings() const;
  /// Sum of the recorded training costs of the distinct coalitions, each
  /// charged exactly once.
  double charged_seconds() const;
  /// Trainings a speculative prefetcher credited to this session.
  size_t prefetch_credited() const;
  /// Credited prefetch trainings whose coalition the session went on to
  /// evaluate (the prefetcher's hit-ahead count; the rest were
  /// mis-speculations or arrived after the run finished).
  size_t prefetch_consumed() const;

 private:
  Result<double> EvaluateInternal(const Coalition& coalition,
                                  bool prefetched_fresh);

  UtilityCache* cache_;
  ThreadPool* pool_;
  bool fused_ = false;
  /// Guards all accounting below: the service's prefetch thread posts
  /// credits concurrently with the run thread's evaluations.
  mutable std::mutex mutex_;
  std::unordered_set<Coalition, CoalitionHash> seen_;
  /// Prefetched-fresh coalitions not yet evaluated by this session.
  std::unordered_set<Coalition, CoalitionHash> credits_;
  size_t num_evaluations_ = 0;
  size_t fresh_trainings_ = 0;
  size_t prefetch_credited_ = 0;
  size_t prefetch_consumed_ = 0;
  double charged_seconds_ = 0.0;
};

}  // namespace fedshap

#endif  // FEDSHAP_FL_UTILITY_CACHE_H_
