#ifndef FEDSHAP_FL_UTILITY_CACHE_H_
#define FEDSHAP_FL_UTILITY_CACHE_H_

#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fl/utility.h"
#include "util/coalition.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fedshap {

/// One memoized utility evaluation: the value and what it cost to compute.
struct UtilityRecord {
  double utility = 0.0;
  /// Wall-clock seconds of the underlying train+evaluate (0 on rerun: the
  /// stored cost is from the first, real computation).
  double cost_seconds = 0.0;
};

/// Thread-safe memoization layer over a UtilityFunction.
///
/// Every distinct coalition is trained at most once, and the measured
/// train+evaluate cost is stored alongside the value. This enables the
/// benches' *charged time* accounting: an algorithm run "pays" the recorded
/// training cost of every coalition it asks for, whether or not the value
/// was already cached from an earlier run — i.e. reported time stays
/// faithful to "train and evaluate an FL model per evaluated combination"
/// while ground-truth sweeps stay tractable (see EXPERIMENTS.md).
class UtilityCache {
 public:
  /// `fn` must outlive the cache.
  explicit UtilityCache(const UtilityFunction* fn);

  int num_clients() const { return fn_->num_clients(); }

  /// Returns the record for `coalition`, computing and memoizing on miss.
  Result<UtilityRecord> Get(const Coalition& coalition);

  /// Evaluates all `coalitions` (cache misses in parallel on `pool` when
  /// provided). Useful for the exhaustive phases of IPSS / exact SV.
  Status Prefetch(const std::vector<Coalition>& coalitions,
                  ThreadPool* pool = nullptr);

  /// Drops all memoized entries (e.g. when the underlying utility was
  /// reseeded and old values are stale).
  void Clear();

  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  /// Total seconds actually spent computing utilities (misses only).
  double total_compute_seconds() const;

 private:
  const UtilityFunction* fn_;
  mutable std::mutex mutex_;
  std::unordered_map<Coalition, UtilityRecord, CoalitionHash> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  double total_compute_seconds_ = 0.0;
};

/// Per-algorithm-run view of a UtilityCache.
///
/// Valuation algorithms consume this class. It tracks, for one run: how
/// many Evaluate calls were made, how many *distinct* coalitions were
/// needed (= FL trainings a standalone run would have performed; each
/// distinct coalition is charged its recorded training cost exactly once,
/// matching an implementation that memoizes within the run).
class UtilitySession {
 public:
  /// `cache` must outlive the session.
  explicit UtilitySession(UtilityCache* cache) : cache_(cache) {}

  int num_clients() const { return cache_->num_clients(); }

  /// U(S), with cost accounting.
  Result<double> Evaluate(const Coalition& coalition);

  /// Statistics for ValuationResult.
  size_t num_evaluations() const { return num_evaluations_; }
  size_t num_distinct() const { return seen_.size(); }
  double charged_seconds() const { return charged_seconds_; }

 private:
  UtilityCache* cache_;
  std::unordered_set<Coalition, CoalitionHash> seen_;
  size_t num_evaluations_ = 0;
  double charged_seconds_ = 0.0;
};

}  // namespace fedshap

#endif  // FEDSHAP_FL_UTILITY_CACHE_H_
