#ifndef FEDSHAP_FL_UTILITY_CACHE_H_
#define FEDSHAP_FL_UTILITY_CACHE_H_

#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fl/utility.h"
#include "util/coalition.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace fedshap {

/// One memoized utility evaluation: the value and what it cost to compute.
struct UtilityRecord {
  double utility = 0.0;
  /// Wall-clock seconds of the underlying train+evaluate (0 on rerun: the
  /// stored cost is from the first, real computation).
  double cost_seconds = 0.0;
};

/// Thread-safe memoization layer over a UtilityFunction.
///
/// Every distinct coalition is trained *exactly* once, even under
/// concurrent access: a Get racing an in-flight computation of the same
/// coalition blocks until that computation lands instead of duplicating
/// the FL training (single-flight). The measured
/// train+evaluate cost is stored alongside the value. This enables the
/// benches' *charged time* accounting: an algorithm run "pays" the recorded
/// training cost of every coalition it asks for, whether or not the value
/// was already cached from an earlier run — i.e. reported time stays
/// faithful to "train and evaluate an FL model per evaluated combination"
/// while ground-truth sweeps stay tractable (see EXPERIMENTS.md).
class UtilityCache {
 public:
  /// `fn` must outlive the cache.
  explicit UtilityCache(const UtilityFunction* fn);

  int num_clients() const { return fn_->num_clients(); }

  /// Returns the record for `coalition`, computing and memoizing on miss.
  Result<UtilityRecord> Get(const Coalition& coalition);

  /// Evaluates all `coalitions` (cache misses in parallel on `pool` when
  /// provided). Useful for the exhaustive phases of IPSS / exact SV.
  Status Prefetch(const std::vector<Coalition>& coalitions,
                  ThreadPool* pool = nullptr);

  /// Drops all memoized entries (e.g. when the underlying utility was
  /// reseeded and old values are stale).
  void Clear();

  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  /// Total seconds actually spent computing utilities (misses only).
  double total_compute_seconds() const;

 private:
  const UtilityFunction* fn_;
  mutable std::mutex mutex_;
  std::unordered_map<Coalition, UtilityRecord, CoalitionHash> entries_;
  /// Coalitions currently being computed by some thread; waiters park on
  /// `inflight_done_` until theirs lands in `entries_`.
  std::unordered_set<Coalition, CoalitionHash> inflight_;
  std::condition_variable inflight_done_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  double total_compute_seconds_ = 0.0;
};

/// Per-algorithm-run view of a UtilityCache.
///
/// Valuation algorithms consume this class. It tracks, for one run: how
/// many Evaluate calls were made, how many *distinct* coalitions were
/// needed (= FL trainings a standalone run would have performed; each
/// distinct coalition is charged its recorded training cost exactly once,
/// matching an implementation that memoizes within the run).
class UtilitySession {
 public:
  /// `cache` (and `pool`, when given) must outlive the session. A session
  /// with a pool fans EvaluateBatch misses out over the pool's workers;
  /// without one it degrades to plain sequential evaluation.
  explicit UtilitySession(UtilityCache* cache, ThreadPool* pool = nullptr)
      : cache_(cache), pool_(pool) {}

  int num_clients() const { return cache_->num_clients(); }

  /// U(S), with cost accounting.
  Result<double> Evaluate(const Coalition& coalition);

  /// Evaluates a round's worth of coalitions, returning their utilities in
  /// order. Cache misses are computed in parallel on the session's thread
  /// pool (when set); accounting is identical to calling Evaluate on each
  /// coalition sequentially — same num_evaluations, num_distinct and
  /// charged_seconds, and on failure the same first error.
  Result<std::vector<double>> EvaluateBatch(
      const std::vector<Coalition>& coalitions);

  /// Statistics for ValuationResult.
  size_t num_evaluations() const { return num_evaluations_; }
  size_t num_distinct() const { return seen_.size(); }
  double charged_seconds() const { return charged_seconds_; }

 private:
  UtilityCache* cache_;
  ThreadPool* pool_;
  std::unordered_set<Coalition, CoalitionHash> seen_;
  size_t num_evaluations_ = 0;
  double charged_seconds_ = 0.0;
};

}  // namespace fedshap

#endif  // FEDSHAP_FL_UTILITY_CACHE_H_
