#include "fl/utility.h"

#include <algorithm>
#include <cmath>

#include "ml/matrix.h"
#include "ml/metrics.h"
#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {

uint64_t UtilityFunction::Fingerprint() const {
  // Deliberately weak default: enough for unit-test utilities that are
  // never persisted. Real workloads override with a full content hash.
  return Hasher64()
      .MixString("utility-function")
      .MixU64(static_cast<uint64_t>(num_clients()))
      .digest();
}

Result<std::vector<double>> UtilityFunction::EvaluateBatchFused(
    const std::vector<Coalition>& coalitions) const {
  std::vector<double> values;
  values.reserve(coalitions.size());
  for (const Coalition& coalition : coalitions) {
    FEDSHAP_ASSIGN_OR_RETURN(double utility, Evaluate(coalition));
    values.push_back(utility);
  }
  return values;
}

// ---------------------------------------------------------------------------
// FedAvgUtility

Result<std::unique_ptr<FedAvgUtility>> FedAvgUtility::Create(
    std::vector<Dataset> client_data, Dataset test_data,
    const Model& prototype, const FedAvgConfig& config,
    UtilityMetric metric) {
  if (client_data.empty()) {
    return Status::InvalidArgument("need at least one client");
  }
  if (client_data.size() > static_cast<size_t>(Coalition::kMaxClients)) {
    return Status::InvalidArgument("too many clients");
  }
  if (test_data.empty()) {
    return Status::InvalidArgument("test dataset must not be empty");
  }
  std::vector<FlClient> clients;
  clients.reserve(client_data.size());
  for (size_t i = 0; i < client_data.size(); ++i) {
    clients.emplace_back(static_cast<int>(i), std::move(client_data[i]));
  }
  return std::unique_ptr<FedAvgUtility>(
      new FedAvgUtility(std::move(clients), std::move(test_data),
                        prototype.Clone(), config, metric));
}

Result<double> FedAvgUtility::Evaluate(const Coalition& coalition) const {
  std::vector<const FlClient*> members;
  for (const FlClient& client : clients_) {
    if (coalition.Contains(client.id())) members.push_back(&client);
  }
  if (members.size() != static_cast<size_t>(coalition.Count())) {
    return Status::InvalidArgument("coalition references unknown clients");
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<Model> model,
                           TrainFedAvg(*prototype_, members, config_));
  switch (metric_) {
    case UtilityMetric::kAccuracy:
      return EvaluateAccuracy(*model, test_data_);
    case UtilityMetric::kNegativeLoss:
      // Evaluate with the same gradient path that trained: kPerExample
      // workloads stay reference-path end to end.
      return -model->Loss(test_data_, config_.local.gradient_mode);
  }
  return Status::Internal("unknown utility metric");
}

Result<std::vector<double>> FedAvgUtility::EvaluateBatchFused(
    const std::vector<Coalition>& coalitions) const {
  // Train exactly as Evaluate would: the fusion below changes only how
  // the resulting models are *scored*, so the trained parameters are
  // bit-identical to the unfused path and only the scoring arithmetic is
  // subject to the kernel tolerance contract.
  std::vector<std::unique_ptr<Model>> models;
  models.reserve(coalitions.size());
  for (const Coalition& coalition : coalitions) {
    std::vector<const FlClient*> members;
    for (const FlClient& client : clients_) {
      if (coalition.Contains(client.id())) members.push_back(&client);
    }
    if (members.size() != static_cast<size_t>(coalition.Count())) {
      return Status::InvalidArgument("coalition references unknown clients");
    }
    FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<Model> model,
                             TrainFedAvg(*prototype_, members, config_));
    models.push_back(std::move(model));
  }

  std::vector<double> values(models.size(), 0.0);
  // Partition: models whose accuracy can be read off stacked affine
  // logits are scored together below; everything else (no affine head,
  // or the negative-loss metric) scores exactly like Evaluate.
  std::vector<size_t> fusable;
  for (size_t m = 0; m < models.size(); ++m) {
    const float* bias = nullptr;
    if (metric_ == UtilityMetric::kAccuracy &&
        models[m]->AffineScorer(&bias) != nullptr) {
      fusable.push_back(m);
      continue;
    }
    switch (metric_) {
      case UtilityMetric::kAccuracy:
        values[m] = EvaluateAccuracy(*models[m], test_data_);
        break;
      case UtilityMetric::kNegativeLoss:
        values[m] = -models[m]->Loss(test_data_,
                                     config_.local.gradient_mode);
        break;
    }
  }
  if (fusable.empty()) return values;

  // Stack the M fusable models' scoring heads into one F x (M*C) weight
  // block and concatenated biases, then score the whole test set in
  // chunked GEMMs: logits = X * [W_1^T | ... | W_M^T] + [b_1 | ... | b_M].
  // Argmax within each model's C-column block is its prediction (the
  // models' final activations are monotone per row, see AffineScorer).
  const size_t num_features = static_cast<size_t>(test_data_.num_features());
  const size_t classes =
      static_cast<size_t>(models[fusable.front()]->NumOutputs());
  const size_t stacked_cols = fusable.size() * classes;
  AlignedFloats stacked_wt(num_features * stacked_cols);
  std::vector<float> stacked_bias(stacked_cols);
  for (size_t j = 0; j < fusable.size(); ++j) {
    const float* bias = nullptr;
    const float* weights = models[fusable[j]]->AffineScorer(&bias);
    for (size_t c = 0; c < classes; ++c) {
      stacked_bias[j * classes + c] = bias[c];
    }
    for (size_t f = 0; f < num_features; ++f) {
      for (size_t c = 0; c < classes; ++c) {
        stacked_wt[f * stacked_cols + j * classes + c] =
            weights[c * num_features + f];
      }
    }
  }
  constexpr size_t kChunkRows = 256;
  AlignedFloats xb, logits;
  std::vector<size_t> batch;
  std::vector<size_t> correct(fusable.size(), 0);
  for (size_t begin = 0; begin < test_data_.size(); begin += kChunkRows) {
    const size_t rows = std::min(kChunkRows, test_data_.size() - begin);
    batch.resize(rows);
    for (size_t i = 0; i < rows; ++i) batch[i] = begin + i;
    GatherRows(test_data_, batch, xb);
    logits.resize(rows * stacked_cols);
    MatMul(xb.data(), rows, num_features, stacked_wt.data(), stacked_cols,
           logits.data());
    AddBiasRows(logits.data(), rows, stacked_cols, stacked_bias.data());
    for (size_t i = 0; i < rows; ++i) {
      const int label = test_data_.ClassLabel(begin + i);
      const float* row = logits.data() + i * stacked_cols;
      for (size_t j = 0; j < fusable.size(); ++j) {
        const float* scores = row + j * classes;
        size_t best = 0;
        for (size_t c = 1; c < classes; ++c) {
          if (scores[c] > scores[best]) best = c;
        }
        if (static_cast<int>(best) == label) ++correct[j];
      }
    }
  }
  for (size_t j = 0; j < fusable.size(); ++j) {
    values[fusable[j]] = static_cast<double>(correct[j]) /
                         static_cast<double>(test_data_.size());
  }
  return values;
}

Result<double> FedAvgUtility::EvaluateParameters(
    const std::vector<float>& params) const {
  std::unique_ptr<Model> model = prototype_->Clone();
  FEDSHAP_RETURN_NOT_OK(model->SetParameters(params));
  switch (metric_) {
    case UtilityMetric::kAccuracy:
      return EvaluateAccuracy(*model, test_data_);
    case UtilityMetric::kNegativeLoss:
      return -model->Loss(test_data_, config_.local.gradient_mode);
  }
  return Status::Internal("unknown utility metric");
}

uint64_t FedAvgUtility::Fingerprint() const {
  // Everything Evaluate's result depends on: the client datasets, the
  // test set and metric, the architecture and its shared initialization,
  // and the FedAvg/SGD hyperparameters (including the seed that derives
  // per-coalition training randomness).
  Hasher64 hasher;
  hasher.MixString("fedavg-utility");
  hasher.MixString(prototype_->Name());
  const std::vector<float> params = prototype_->GetParameters();
  hasher.MixU64(params.size());
  hasher.MixBytes(params.data(), params.size() * sizeof(float));
  hasher.MixU64(static_cast<uint64_t>(config_.rounds));
  hasher.MixU64(config_.seed);
  hasher.MixU64(static_cast<uint64_t>(config_.local.epochs));
  // The batch configuration is part of the workload identity: batch size
  // changes the gradient averaging, and the execution path (batched
  // kernels vs per-example reference) changes float association, so
  // either difference must address a different store.
  hasher.MixU64(static_cast<uint64_t>(config_.local.batch_size));
  hasher.MixU64(static_cast<uint64_t>(config_.local.gradient_mode));
  hasher.MixDouble(config_.local.learning_rate);
  hasher.MixDouble(config_.local.momentum);
  hasher.MixDouble(config_.local.weight_decay);
  hasher.MixDouble(config_.local.proximal_mu);
  hasher.MixU64(static_cast<uint64_t>(metric_));
  hasher.MixU64(test_data_.Fingerprint());
  hasher.MixU64(clients_.size());
  for (const FlClient& client : clients_) {
    hasher.MixU64(client.data().Fingerprint());
  }
  return hasher.digest();
}

// ---------------------------------------------------------------------------
// GbdtUtility

Result<std::unique_ptr<GbdtUtility>> GbdtUtility::Create(
    std::vector<Dataset> client_data, Dataset test_data,
    const GbdtConfig& config) {
  if (client_data.empty()) {
    return Status::InvalidArgument("need at least one client");
  }
  if (test_data.empty()) {
    return Status::InvalidArgument("test dataset must not be empty");
  }
  return std::unique_ptr<GbdtUtility>(new GbdtUtility(
      std::move(client_data), std::move(test_data), config));
}

Result<double> GbdtUtility::Evaluate(const Coalition& coalition) const {
  std::vector<const Dataset*> parts;
  for (int i = 0; i < num_clients(); ++i) {
    if (coalition.Contains(i)) parts.push_back(&client_data_[i]);
  }
  // Index/view gather, not a merge: D_S is one row pointer + target per
  // member row, never a copy of the rows themselves. Row order matches
  // what Dataset::Merge produced, so the fitted ensemble — and therefore
  // every persisted utility — is unchanged.
  FEDSHAP_ASSIGN_OR_RETURN(DatasetView gathered, DatasetView::Gather(parts));
  Gbdt booster(config_);
  if (!gathered.empty()) {
    FEDSHAP_RETURN_NOT_OK(booster.Fit(gathered));
  }
  return booster.EvaluateAccuracy(test_data_);
}

uint64_t GbdtUtility::Fingerprint() const {
  Hasher64 hasher;
  hasher.MixString("gbdt-utility");
  hasher.MixU64(static_cast<uint64_t>(config_.num_trees));
  hasher.MixU64(static_cast<uint64_t>(config_.max_depth));
  hasher.MixDouble(config_.learning_rate);
  hasher.MixDouble(config_.reg_lambda);
  hasher.MixDouble(config_.min_child_weight);
  hasher.MixU64(static_cast<uint64_t>(config_.min_samples_leaf));
  hasher.MixU64(test_data_.Fingerprint());
  hasher.MixU64(client_data_.size());
  for (const Dataset& data : client_data_) {
    hasher.MixU64(data.Fingerprint());
  }
  return hasher.digest();
}

// ---------------------------------------------------------------------------
// TableUtility

uint64_t TableUtility::MaskOf(const Coalition& coalition) {
  uint64_t mask = 0;
  for (int member : coalition.Members()) {
    FEDSHAP_CHECK(member < 63);
    mask |= 1ULL << member;
  }
  return mask;
}

Result<TableUtility> TableUtility::FromValues(int n,
                                              std::vector<double> values) {
  if (n < 1 || n > 20) return Status::InvalidArgument("n must be in [1,20]");
  if (values.size() != (size_t{1} << n)) {
    return Status::InvalidArgument("values must have 2^n entries");
  }
  return TableUtility(n, std::move(values));
}

Result<TableUtility> TableUtility::FromFunction(
    int n, const std::function<double(const Coalition&)>& fn) {
  if (n < 1 || n > 20) return Status::InvalidArgument("n must be in [1,20]");
  std::vector<double> values(size_t{1} << n, 0.0);
  for (uint64_t mask = 0; mask < values.size(); ++mask) {
    Coalition c;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) c.Add(i);
    }
    values[mask] = fn(c);
  }
  return TableUtility(n, std::move(values));
}

Result<double> TableUtility::Evaluate(const Coalition& coalition) const {
  const uint64_t mask = MaskOf(coalition);
  if (mask >= values_.size()) {
    return Status::InvalidArgument("coalition outside the table");
  }
  return values_[mask];
}

uint64_t TableUtility::Fingerprint() const {
  Hasher64 hasher;
  hasher.MixString("table-utility");
  hasher.MixU64(static_cast<uint64_t>(n_));
  for (double value : values_) hasher.MixDouble(value);
  return hasher.digest();
}

// ---------------------------------------------------------------------------
// LinearRegressionUtility

double LinearRegressionUtility::MeanUtility(int k) const {
  const double d = static_cast<double>(params_.feature_dim);
  const double denom =
      static_cast<double>(params_.samples_per_client) * k - d - 1.0;
  if (denom <= 0.0) return -params_.initial_mse;
  const double mse = params_.noise_mean * d / denom;
  return -std::min(mse, params_.initial_mse);
}

Result<double> LinearRegressionUtility::Evaluate(
    const Coalition& coalition) const {
  const int k = coalition.Count();
  double utility = MeanUtility(k);
  if (params_.noise_scale > 0.0 && k > 0) {
    // Per-client noise shared across coalitions (see header): eta_i is a
    // pure function of (seed, i), so U(S u {i}) and U(S) carry identical
    // noise except for client i's own term.
    const double sigma = params_.noise_scale *
                         static_cast<double>(params_.samples_per_client);
    double noise = 0.0;
    coalition.ForEach([&](int i) {
      Rng client_rng(noise_seed_ * 0x9E3779B97F4A7C15ULL +
                     static_cast<uint64_t>(i) + 1);
      noise += client_rng.Gaussian(0.0, sigma);
    });
    utility += noise;
  }
  return utility;
}

uint64_t LinearRegressionUtility::Fingerprint() const {
  Hasher64 hasher;
  hasher.MixString("linreg-utility");
  hasher.MixU64(static_cast<uint64_t>(params_.num_clients));
  hasher.MixU64(static_cast<uint64_t>(params_.samples_per_client));
  hasher.MixU64(static_cast<uint64_t>(params_.feature_dim));
  hasher.MixDouble(params_.noise_mean);
  hasher.MixDouble(params_.initial_mse);
  hasher.MixDouble(params_.noise_scale);
  hasher.MixU64(noise_seed_);
  return hasher.digest();
}

}  // namespace fedshap
