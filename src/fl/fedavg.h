#ifndef FEDSHAP_FL_FEDAVG_H_
#define FEDSHAP_FL_FEDAVG_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/training_log.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "util/status.h"

namespace fedshap {

/// FedAvg hyper-parameters (McMahan et al., 2017).
struct FedAvgConfig {
  /// Communication rounds.
  int rounds = 5;
  /// Local SGD configuration used by each client per round.
  SgdConfig local;
  /// Base seed for local-training randomness. The effective seed is mixed
  /// with the participating coalition so each coalition's training is an
  /// independent yet reproducible run.
  uint64_t seed = 42;
};

/// Trains `prototype`'s architecture with FedAvg over the given clients.
///
/// The returned model starts from the prototype's *current* parameters, so
/// every coalition trains from the same initialization — a prerequisite for
/// both fair utility comparison and gradient-based reconstruction.
///
/// If `log` is non-null, records the per-round global parameters and client
/// deltas for gradient-based valuation baselines.
///
/// Passing an empty client list returns a clone of the prototype (the
/// "model trained on no data" M_empty used by U(M_empty)).
///
/// **Hierarchical parallelism.** Within a round, the participating
/// clients' local trainings are independent by construction, so they are
/// fanned out over the shared training pool (util/thread_pool.h); round
/// aggregation remains a barrier. The fan-out width is bounded by a
/// WorkerBudget lease, so a TrainFedAvg nested under an already-parallel
/// layer (UtilitySession::EvaluateBatch, the valuation service's
/// workers) degrades to sequential instead of oversubscribing cores.
/// The result is *bit-identical* at every worker count: per-client RNG
/// streams are forked in client order before the fan-out, and the
/// aggregation consumes local models in client order.
Result<std::unique_ptr<Model>> TrainFedAvg(
    const Model& prototype, const std::vector<const FlClient*>& clients,
    const FedAvgConfig& config, TrainingLog* log = nullptr);

/// Process-global cap on concurrent local client trainings inside one
/// TrainFedAvg round. 0 (the default) lets the WorkerBudget decide;
/// 1 forces sequential training. Also readable from the
/// FEDSHAP_FEDAVG_WORKERS environment variable at first use. Not part of
/// any workload fingerprint — the trained model is bit-identical at
/// every setting (tests/fl_fedavg_test.cc pins this).
void SetFedAvgClientParallelism(int max_workers);

/// The current cap set by SetFedAvgClientParallelism (0 = budget-driven).
int FedAvgClientParallelism();

}  // namespace fedshap

#endif  // FEDSHAP_FL_FEDAVG_H_
