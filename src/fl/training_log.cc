#include "fl/training_log.h"

#include <algorithm>

namespace fedshap {

namespace {

/// Adds the weighted average of the subset's deltas for one round onto
/// `params`. Returns false if no subset member participated in the round.
Result<bool> ApplyRoundDeltas(const RoundRecord& round,
                              const std::vector<int>& subset,
                              std::vector<float>& params) {
  double total_weight = 0.0;
  std::vector<std::pair<size_t, double>> member_slots;
  for (size_t slot = 0; slot < round.client_ids.size(); ++slot) {
    const int id = round.client_ids[slot];
    if (std::find(subset.begin(), subset.end(), id) == subset.end()) {
      continue;
    }
    const double w = round.client_weights[slot];
    if (w <= 0.0) continue;
    member_slots.emplace_back(slot, w);
    total_weight += w;
  }
  if (member_slots.empty() || total_weight <= 0.0) return false;
  for (const auto& [slot, weight] : member_slots) {
    const std::vector<float>& delta = round.client_deltas[slot];
    if (delta.size() != params.size()) {
      return Status::InvalidArgument("delta size mismatch in training log");
    }
    const float w = static_cast<float>(weight / total_weight);
    for (size_t p = 0; p < params.size(); ++p) params[p] += w * delta[p];
  }
  return true;
}

}  // namespace

Result<std::vector<float>> ReconstructParameters(
    const TrainingLog& log, const std::vector<int>& client_ids_subset) {
  std::vector<float> params = log.initial_params;
  if (params.empty()) {
    return Status::InvalidArgument("training log has no initial parameters");
  }
  for (const RoundRecord& round : log.rounds) {
    FEDSHAP_ASSIGN_OR_RETURN(bool applied,
                             ApplyRoundDeltas(round, client_ids_subset,
                                              params));
    (void)applied;  // Rounds where no member participated leave params as-is.
  }
  return params;
}

Result<std::vector<float>> ReconstructRoundParameters(
    const TrainingLog& log, int round,
    const std::vector<int>& client_ids_subset) {
  if (round < 0 || round >= log.num_rounds()) {
    return Status::OutOfRange("round index out of range");
  }
  std::vector<float> params = log.rounds[round].global_before;
  FEDSHAP_ASSIGN_OR_RETURN(bool applied,
                           ApplyRoundDeltas(log.rounds[round],
                                            client_ids_subset, params));
  (void)applied;
  return params;
}

}  // namespace fedshap
