#ifndef FEDSHAP_FL_TRAINING_LOG_H_
#define FEDSHAP_FL_TRAINING_LOG_H_

#include <vector>

#include "util/status.h"

namespace fedshap {

/// What the FL server observed in one FedAvg round: the global parameters
/// the round started from, and each participating client's parameter delta
/// (local parameters minus the starting global parameters).
///
/// Gradient-based valuation baselines (OR, lambda-MR, GTG-Shapley, DIG-FL)
/// re-aggregate these recorded deltas to *reconstruct* the model a coalition
/// S would have produced, avoiding extra FL trainings.
struct RoundRecord {
  /// Global parameters the round started from.
  std::vector<float> global_before;
  /// One delta per participating client, aligned with `client_ids`.
  std::vector<std::vector<float>> client_deltas;
  /// Ids of the clients that participated this round.
  std::vector<int> client_ids;
  /// Aggregation weights (local dataset sizes).
  std::vector<double> client_weights;
};

/// Complete record of one FedAvg training run.
struct TrainingLog {
  /// The shared initialization every coalition trains from.
  std::vector<float> initial_params;
  /// Parameters after the final round.
  std::vector<float> final_params;
  /// Per-round observations, in round order.
  std::vector<RoundRecord> rounds;

  /// Number of recorded rounds.
  int num_rounds() const { return static_cast<int>(rounds.size()); }
};

/// Reconstructs the parameters coalition `client_ids_subset` would have
/// reached by replaying only its members' recorded deltas across all rounds:
///
///   params_0 = initial;  params_r = params_{r-1} + sum_{i in S} w_i *
///              delta_{i,r} / sum_{i in S} w_i
///
/// This is the standard gradient-reconstruction used by OR/GTG-style
/// methods. An empty subset reproduces the initial parameters.
Result<std::vector<float>> ReconstructParameters(
    const TrainingLog& log, const std::vector<int>& client_ids_subset);

/// Single-round reconstruction used by per-round schemes (lambda-MR, GTG):
/// applies only round `round`'s deltas of the subset on top of that round's
/// recorded starting parameters.
Result<std::vector<float>> ReconstructRoundParameters(
    const TrainingLog& log, int round,
    const std::vector<int>& client_ids_subset);

}  // namespace fedshap

#endif  // FEDSHAP_FL_TRAINING_LOG_H_
