#include "fl/utility_cache.h"

#include <atomic>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

UtilityCache::UtilityCache(const UtilityFunction* fn) : fn_(fn) {
  FEDSHAP_CHECK(fn != nullptr);
}

Result<UtilityRecord> UtilityCache::Get(const Coalition& coalition) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(coalition);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Compute outside the lock; underlying functions are thread-safe and
  // deterministic, so a racing duplicate computation is wasteful but
  // harmless (both produce the same record).
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(double utility, fn_->Evaluate(coalition));
  UtilityRecord record{utility, timer.ElapsedSeconds()};
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.emplace(coalition, record);
  if (inserted) {
    ++misses_;
    total_compute_seconds_ += record.cost_seconds;
  } else {
    ++hits_;
  }
  return it->second;
}

Status UtilityCache::Prefetch(const std::vector<Coalition>& coalitions,
                              ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (const Coalition& c : coalitions) {
      FEDSHAP_ASSIGN_OR_RETURN(UtilityRecord unused, Get(c));
      (void)unused;
    }
    return Status::OK();
  }
  std::atomic<bool> failed{false};
  pool->ParallelFor(static_cast<int>(coalitions.size()), [&](int i) {
    Result<UtilityRecord> r = Get(coalitions[i]);
    if (!r.ok()) failed.store(true, std::memory_order_relaxed);
  });
  if (failed.load()) {
    return Status::Internal("a prefetched utility evaluation failed");
  }
  return Status::OK();
}

void UtilityCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  total_compute_seconds_ = 0.0;
}

size_t UtilityCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t UtilityCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t UtilityCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

double UtilityCache::total_compute_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_compute_seconds_;
}

Result<double> UtilitySession::Evaluate(const Coalition& coalition) {
  FEDSHAP_ASSIGN_OR_RETURN(UtilityRecord record, cache_->Get(coalition));
  ++num_evaluations_;
  if (seen_.insert(coalition).second) {
    charged_seconds_ += record.cost_seconds;
  }
  return record.utility;
}

}  // namespace fedshap
