#include "fl/utility_cache.h"

#include <algorithm>
#include <atomic>

#include "fl/utility_store.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

UtilityCache::UtilityCache(const UtilityFunction* fn) : fn_(fn) {
  FEDSHAP_CHECK(fn != nullptr);
}

Result<UtilityRecord> UtilityCache::Get(const Coalition& coalition,
                                        bool* fresh) {
  if (fresh != nullptr) *fresh = false;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = entries_.find(coalition);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
    // Single-flight: first asker computes, racers wait for its result
    // instead of duplicating a full FL training.
    if (inflight_.insert(coalition).second) break;
    inflight_done_.wait(lock);
  }
  UtilityStore* store = store_;
  lock.unlock();
  // Read-through: the attached store may already hold this coalition
  // from an earlier process. A store hit is served with its original
  // training cost and trains nothing; the single-flight slot held here
  // keeps racers from hitting the store (or training) redundantly. Store
  // IO happens outside the cache mutex so concurrent memory hits never
  // stall on disk.
  if (store != nullptr) {
    UtilityRecord stored;
    if (store->Lookup(coalition, &stored)) {
      lock.lock();
      inflight_.erase(coalition);
      inflight_done_.notify_all();
      if (entries_.emplace(coalition, stored).second) {
        ++preloaded_;
        recorded_cost_seconds_ += stored.cost_seconds;
      }
      ++hits_;
      return stored;
    }
  }
  Stopwatch timer;
  Result<double> utility = fn_->Evaluate(coalition);
  const double cost_seconds = timer.ElapsedSeconds();
  lock.lock();
  inflight_.erase(coalition);
  inflight_done_.notify_all();
  // A failed evaluation counts as neither hit nor miss; a waiter finding
  // no entry retakes the in-flight slot and retries the computation.
  if (!utility.ok()) return utility.status();
  if (fresh != nullptr) *fresh = true;
  UtilityRecord record{utility.value(), cost_seconds};
  entries_.emplace(coalition, record);
  ++misses_;
  total_compute_seconds_ += record.cost_seconds;
  recorded_cost_seconds_ += record.cost_seconds;
  // Store IO happens outside the cache mutex: the store is internally
  // synchronized, and an fsync must not stall concurrent hits on the
  // evaluation hot path.
  lock.unlock();
  WriteThrough(store, coalition, record);
  return record;
}

void UtilityCache::WriteThrough(UtilityStore* store,
                                const Coalition& coalition,
                                const UtilityRecord& record) {
  if (store == nullptr) return;
  // Write-through: the freshly trained utility becomes durable via an
  // O(record) append. The byte-counted flush interval bounds how many
  // appended-but-unsynced bytes a crash can lose.
  const size_t appended = store->Put(coalition, record);
  bool should_flush = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (flush_bytes_ > 0) {
      unflushed_bytes_ += appended;
      if (unflushed_bytes_ >= flush_bytes_) {
        unflushed_bytes_ = 0;
        should_flush = true;
      }
    }
  }
  if (should_flush) {
    Status flushed = store->Flush();
    if (!flushed.ok()) {
      FEDSHAP_LOG(Warning) << "utility store flush failed: "
                           << flushed.ToString();
    }
  }
}

void UtilityCache::AttachStore(UtilityStore* store, size_t flush_bytes) {
  FEDSHAP_CHECK(store != nullptr);
  std::lock_guard<std::mutex> lock(mutex_);
  store_ = store;
  flush_bytes_ = flush_bytes;
  unflushed_bytes_ = 0;
  preloaded_ = 0;
}

Status UtilityCache::Prefetch(const std::vector<Coalition>& coalitions,
                              ThreadPool* pool,
                              std::vector<uint8_t>* fresh) {
  if (fresh != nullptr) fresh->assign(coalitions.size(), 0);
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (size_t i = 0; i < coalitions.size(); ++i) {
      bool computed = false;
      FEDSHAP_ASSIGN_OR_RETURN(UtilityRecord unused,
                               Get(coalitions[i], &computed));
      (void)unused;
      if (fresh != nullptr) (*fresh)[i] = computed ? 1 : 0;
    }
    return Status::OK();
  }
  // Lease one budget slot per pool worker that will compute, so nested
  // TrainFedAvg client fan-outs see the cores this batch already uses
  // and degrade to sequential instead of oversubscribing (the lease is
  // advisory: the pool's size itself is fixed by its creator).
  WorkerBudget::Lease lease(
      WorkerBudget::Global(),
      std::min(pool->num_threads(), static_cast<int>(coalitions.size())));
  // Capture the *first* failure's real Status (lowest index wins) so
  // callers — and through them service job reports — name the actual
  // cause, and the error matches what a sequential pass would return.
  std::mutex failure_mutex;
  size_t first_failed = coalitions.size();
  Status first_status = Status::OK();
  pool->ParallelFor(static_cast<int>(coalitions.size()), [&](int i) {
    bool computed = false;
    Result<UtilityRecord> r = Get(coalitions[i], &computed);
    if (!r.ok()) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (static_cast<size_t>(i) < first_failed) {
        first_failed = static_cast<size_t>(i);
        first_status = r.status();
      }
    }
    // Each iteration writes only its own slot, so no synchronization is
    // needed beyond ParallelFor's completion barrier.
    if (fresh != nullptr) (*fresh)[i] = computed ? 1 : 0;
  });
  return first_status;
}

Status UtilityCache::PrefetchFused(const std::vector<Coalition>& coalitions,
                                   std::vector<uint8_t>* fresh) {
  if (fresh != nullptr) fresh->assign(coalitions.size(), 0);
  // Claim the single-flight slot of every coalition that is neither
  // cached nor already being computed elsewhere; those are the ones this
  // call may evaluate. Duplicates within `coalitions` claim once.
  std::vector<size_t> claimed;
  UtilityStore* store = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    store = store_;
    for (size_t i = 0; i < coalitions.size(); ++i) {
      if (entries_.find(coalitions[i]) != entries_.end()) continue;
      if (inflight_.insert(coalitions[i]).second) claimed.push_back(i);
    }
  }
  // Read-through first: store hits train nothing and keep their original
  // recorded cost, exactly like Get's miss path.
  std::vector<size_t> misses;
  for (size_t i : claimed) {
    UtilityRecord stored;
    if (store != nullptr && store->Lookup(coalitions[i], &stored)) {
      std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(coalitions[i]);
      inflight_done_.notify_all();
      if (entries_.emplace(coalitions[i], stored).second) {
        ++preloaded_;
        recorded_cost_seconds_ += stored.cost_seconds;
      }
      ++hits_;
    } else {
      misses.push_back(i);
    }
  }
  if (misses.empty()) return Status::OK();
  std::vector<Coalition> batch;
  batch.reserve(misses.size());
  for (size_t i : misses) batch.push_back(coalitions[i]);
  Stopwatch timer;
  Result<std::vector<double>> values = fn_->EvaluateBatchFused(batch);
  // The fused dispatch's wall time is amortized evenly: per-record cost
  // has no per-coalition breakdown once the scoring GEMMs are stacked.
  const double per_record_seconds =
      timer.ElapsedSeconds() / static_cast<double>(misses.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i : misses) inflight_.erase(coalitions[i]);
    inflight_done_.notify_all();
    // On failure no entry is published (mirrors Get: a failed evaluation
    // is neither hit nor miss; retries recompute).
    if (!values.ok()) return values.status();
    for (size_t j = 0; j < misses.size(); ++j) {
      UtilityRecord record{(*values)[j], per_record_seconds};
      entries_.emplace(coalitions[misses[j]], record);
      ++misses_;
      total_compute_seconds_ += per_record_seconds;
      recorded_cost_seconds_ += per_record_seconds;
      if (fresh != nullptr) (*fresh)[misses[j]] = 1;
    }
  }
  for (size_t j = 0; j < misses.size(); ++j) {
    WriteThrough(store, coalitions[misses[j]],
                 UtilityRecord{(*values)[j], per_record_seconds});
  }
  return Status::OK();
}

void UtilityCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
  preloaded_ = 0;
  total_compute_seconds_ = 0.0;
  recorded_cost_seconds_ = 0.0;
  // Also restart the flush-interval pacing: bytes appended before the
  // clear must not make the next epoch's first flush fire early (or,
  // mis-tracked, late past the crash-loss bound).
  unflushed_bytes_ = 0;
}

size_t UtilityCache::unflushed_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unflushed_bytes_;
}

size_t UtilityCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

size_t UtilityCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

size_t UtilityCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

size_t UtilityCache::preloaded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return preloaded_;
}

double UtilityCache::total_compute_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_compute_seconds_;
}

double UtilityCache::recorded_cost_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_cost_seconds_;
}

Result<double> UtilitySession::Evaluate(const Coalition& coalition) {
  return EvaluateInternal(coalition, /*prefetched_fresh=*/false);
}

Result<double> UtilitySession::EvaluateInternal(const Coalition& coalition,
                                                bool prefetched_fresh) {
  bool computed = false;
  FEDSHAP_ASSIGN_OR_RETURN(UtilityRecord record,
                           cache_->Get(coalition, &computed));
  std::lock_guard<std::mutex> lock(mutex_);
  ++num_evaluations_;
  if (seen_.insert(coalition).second) {
    charged_seconds_ += record.cost_seconds;
    // A training counts as this session's own when this evaluation
    // computed it, when the batch prefetch below computed it on this
    // session's behalf before the sequential accounting pass ran, or
    // when a speculative prefetcher posted a credit for it. The cache's
    // single-flight guarantee means exactly one of these can be true per
    // coalition, so the count is exact under any interleaving.
    const bool credited = credits_.erase(coalition) > 0;
    if (credited) ++prefetch_consumed_;
    if (computed || prefetched_fresh || credited) ++fresh_trainings_;
  }
  return record.utility;
}

void UtilitySession::CreditPrefetchedTraining(const Coalition& coalition) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++prefetch_credited_;
  if (seen_.count(coalition) > 0) {
    // The session evaluated the coalition while the prefetcher was still
    // training it (its Get waited on the in-flight slot, so neither
    // `computed` nor a credit attributed the training then). Attribute
    // it now — the training was on this session's behalf.
    ++prefetch_consumed_;
    ++fresh_trainings_;
  } else {
    credits_.insert(coalition);
  }
}

size_t UtilitySession::num_evaluations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return num_evaluations_;
}

size_t UtilitySession::num_distinct() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seen_.size();
}

size_t UtilitySession::num_fresh_trainings() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fresh_trainings_;
}

double UtilitySession::charged_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return charged_seconds_;
}

size_t UtilitySession::prefetch_credited() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return prefetch_credited_;
}

size_t UtilitySession::prefetch_consumed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return prefetch_consumed_;
}

Result<std::vector<double>> UtilitySession::EvaluateBatch(
    const std::vector<Coalition>& coalitions) {
  std::vector<uint8_t> fresh;
  if (fused_ && coalitions.size() > 1) {
    // Fused dispatch: one stacked evaluation for all misses. A failure
    // is deliberately ignored here for the same reason as the pool
    // prefetch below — the sequential pass rediscovers it at the same
    // coalition a sequential run would have.
    (void)cache_->PrefetchFused(coalitions, &fresh);
  } else if (pool_ != nullptr && pool_->num_threads() > 1 &&
             coalitions.size() > 1) {
    // Fan the misses out over the pool. A failure here is deliberately
    // ignored: the sequential pass below rediscovers it at the same
    // coalition a sequential run would have, so the returned error and
    // the *session* accounting are deterministic. (Cache-level stats may
    // still record trainings the pool completed past the failing
    // coalition before the error surfaced.)
    (void)cache_->Prefetch(coalitions, pool_, &fresh);
  }
  std::vector<double> values;
  values.reserve(coalitions.size());
  for (size_t i = 0; i < coalitions.size(); ++i) {
    const bool prefetched_fresh = i < fresh.size() && fresh[i] != 0;
    FEDSHAP_ASSIGN_OR_RETURN(double utility,
                             EvaluateInternal(coalitions[i],
                                              prefetched_fresh));
    values.push_back(utility);
  }
  return values;
}

}  // namespace fedshap
