#ifndef FEDSHAP_FL_UTILITY_STORE_H_
#define FEDSHAP_FL_UTILITY_STORE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "fl/utility_cache.h"
#include "util/coalition.h"
#include "util/serialization.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// On-disk persistence for utility evaluations.
///
/// A full FL training per coalition is the dominant cost of SV-based data
/// valuation — the very observation the paper's IPSS is built on. The
/// in-process UtilityCache already guarantees each coalition is trained
/// once per process; UtilityStore extends that guarantee *across*
/// processes, so a killed table-IV/fig-9 sweep resumes in seconds and
/// repeated bench invocations share a warm cache.

/// Persistent, content-addressed map from coalitions to utility records.
///
/// **Content addressing.** A stored utility is only meaningful for the
/// exact workload that produced it: the same client datasets, model
/// architecture and initialization, and training configuration. Each
/// store file is therefore bound to a 64-bit workload fingerprint
/// (UtilityFunction::Fingerprint()); opening a file whose fingerprint
/// differs fails with FailedPrecondition instead of silently serving
/// utilities from a different experiment.
///
/// **Durability model.** Load-on-open, append-on-miss: Open reads every
/// entry into memory; Put records new entries in memory and marks the
/// store dirty; Flush atomically rewrites the file (write temp + fsync +
/// rename), so a crash at any point leaves the previous complete file
/// intact — a torn write can never be half-loaded because the frame
/// checksum rejects it. Attach the store to a UtilityCache with a flush
/// interval to bound the number of trainings a crash can lose.
///
/// Thread-safe; an instance may back several caches or sessions at once.
class UtilityStore {
 public:
  /// Magic tag of store files ("FSUS" little-endian).
  static constexpr uint32_t kMagic = 0x53555346u;
  /// Current file-format version.
  static constexpr uint32_t kVersion = 1;

  /// Opens (or creates) the store at `path` for the workload identified
  /// by `fingerprint`. A missing file yields an empty store; an existing
  /// file is fully loaded. Fails with FailedPrecondition when the file
  /// was written for a different fingerprint and InvalidArgument when it
  /// is corrupt or not a store file.
  static Result<std::unique_ptr<UtilityStore>> Open(const std::string& path,
                                                    uint64_t fingerprint);

  /// The conventional per-workload path `<stem>.<fingerprint-hex>.fsus`.
  /// Bench binaries run several workloads per invocation; deriving the
  /// file name from the fingerprint gives each workload its own store
  /// under one user-supplied stem.
  static std::string StemPath(const std::string& stem, uint64_t fingerprint);

  /// Looks up `coalition`; fills `*record` and returns true when present.
  bool Lookup(const Coalition& coalition, UtilityRecord* record) const;

  /// Inserts or overwrites the record for `coalition` and marks the store
  /// dirty. Call Flush to persist.
  void Put(const Coalition& coalition, const UtilityRecord& record);

  /// Atomically persists the current contents to the file. No-op when
  /// nothing changed since the last flush.
  Status Flush();

  /// Copies every stored entry into `out` (ordered by coalition).
  void ForEach(const std::function<void(const Coalition&,
                                        const UtilityRecord&)>& fn) const;

  /// Number of entries currently held.
  size_t size() const;
  /// Number of entries loaded from disk at Open time.
  size_t loaded_entries() const { return loaded_entries_; }
  /// True when in-memory contents differ from the file.
  bool dirty() const;
  /// The backing file path.
  const std::string& path() const { return path_; }
  /// The workload fingerprint this store is bound to.
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  UtilityStore(std::string path, uint64_t fingerprint)
      : path_(std::move(path)), fingerprint_(fingerprint) {}

  std::string EncodeLocked() const;

  const std::string path_;
  const uint64_t fingerprint_;
  mutable std::mutex mutex_;
  /// Ordered so the file layout (and hence its checksum) is deterministic
  /// for a given entry set.
  std::map<Coalition, UtilityRecord> entries_;
  size_t loaded_entries_ = 0;
  bool dirty_ = false;
};

/// The standard way a process binds a cache to persistent storage, shared
/// by the bench harness and the examples: derives the workload's store
/// path (StemPath(stem, fn.Fingerprint())), replaces any existing file
/// unless `resume` is set (fresh measurements are the default; resume is
/// the explicit opt-in to trust a previous process's trainings), opens
/// the store and attaches it to `cache` with the given flush interval.
/// Returns the store, which must outlive `cache`'s use of it;
/// `loaded_entries()` tells how warm the start was.
Result<std::unique_ptr<UtilityStore>> OpenAndAttachStore(
    const std::string& stem, bool resume, const UtilityFunction& fn,
    UtilityCache& cache, size_t flush_every = 1);

/// Serializes `coalition` as a varint member count followed by varint
/// member deltas (ascending members encode as first index, then gaps).
void PutCoalition(ByteWriter& writer, const Coalition& coalition);

/// Reads a coalition written by PutCoalition; validates member bounds.
Result<Coalition> GetCoalition(ByteReader& reader);

}  // namespace fedshap

#endif  // FEDSHAP_FL_UTILITY_STORE_H_
