#ifndef FEDSHAP_FL_UTILITY_STORE_H_
#define FEDSHAP_FL_UTILITY_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fl/utility_cache.h"
#include "util/coalition.h"
#include "util/segment_file.h"
#include "util/serialization.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// On-disk persistence for utility evaluations.
///
/// A full FL training per coalition is the dominant cost of SV-based data
/// valuation — the very observation the paper's IPSS is built on. The
/// in-process UtilityCache already guarantees each coalition is trained
/// once per process; UtilityStore extends that guarantee *across*
/// processes, so a killed table-IV/fig-9 sweep resumes in seconds and
/// repeated bench invocations share a warm cache.

/// Point-in-time counters of a segmented UtilityStore, surfaced by
/// `fedshapd --status` and the store-scale benches.
struct UtilityStoreStats {
  /// Live (indexed) records.
  size_t entries = 0;
  /// Sealed, immutable segments.
  size_t sealed_segments = 0;
  /// Sealed segments currently memory-mapped.
  size_t mapped_segments = 0;
  /// Bytes of all sealed segment files on disk.
  uint64_t sealed_bytes = 0;
  /// Bytes of sealed segments currently memory-mapped (<= byte_budget
  /// when a budget is set).
  uint64_t mapped_bytes = 0;
  /// Bytes of the active (append) segment.
  uint64_t active_bytes = 0;
  /// Sealed segments unmapped by the LRU byte-budget eviction.
  size_t evictions = 0;
  /// Sealed segments mapped back in after an eviction.
  size_t remaps = 0;
  /// Background/explicit compactions completed.
  size_t compactions = 0;
  /// The mapped-byte budget in force (0 = unlimited).
  uint64_t byte_budget = 0;
};

/// Persistent, content-addressed map from coalitions to utility records,
/// stored as a directory of immutable, memory-mapped segments.
///
/// **Content addressing.** A stored utility is only meaningful for the
/// exact workload that produced it: the same client datasets, model
/// architecture and initialization, and training configuration. Each
/// store is therefore bound to a 64-bit workload fingerprint
/// (UtilityFunction::Fingerprint()); opening a store whose fingerprint
/// differs fails with FailedPrecondition instead of silently serving
/// utilities from a different experiment.
///
/// **Layout.** The store path is a directory:
///
///   <store>/MANIFEST        framed list of sealed segment ids + the
///                           active segment id (atomically replaced)
///   <store>/seg-NNNNNN.seg  one segment per file (util/segment_file.h)
///
/// Put appends a CRC-framed record to the *active* segment — O(record),
/// never a rewrite of existing data — and Flush is an fsync of the
/// appended tail. When the active segment reaches the rotation size it
/// is *sealed*: a footer holding the segment's coalition->offset index
/// is appended and fsync'd, the manifest is atomically updated, and the
/// segment becomes immutable and memory-mapped. Opening a store reads
/// only the manifest and the sealed footers (never the record pages) plus
/// the active segment's tail, so open cost is O(index), not O(bytes).
///
/// **Crash safety.** A crash at any point leaves every sealed segment
/// valid and at most one torn record at the active segment's tail, which
/// Open detects by per-record CRC and truncates. A crash between sealing
/// and the manifest update is healed at Open (a sealed segment at the
/// manifest's active id is adopted as sealed). A compaction killed
/// mid-swap leaves the old manifest in force; its half-written merge
/// segment is deleted as a stray at the next Open.
///
/// **Compaction.** A background thread merges the sealed segments
/// (dropping superseded duplicate records) into one fresh segment and
/// atomically swaps the manifest, bounding segment count and reclaiming
/// dead bytes without ever blocking Put/Lookup for the duration.
///
/// **Eviction.** With a mapped-byte budget (`FEDSHAP_STORE_BYTES`, or
/// set_byte_budget), cold sealed segments are unmapped LRU-wise so the
/// store serves data sets far larger than RAM at bounded RSS; a lookup
/// into an evicted segment transparently remaps it. Records of the
/// active segment are held in memory until sealed and are never evicted,
/// so an unflushed record always has a live copy.
///
/// **v1 migration.** Open transparently migrates a legacy v1 single-file
/// store (load-on-open, rewrite-on-flush format of PR 2) into the
/// segment layout; every record survives bit-identically.
///
/// Thread-safe; an instance may back several caches or sessions at once.
class UtilityStore {
 public:
  /// Magic tag of v1 store files and v2 segment files ("FSUS" LE).
  static constexpr uint32_t kMagic = 0x53555346u;
  /// Magic tag of the manifest file ("FSUM" little-endian).
  static constexpr uint32_t kManifestMagic = 0x4d555346u;
  /// Current segment/manifest format version.
  static constexpr uint32_t kVersion = 2;
  /// Default rotation size of the active segment.
  static constexpr uint64_t kDefaultSegmentBytes = 256 * 1024;
  /// Seal->compact trigger: sealed segments before a merge is scheduled.
  static constexpr size_t kCompactMinSegments = 4;

  /// Opens (or creates) the store at `path` for the workload identified
  /// by `fingerprint`. A missing path yields an empty store; an existing
  /// segment directory is indexed from its manifest and footers; a
  /// legacy v1 file is migrated in place. Fails with FailedPrecondition
  /// when the store was written for a different fingerprint and
  /// InvalidArgument when it is corrupt or not a store.
  ///
  /// Environment knobs read here: `FEDSHAP_STORE_BYTES` (mapped-byte
  /// budget; plain bytes or K/M/G suffix; 0/unset = unlimited) and
  /// `FEDSHAP_STORE_SEGMENT_BYTES` (active-segment rotation size).
  static Result<std::unique_ptr<UtilityStore>> Open(const std::string& path,
                                                    uint64_t fingerprint);

  /// Joins the background compactor and closes the active segment (the
  /// appended tail is synced by Flush callers; an unsynced tail is at
  /// worst a truncated-at-Open torn record).
  ~UtilityStore();

  /// The conventional per-workload path `<stem>.<fingerprint-hex>.fsus`.
  /// Bench binaries run several workloads per invocation; deriving the
  /// directory name from the fingerprint gives each workload its own
  /// store under one user-supplied stem.
  static std::string StemPath(const std::string& stem, uint64_t fingerprint);

  /// Looks up `coalition`; fills `*record` and returns true when
  /// present. May transparently remap an evicted segment.
  bool Lookup(const Coalition& coalition, UtilityRecord* record);

  /// Appends the record for `coalition` to the active segment and
  /// indexes it (an existing entry is superseded, its dead bytes
  /// reclaimed by a later compaction). Returns the number of bytes
  /// appended — the unit UtilityCache's byte-counted flush interval
  /// accumulates. Call Flush to make the appended tail durable.
  size_t Put(const Coalition& coalition, const UtilityRecord& record);

  /// Fsyncs the active segment's appended tail. O(appended bytes since
  /// the last Flush): never rewrites existing data. No-op when clean.
  Status Flush();

  /// Seals the active segment (if any) and synchronously merges all
  /// sealed segments into one, dropping superseded records. Mostly for
  /// tests and benches; production stores compact in the background.
  Status CompactNow();

  /// Calls `fn` for every stored entry, grouped by segment (order is
  /// otherwise unspecified). O(all record bytes): prefer Lookup.
  void ForEach(const std::function<void(const Coalition&,
                                        const UtilityRecord&)>& fn);

  /// Number of live entries currently indexed.
  size_t size() const;
  /// Number of entries indexed from disk at Open time.
  size_t loaded_entries() const { return loaded_entries_; }
  /// True when appended records have not yet been fsync'd.
  bool dirty() const;
  /// The store directory path.
  const std::string& path() const { return path_; }
  /// The workload fingerprint this store is bound to.
  uint64_t fingerprint() const { return fingerprint_; }
  /// Current segment/byte/eviction counters.
  UtilityStoreStats stats() const;

  /// Overrides the mapped-byte budget (0 = unlimited). Evicts
  /// immediately if the new budget is exceeded.
  void set_byte_budget(uint64_t bytes);
  /// Overrides the active-segment rotation size (min 4 KiB).
  void set_segment_target_bytes(uint64_t bytes);

 private:
  /// One sealed, immutable segment: mapped on demand, unmapped by the
  /// byte-budget eviction.
  struct Segment {
    uint64_t id = 0;
    std::string file_path;
    uint64_t file_bytes = 0;
    std::unique_ptr<SegmentReader> reader;  ///< Null while evicted.
    uint64_t last_access = 0;               ///< LRU tick.
    bool ever_evicted = false;              ///< Distinguishes remaps.
  };
  /// Where a coalition's latest record lives.
  struct Location {
    uint64_t segment_id = 0;
    uint64_t offset = 0;
  };

  UtilityStore(std::string path, uint64_t fingerprint)
      : path_(std::move(path)), fingerprint_(fingerprint) {}

  std::string SegmentPath(uint64_t id) const;
  Status LoadManifestLocked(std::string_view contents);
  Status WriteManifestLocked();
  Status OpenDirectoryLocked();
  Status MigrateV1Locked(std::string_view contents);
  Status EnsureActiveWriterLocked();
  Status SealActiveLocked();
  Result<SegmentReader*> MappedLocked(Segment& segment);
  void EvictOverBudgetLocked(uint64_t keep_id);
  void MaybeStartCompactionLocked();
  Status CompactLocked(std::unique_lock<std::mutex>& lock);
  void WaitForCompactorLocked(std::unique_lock<std::mutex>& lock);
  void BackgroundCompact();

  const std::string path_;
  const uint64_t fingerprint_;
  mutable std::mutex mutex_;

  /// Coalition -> latest record location, over all segments.
  std::unordered_map<Coalition, Location, CoalitionHash> index_;
  /// Sealed segments by id.
  std::map<uint64_t, Segment> sealed_;
  /// Sealed segment ids in age order (the manifest's list): replayed
  /// oldest-first at Open so later duplicates supersede earlier ones.
  std::vector<uint64_t> sealed_order_;

  /// The active (append) segment. Records live in `active_entries_`
  /// until sealed, so unflushed data always has an in-memory copy.
  uint64_t active_id_ = 1;
  uint64_t next_segment_id_ = 2;
  /// Valid byte prefix of an existing active segment file (0 = none);
  /// the lazily created writer resumes — and truncates a torn tail — at
  /// this offset.
  uint64_t active_resume_at_ = 0;
  std::unique_ptr<SegmentWriter> active_writer_;
  std::unordered_map<Coalition, UtilityRecord, CoalitionHash>
      active_entries_;
  std::unordered_map<Coalition, uint64_t, CoalitionHash> active_offsets_;

  uint64_t segment_target_bytes_ = kDefaultSegmentBytes;
  uint64_t byte_budget_ = 0;  ///< 0 = unlimited.
  uint64_t mapped_bytes_ = 0;
  uint64_t access_tick_ = 0;
  size_t loaded_entries_ = 0;
  size_t evictions_ = 0;
  size_t remaps_ = 0;
  size_t compactions_ = 0;

  std::thread compactor_;
  bool compaction_running_ = false;
  bool shutting_down_ = false;
};

/// The standard way a process binds a cache to persistent storage, shared
/// by the bench harness and the examples: derives the workload's store
/// path (StemPath(stem, fn.Fingerprint())), replaces any existing store
/// unless `resume` is set (fresh measurements are the default; resume is
/// the explicit opt-in to trust a previous process's trainings), opens
/// the store and attaches it to `cache` as its read-through/write-through
/// backing with the given byte-counted flush interval (see
/// UtilityCache::AttachStore). Returns the store, which must outlive
/// `cache`'s use of it; `loaded_entries()` tells how warm the start was.
Result<std::unique_ptr<UtilityStore>> OpenAndAttachStore(
    const std::string& stem, bool resume, const UtilityFunction& fn,
    UtilityCache& cache, size_t flush_bytes = 0);

/// Serializes `coalition` as a varint member count followed by varint
/// member deltas (ascending members encode as first index, then gaps).
void PutCoalition(ByteWriter& writer, const Coalition& coalition);

/// Reads a coalition written by PutCoalition; validates member bounds.
Result<Coalition> GetCoalition(ByteReader& reader);

}  // namespace fedshap

#endif  // FEDSHAP_FL_UTILITY_STORE_H_
