#include "fl/client.h"

namespace fedshap {

Result<std::vector<float>> FlClient::LocalUpdate(
    const std::vector<float>& global_params, Model& model,
    const SgdConfig& config, Rng& rng) const {
  FEDSHAP_RETURN_NOT_OK(model.SetParameters(global_params));
  if (data_.empty()) return global_params;
  FEDSHAP_ASSIGN_OR_RETURN(double last_loss,
                           TrainSgd(model, data_, config, rng));
  (void)last_loss;
  return model.GetParameters();
}

}  // namespace fedshap
