#include "fl/utility_store.h"

#include <cstdio>
#include <utility>

#include "util/logging.h"

namespace fedshap {

void PutCoalition(ByteWriter& writer, const Coalition& coalition) {
  const std::vector<int> members = coalition.Members();
  writer.PutVarint(members.size());
  int previous = -1;
  for (int member : members) {
    writer.PutVarint(static_cast<uint64_t>(member - previous - 1));
    previous = member;
  }
}

Result<Coalition> GetCoalition(ByteReader& reader) {
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  if (count > static_cast<uint64_t>(Coalition::kMaxClients)) {
    return Status::InvalidArgument("coalition member count out of range");
  }
  Coalition coalition;
  int previous = -1;
  for (uint64_t j = 0; j < count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t gap, reader.GetVarint());
    const uint64_t member = static_cast<uint64_t>(previous) + 1 + gap;
    if (member >= static_cast<uint64_t>(Coalition::kMaxClients)) {
      return Status::InvalidArgument("coalition member index out of range");
    }
    coalition.Add(static_cast<int>(member));
    previous = static_cast<int>(member);
  }
  return coalition;
}

Result<std::unique_ptr<UtilityStore>> UtilityStore::Open(
    const std::string& path, uint64_t fingerprint) {
  std::unique_ptr<UtilityStore> store(new UtilityStore(path, fingerprint));
  Result<std::string> contents = ReadFileToString(path);
  if (!contents.ok()) {
    if (contents.status().code() == StatusCode::kNotFound) {
      return store;  // fresh store; the file appears on first Flush
    }
    return contents.status();
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::string_view payload,
                           DecodeFramed(kMagic, kVersion, *contents));
  ByteReader reader(payload);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t stored_fingerprint, reader.GetU64());
  if (stored_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        path + " was written for a different workload fingerprint; "
               "refusing to serve its utilities");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  for (uint64_t j = 0; j < count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(reader));
    UtilityRecord record;
    FEDSHAP_ASSIGN_OR_RETURN(record.utility, reader.GetDouble());
    FEDSHAP_ASSIGN_OR_RETURN(record.cost_seconds, reader.GetDouble());
    store->entries_[coalition] = record;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(path + " has trailing bytes");
  }
  if (store->entries_.size() != count) {
    return Status::InvalidArgument(path + " contains duplicate coalitions");
  }
  store->loaded_entries_ = store->entries_.size();
  return store;
}

std::string UtilityStore::StemPath(const std::string& stem,
                                   uint64_t fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return stem + "." + hex + ".fsus";
}

bool UtilityStore::Lookup(const Coalition& coalition,
                          UtilityRecord* record) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(coalition);
  if (it == entries_.end()) return false;
  if (record != nullptr) *record = it->second;
  return true;
}

void UtilityStore::Put(const Coalition& coalition,
                       const UtilityRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[coalition] = record;
  dirty_ = true;
}

std::string UtilityStore::EncodeLocked() const {
  ByteWriter payload;
  payload.PutU64(fingerprint_);
  payload.PutVarint(entries_.size());
  for (const auto& [coalition, record] : entries_) {
    PutCoalition(payload, coalition);
    payload.PutDouble(record.utility);
    payload.PutDouble(record.cost_seconds);
  }
  return EncodeFramed(kMagic, kVersion, payload.bytes());
}

Status UtilityStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dirty_) return Status::OK();
  FEDSHAP_RETURN_NOT_OK(WriteFileAtomic(path_, EncodeLocked()));
  dirty_ = false;
  return Status::OK();
}

void UtilityStore::ForEach(
    const std::function<void(const Coalition&, const UtilityRecord&)>& fn)
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [coalition, record] : entries_) {
    fn(coalition, record);
  }
}

Result<std::unique_ptr<UtilityStore>> OpenAndAttachStore(
    const std::string& stem, bool resume, const UtilityFunction& fn,
    UtilityCache& cache, size_t flush_every) {
  const uint64_t fingerprint = fn.Fingerprint();
  const std::string path = UtilityStore::StemPath(stem, fingerprint);
  if (!resume) std::remove(path.c_str());
  FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<UtilityStore> store,
                           UtilityStore::Open(path, fingerprint));
  cache.AttachStore(store.get(), flush_every);
  return store;
}

size_t UtilityStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool UtilityStore::dirty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dirty_;
}

}  // namespace fedshap
