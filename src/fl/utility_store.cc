#include "fl/utility_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <utility>

#include "util/logging.h"

namespace fedshap {

namespace fs = std::filesystem;

namespace {

/// Suffix of the staging directory a v1->v2 migration builds before the
/// atomic swap; adopted at Open when a crash hit the swap window.
constexpr const char* kMigrateSuffix = ".migrate";

/// Parses a byte-size environment variable: plain bytes or a K/M/G
/// suffix (powers of 1024). Unset/empty/garbage yields `fallback`.
uint64_t ParseByteSizeEnv(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  uint64_t multiplier = 1;
  if (end != nullptr && *end != '\0') {
    switch (*end) {
      case 'k': case 'K': multiplier = 1024ull; break;
      case 'm': case 'M': multiplier = 1024ull * 1024; break;
      case 'g': case 'G': multiplier = 1024ull * 1024 * 1024; break;
      default: return fallback;
    }
  }
  return static_cast<uint64_t>(value) * multiplier;
}

std::string EncodeRecordPayload(const Coalition& coalition,
                                const UtilityRecord& record) {
  ByteWriter payload;
  PutCoalition(payload, coalition);
  payload.PutDouble(record.utility);
  payload.PutDouble(record.cost_seconds);
  return payload.bytes();
}

Result<std::pair<Coalition, UtilityRecord>> DecodeRecordPayload(
    std::string_view payload) {
  ByteReader reader(payload);
  FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(reader));
  UtilityRecord record;
  FEDSHAP_ASSIGN_OR_RETURN(record.utility, reader.GetDouble());
  FEDSHAP_ASSIGN_OR_RETURN(record.cost_seconds, reader.GetDouble());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("utility record has trailing bytes");
  }
  return std::make_pair(coalition, record);
}

/// Builds a sealed segment's footer: its coalition->offset index, in
/// file (offset) order so footers are deterministic.
std::string EncodeFooter(
    std::vector<std::pair<uint64_t, Coalition>> by_offset) {
  std::sort(by_offset.begin(), by_offset.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ByteWriter footer;
  footer.PutVarint(by_offset.size());
  for (const auto& [offset, coalition] : by_offset) {
    PutCoalition(footer, coalition);
    footer.PutVarint(offset);
  }
  return footer.bytes();
}

}  // namespace

void PutCoalition(ByteWriter& writer, const Coalition& coalition) {
  const std::vector<int> members = coalition.Members();
  writer.PutVarint(members.size());
  int previous = -1;
  for (int member : members) {
    writer.PutVarint(static_cast<uint64_t>(member - previous - 1));
    previous = member;
  }
}

Result<Coalition> GetCoalition(ByteReader& reader) {
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  if (count > static_cast<uint64_t>(Coalition::kMaxClients)) {
    return Status::InvalidArgument("coalition member count out of range");
  }
  Coalition coalition;
  int previous = -1;
  for (uint64_t j = 0; j < count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t gap, reader.GetVarint());
    const uint64_t member = static_cast<uint64_t>(previous) + 1 + gap;
    if (member >= static_cast<uint64_t>(Coalition::kMaxClients)) {
      return Status::InvalidArgument("coalition member index out of range");
    }
    coalition.Add(static_cast<int>(member));
    previous = static_cast<int>(member);
  }
  return coalition;
}

// ---------------------------------------------------------------------------
// Open / migration

Result<std::unique_ptr<UtilityStore>> UtilityStore::Open(
    const std::string& path, uint64_t fingerprint) {
  std::unique_ptr<UtilityStore> store(new UtilityStore(path, fingerprint));
  store->byte_budget_ = ParseByteSizeEnv("FEDSHAP_STORE_BYTES", 0);
  store->segment_target_bytes_ = std::max<uint64_t>(
      ParseByteSizeEnv("FEDSHAP_STORE_SEGMENT_BYTES", kDefaultSegmentBytes),
      4096);

  std::unique_lock<std::mutex> lock(store->mutex_);
  std::error_code ec;
  fs::file_status status = fs::status(path, ec);
  if (ec || status.type() == fs::file_type::not_found) {
    // A crash between "remove v1 file" and "rename staging dir" of a
    // migration leaves the data in the staging dir; adopt it.
    const std::string staging = path + kMigrateSuffix;
    if (fs::is_directory(staging, ec)) {
      fs::rename(staging, path, ec);
      if (ec) {
        return Status::Internal("cannot adopt migrated store " + staging +
                                ": " + ec.message());
      }
      FEDSHAP_RETURN_NOT_OK(store->OpenDirectoryLocked());
      return store;
    }
    // Fresh store: the directory and manifest appear on first Put/Flush.
    return store;
  }
  if (status.type() == fs::file_type::regular) {
    FEDSHAP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
    FEDSHAP_RETURN_NOT_OK(store->MigrateV1Locked(contents));
    FEDSHAP_RETURN_NOT_OK(store->OpenDirectoryLocked());
    return store;
  }
  if (status.type() != fs::file_type::directory) {
    return Status::InvalidArgument(path + " is not a utility store");
  }
  FEDSHAP_RETURN_NOT_OK(store->OpenDirectoryLocked());
  return store;
}

Status UtilityStore::MigrateV1Locked(std::string_view contents) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string_view payload,
                           DecodeFramed(kMagic, /*max_version=*/1, contents));
  ByteReader reader(payload);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t stored_fingerprint, reader.GetU64());
  if (stored_fingerprint != fingerprint_) {
    return Status::FailedPrecondition(
        path_ + " was written for a different workload fingerprint; "
                "refusing to serve its utilities");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  std::map<Coalition, UtilityRecord> entries;  // sorted: stable migration
  for (uint64_t j = 0; j < count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(reader));
    UtilityRecord record;
    FEDSHAP_ASSIGN_OR_RETURN(record.utility, reader.GetDouble());
    FEDSHAP_ASSIGN_OR_RETURN(record.cost_seconds, reader.GetDouble());
    entries[coalition] = record;
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(path_ + " has trailing bytes");
  }
  if (entries.size() != count) {
    return Status::InvalidArgument(path_ + " contains duplicate coalitions");
  }

  // Build the segment directory in a staging dir, then atomically swap it
  // in. A crash before the swap leaves the v1 file authoritative; a crash
  // inside the swap window is healed at the next Open (see Open).
  const std::string staging = path_ + kMigrateSuffix;
  std::error_code ec;
  fs::remove_all(staging, ec);
  fs::create_directories(staging, ec);
  if (ec) {
    return Status::Internal("cannot create " + staging + ": " + ec.message());
  }
  {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%06llu.seg", 1ull);
    FEDSHAP_ASSIGN_OR_RETURN(
        std::unique_ptr<SegmentWriter> writer,
        SegmentWriter::Create(staging + "/" + name, kMagic, kVersion,
                              fingerprint_));
    std::vector<std::pair<uint64_t, Coalition>> by_offset;
    by_offset.reserve(entries.size());
    for (const auto& [coalition, record] : entries) {
      FEDSHAP_ASSIGN_OR_RETURN(
          uint64_t offset,
          writer->Append(EncodeRecordPayload(coalition, record)));
      by_offset.emplace_back(offset, coalition);
    }
    FEDSHAP_RETURN_NOT_OK(writer->Seal(EncodeFooter(std::move(by_offset))));
  }
  ByteWriter manifest;
  manifest.PutU64(fingerprint_);
  manifest.PutVarint(/*active_id=*/2);
  manifest.PutVarint(/*sealed count=*/entries.empty() ? 0 : 1);
  if (!entries.empty()) manifest.PutVarint(1);
  FEDSHAP_RETURN_NOT_OK(
      WriteFileAtomic(staging + "/MANIFEST",
                      EncodeFramed(kManifestMagic, kVersion,
                                   manifest.bytes())));
  if (entries.empty()) {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%06llu.seg", 1ull);
    fs::remove(staging + "/" + name, ec);  // no data: drop the empty segment
  }
  fs::remove(path_, ec);
  if (ec) {
    return Status::Internal("cannot remove v1 store " + path_ + ": " +
                            ec.message());
  }
  fs::rename(staging, path_, ec);
  if (ec) {
    return Status::Internal("cannot swap migrated store into " + path_ +
                            ": " + ec.message());
  }
  FEDSHAP_LOG(Info) << "[store] migrated v1 store " << path_ << " ("
                    << entries.size() << " entries) to the segment format";
  return Status::OK();
}

Status UtilityStore::LoadManifestLocked(std::string_view contents) {
  FEDSHAP_ASSIGN_OR_RETURN(std::string_view payload,
                           DecodeFramed(kManifestMagic, kVersion, contents));
  ByteReader reader(payload);
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t stored_fingerprint, reader.GetU64());
  if (stored_fingerprint != fingerprint_) {
    return Status::FailedPrecondition(
        path_ + " was written for a different workload fingerprint; "
                "refusing to serve its utilities");
  }
  FEDSHAP_ASSIGN_OR_RETURN(active_id_, reader.GetVarint());
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, reader.GetVarint());
  sealed_order_.clear();
  for (uint64_t j = 0; j < count; ++j) {
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t id, reader.GetVarint());
    sealed_order_.push_back(id);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(path_ + "/MANIFEST has trailing bytes");
  }
  next_segment_id_ = active_id_ + 1;
  for (uint64_t id : sealed_order_) {
    next_segment_id_ = std::max(next_segment_id_, id + 1);
  }
  return Status::OK();
}

Status UtilityStore::OpenDirectoryLocked() {
  Result<std::string> manifest = ReadFileToString(path_ + "/MANIFEST");
  if (!manifest.ok()) {
    if (manifest.status().code() != StatusCode::kNotFound) {
      return manifest.status();
    }
    // A directory without a manifest is only acceptable when it is empty
    // (a crash between mkdir and the first manifest write).
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(path_, ec)) {
      (void)entry;
      return Status::InvalidArgument(path_ +
                                     " has no MANIFEST; not a utility store");
    }
    return WriteManifestLocked();
  }
  FEDSHAP_RETURN_NOT_OK(LoadManifestLocked(*manifest));

  // Index the sealed segments from their footers (never the record
  // pages), oldest first so a later duplicate supersedes an earlier one.
  for (uint64_t id : sealed_order_) {
    const std::string seg_path = SegmentPath(id);
    FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<SegmentReader> reader,
                             SegmentReader::Open(seg_path, kMagic, kVersion));
    if (!reader->sealed()) {
      return Status::InvalidArgument(seg_path +
                                     " is in the manifest but not sealed");
    }
    if (reader->meta() != fingerprint_) {
      return Status::FailedPrecondition(
          seg_path + " was written for a different workload fingerprint");
    }
    ByteReader footer(reader->footer());
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, footer.GetVarint());
    for (uint64_t j = 0; j < count; ++j) {
      FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(footer));
      FEDSHAP_ASSIGN_OR_RETURN(uint64_t offset, footer.GetVarint());
      index_[coalition] = Location{id, offset};
    }
    if (!footer.AtEnd()) {
      return Status::InvalidArgument(seg_path + " has a malformed footer");
    }
    Segment segment;
    segment.id = id;
    segment.file_path = seg_path;
    segment.file_bytes = reader->file_bytes();
    segment.last_access = ++access_tick_;
    segment.reader = std::move(reader);
    mapped_bytes_ += segment.file_bytes;
    sealed_.emplace(id, std::move(segment));
    EvictOverBudgetLocked(id);  // stay under budget even while opening
  }

  // The active segment: replay its records into memory. A torn tail (the
  // crash signature) is truncated when appends resume; a *sealed* file at
  // the active id means the crash hit between Seal and the manifest
  // write — adopt it as sealed and advance.
  const std::string active_path = SegmentPath(active_id_);
  bool healed = false;
  if (fs::exists(active_path)) {
    FEDSHAP_ASSIGN_OR_RETURN(
        std::unique_ptr<SegmentReader> reader,
        SegmentReader::Open(active_path, kMagic, kVersion));
    if (reader->meta() != fingerprint_) {
      return Status::FailedPrecondition(
          active_path + " was written for a different workload fingerprint");
    }
    if (reader->sealed()) {
      ByteReader footer(reader->footer());
      FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, footer.GetVarint());
      for (uint64_t j = 0; j < count; ++j) {
        FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(footer));
        FEDSHAP_ASSIGN_OR_RETURN(uint64_t offset, footer.GetVarint());
        index_[coalition] = Location{active_id_, offset};
      }
      Segment segment;
      segment.id = active_id_;
      segment.file_path = active_path;
      segment.file_bytes = reader->file_bytes();
      segment.last_access = ++access_tick_;
      segment.reader = std::move(reader);
      mapped_bytes_ += segment.file_bytes;
      sealed_order_.push_back(active_id_);
      sealed_.emplace(active_id_, std::move(segment));
      active_id_ = next_segment_id_++;
      healed = true;
    } else {
      if (reader->torn_tail()) {
        FEDSHAP_LOG(Warning)
            << "[store] " << active_path << " has a torn tail record ("
            << (reader->file_bytes() - reader->data_end())
            << " bytes); truncating at byte " << reader->data_end();
      }
      Status replay = reader->ForEachRecord(
          [&](uint64_t offset, std::string_view payload) -> Status {
            FEDSHAP_ASSIGN_OR_RETURN(auto entry,
                                     DecodeRecordPayload(payload));
            active_entries_[entry.first] = entry.second;
            active_offsets_[entry.first] = offset;
            return Status::OK();
          });
      FEDSHAP_RETURN_NOT_OK(replay);
      active_resume_at_ = reader->data_end();
    }
  }

  // Strays: segment files in neither the manifest nor the active slot are
  // leftovers of a compaction that died before its manifest swap.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0) continue;
    uint64_t id = 0;
    if (std::sscanf(name.c_str(), "seg-%llu.seg",
                    reinterpret_cast<unsigned long long*>(&id)) != 1) {
      continue;
    }
    if (id == active_id_ || sealed_.count(id) != 0) continue;
    FEDSHAP_LOG(Warning) << "[store] removing stray segment " << name
                         << " (interrupted compaction)";
    fs::remove(entry.path(), ec);
  }

  size_t entries = index_.size();
  for (const auto& [coalition, record] : active_entries_) {
    (void)record;
    if (index_.count(coalition) == 0) ++entries;
  }
  loaded_entries_ = entries;
  if (healed) FEDSHAP_RETURN_NOT_OK(WriteManifestLocked());
  return Status::OK();
}

UtilityStore::~UtilityStore() {
  std::unique_lock<std::mutex> lock(mutex_);
  shutting_down_ = true;
  WaitForCompactorLocked(lock);
  if (active_writer_ != nullptr && active_writer_->unsynced_bytes() > 0) {
    Status synced = active_writer_->Sync();  // best effort on clean close
    if (!synced.ok()) {
      FEDSHAP_LOG(Warning) << "[store] final sync failed: "
                           << synced.ToString();
    }
  }
}

std::string UtilityStore::StemPath(const std::string& stem,
                                   uint64_t fingerprint) {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  return stem + "." + hex + ".fsus";
}

std::string UtilityStore::SegmentPath(uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.seg",
                static_cast<unsigned long long>(id));
  return path_ + "/" + name;
}

Status UtilityStore::WriteManifestLocked() {
  std::error_code ec;
  fs::create_directories(path_, ec);
  ByteWriter payload;
  payload.PutU64(fingerprint_);
  payload.PutVarint(active_id_);
  payload.PutVarint(sealed_order_.size());
  for (uint64_t id : sealed_order_) payload.PutVarint(id);
  return WriteFileAtomic(path_ + "/MANIFEST",
                         EncodeFramed(kManifestMagic, kVersion,
                                      payload.bytes()));
}

// ---------------------------------------------------------------------------
// Read / write path

bool UtilityStore::Lookup(const Coalition& coalition, UtilityRecord* record) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Active-segment records are always served from memory: they may not be
  // durable yet, so this in-memory copy is the only trustworthy one.
  auto active_it = active_entries_.find(coalition);
  if (active_it != active_entries_.end()) {
    if (record != nullptr) *record = active_it->second;
    return true;
  }
  auto it = index_.find(coalition);
  if (it == index_.end()) return false;
  auto seg_it = sealed_.find(it->second.segment_id);
  FEDSHAP_CHECK(seg_it != sealed_.end());
  Result<SegmentReader*> reader = MappedLocked(seg_it->second);
  if (!reader.ok()) {
    FEDSHAP_LOG(Warning) << "[store] cannot map segment "
                         << seg_it->second.file_path << ": "
                         << reader.status().ToString();
    return false;
  }
  Result<std::string_view> payload = (*reader)->RecordAt(it->second.offset);
  if (!payload.ok()) {
    FEDSHAP_LOG(Warning) << "[store] bad record in "
                         << seg_it->second.file_path << ": "
                         << payload.status().ToString();
    return false;
  }
  Result<std::pair<Coalition, UtilityRecord>> entry =
      DecodeRecordPayload(*payload);
  if (!entry.ok() || entry->first != coalition) {
    FEDSHAP_LOG(Warning) << "[store] record mismatch in "
                         << seg_it->second.file_path;
    return false;
  }
  if (record != nullptr) *record = entry->second;
  return true;
}

Status UtilityStore::EnsureActiveWriterLocked() {
  if (active_writer_ != nullptr) return Status::OK();
  std::error_code ec;
  fs::create_directories(path_, ec);
  if (ec) {
    return Status::Internal("cannot create store directory " + path_ + ": " +
                            ec.message());
  }
  if (!fs::exists(path_ + "/MANIFEST")) {
    FEDSHAP_RETURN_NOT_OK(WriteManifestLocked());
  }
  const std::string seg_path = SegmentPath(active_id_);
  if (active_resume_at_ > 0) {
    FEDSHAP_ASSIGN_OR_RETURN(
        active_writer_,
        SegmentWriter::OpenForAppend(seg_path, active_resume_at_));
  } else {
    FEDSHAP_ASSIGN_OR_RETURN(
        active_writer_,
        SegmentWriter::Create(seg_path, kMagic, kVersion, fingerprint_));
  }
  return Status::OK();
}

size_t UtilityStore::Put(const Coalition& coalition,
                         const UtilityRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The in-memory copy goes in first: even if every disk write below
  // fails, the record stays servable for the lifetime of this process.
  active_entries_[coalition] = record;
  size_t appended = 0;
  Status status = EnsureActiveWriterLocked();
  if (status.ok()) {
    Result<uint64_t> offset =
        active_writer_->Append(EncodeRecordPayload(coalition, record));
    if (offset.ok()) {
      active_offsets_[coalition] = *offset;
      appended = static_cast<size_t>(active_writer_->bytes() - *offset);
    } else {
      status = offset.status();
    }
  }
  if (!status.ok()) {
    FEDSHAP_LOG(Warning) << "[store] append to " << path_
                         << " failed: " << status.ToString();
    return 0;
  }
  if (active_writer_->bytes() >= segment_target_bytes_) {
    Status sealed = SealActiveLocked();
    if (!sealed.ok()) {
      FEDSHAP_LOG(Warning) << "[store] seal failed: " << sealed.ToString();
    } else {
      MaybeStartCompactionLocked();
    }
  }
  return appended;
}

Status UtilityStore::SealActiveLocked() {
  if (active_writer_ == nullptr || active_offsets_.empty()) {
    return Status::OK();
  }
  std::vector<std::pair<uint64_t, Coalition>> by_offset;
  by_offset.reserve(active_offsets_.size());
  for (const auto& [coalition, offset] : active_offsets_) {
    by_offset.emplace_back(offset, coalition);
  }
  FEDSHAP_RETURN_NOT_OK(
      active_writer_->Seal(EncodeFooter(std::move(by_offset))));

  Segment segment;
  segment.id = active_id_;
  segment.file_path = active_writer_->path();
  segment.file_bytes = active_writer_->bytes();
  segment.last_access = ++access_tick_;
  for (const auto& [coalition, offset] : active_offsets_) {
    index_[coalition] = Location{active_id_, offset};
  }
  sealed_order_.push_back(active_id_);
  sealed_.emplace(active_id_, std::move(segment));
  active_writer_.reset();
  active_entries_.clear();
  active_offsets_.clear();
  active_id_ = next_segment_id_++;
  active_resume_at_ = 0;
  // Seal-then-manifest: if the manifest write is lost to a crash, Open
  // finds a sealed file at the manifest's active id and adopts it.
  return WriteManifestLocked();
}

Status UtilityStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_writer_ == nullptr || active_writer_->unsynced_bytes() == 0) {
    return Status::OK();
  }
  return active_writer_->Sync();
}

// ---------------------------------------------------------------------------
// Mapping / eviction

Result<SegmentReader*> UtilityStore::MappedLocked(Segment& segment) {
  if (segment.reader == nullptr) {
    FEDSHAP_ASSIGN_OR_RETURN(
        segment.reader,
        SegmentReader::Open(segment.file_path, kMagic, kVersion));
    if (!segment.reader->sealed()) {
      segment.reader.reset();
      return Status::InvalidArgument(segment.file_path +
                                     " lost its seal on disk");
    }
    mapped_bytes_ += segment.file_bytes;
    if (segment.ever_evicted) ++remaps_;
    EvictOverBudgetLocked(segment.id);
  }
  segment.last_access = ++access_tick_;
  return segment.reader.get();
}

void UtilityStore::EvictOverBudgetLocked(uint64_t keep_id) {
  while (byte_budget_ > 0 && mapped_bytes_ > byte_budget_) {
    Segment* victim = nullptr;
    for (auto& [id, segment] : sealed_) {
      if (id == keep_id || segment.reader == nullptr) continue;
      if (victim == nullptr || segment.last_access < victim->last_access) {
        victim = &segment;
      }
    }
    if (victim == nullptr) break;  // nothing evictable (keep_id may exceed
                                   // the budget alone; that is the floor)
    mapped_bytes_ -= victim->file_bytes;
    victim->reader.reset();
    victim->ever_evicted = true;
    ++evictions_;
  }
}

// ---------------------------------------------------------------------------
// Compaction

void UtilityStore::MaybeStartCompactionLocked() {
  if (compaction_running_ || shutting_down_) return;
  if (sealed_order_.size() < kCompactMinSegments) return;
  if (compactor_.joinable()) compactor_.join();  // previous run is done
  compaction_running_ = true;
  compactor_ = std::thread([this] { BackgroundCompact(); });
}

void UtilityStore::BackgroundCompact() {
  std::unique_lock<std::mutex> lock(mutex_);
  Status status = CompactLocked(lock);
  if (!status.ok()) {
    FEDSHAP_LOG(Warning) << "[store] compaction of " << path_
                         << " failed: " << status.ToString();
  }
  compaction_running_ = false;
}

void UtilityStore::WaitForCompactorLocked(std::unique_lock<std::mutex>& lock) {
  while (compaction_running_) {
    lock.unlock();
    if (compactor_.joinable()) {
      compactor_.join();
    } else {
      std::this_thread::yield();
    }
    lock.lock();
  }
  if (compactor_.joinable()) {
    lock.unlock();
    compactor_.join();
    lock.lock();
  }
}

Status UtilityStore::CompactLocked(std::unique_lock<std::mutex>& lock) {
  const std::vector<uint64_t> victims = sealed_order_;
  if (victims.size() < 2) return Status::OK();  // nothing worth merging

  // Phase 1 (locked): collect the *live* records of the victim segments —
  // index entries still pointing at them — one victim at a time so the
  // byte budget is respected even while compacting.
  std::map<uint64_t, std::vector<std::pair<Coalition, uint64_t>>> by_segment;
  for (const auto& [coalition, location] : index_) {
    by_segment[location.segment_id].emplace_back(coalition, location.offset);
  }
  std::vector<std::pair<Coalition, std::string>> live;
  for (uint64_t id : victims) {
    auto list_it = by_segment.find(id);
    if (list_it == by_segment.end()) continue;
    auto seg_it = sealed_.find(id);
    FEDSHAP_CHECK(seg_it != sealed_.end());
    FEDSHAP_ASSIGN_OR_RETURN(SegmentReader * reader,
                             MappedLocked(seg_it->second));
    for (const auto& [coalition, offset] : list_it->second) {
      FEDSHAP_ASSIGN_OR_RETURN(std::string_view payload,
                               reader->RecordAt(offset));
      live.emplace_back(coalition, std::string(payload));
    }
  }
  std::sort(live.begin(), live.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const uint64_t merge_id = next_segment_id_++;
  const std::string merge_path = SegmentPath(merge_id);

  // Phase 2 (unlocked): write the merged segment. Put/Lookup proceed
  // concurrently; they cannot touch seg-<merge_id>.
  lock.unlock();
  auto write_merged = [&]() -> Status {
    FEDSHAP_ASSIGN_OR_RETURN(
        std::unique_ptr<SegmentWriter> writer,
        SegmentWriter::Create(merge_path, kMagic, kVersion, fingerprint_));
    std::vector<std::pair<uint64_t, Coalition>> by_offset;
    by_offset.reserve(live.size());
    for (auto& [coalition, payload] : live) {
      FEDSHAP_ASSIGN_OR_RETURN(uint64_t offset, writer->Append(payload));
      by_offset.emplace_back(offset, coalition);
    }
    return writer->Seal(EncodeFooter(by_offset));
  };
  Status written = write_merged();
  lock.lock();
  if (!written.ok()) {
    std::error_code ec;
    fs::remove(merge_path, ec);
    return written;
  }

  // Phase 3 (locked): swap. Only index entries *still* pointing at a
  // victim move to the merged segment — anything superseded while we were
  // unlocked keeps its newer location. The manifest write is the atomic
  // commit point; a crash before it leaves the old manifest in force and
  // the merged file as a stray the next Open deletes.
  std::error_code ec;
  uint64_t merged_bytes = fs::file_size(merge_path, ec);
  if (ec) {
    return Status::Internal("cannot stat merged segment " + merge_path);
  }
  {
    FEDSHAP_ASSIGN_OR_RETURN(
        std::unique_ptr<SegmentReader> reader,
        SegmentReader::Open(merge_path, kMagic, kVersion));
    ByteReader footer(reader->footer());
    FEDSHAP_ASSIGN_OR_RETURN(uint64_t count, footer.GetVarint());
    for (uint64_t j = 0; j < count; ++j) {
      FEDSHAP_ASSIGN_OR_RETURN(Coalition coalition, GetCoalition(footer));
      FEDSHAP_ASSIGN_OR_RETURN(uint64_t offset, footer.GetVarint());
      auto it = index_.find(coalition);
      if (it == index_.end()) continue;
      bool still_in_victim = false;
      for (uint64_t id : victims) {
        if (it->second.segment_id == id) { still_in_victim = true; break; }
      }
      if (still_in_victim) it->second = Location{merge_id, offset};
    }
    Segment segment;
    segment.id = merge_id;
    segment.file_path = merge_path;
    segment.file_bytes = merged_bytes;
    segment.last_access = ++access_tick_;
    segment.reader = std::move(reader);
    mapped_bytes_ += segment.file_bytes;
    sealed_.emplace(merge_id, std::move(segment));
  }
  std::vector<uint64_t> new_order;
  new_order.push_back(merge_id);  // merged data predates later seals
  for (uint64_t id : sealed_order_) {
    bool is_victim = false;
    for (uint64_t v : victims) {
      if (id == v) { is_victim = true; break; }
    }
    if (!is_victim) new_order.push_back(id);
  }
  sealed_order_ = std::move(new_order);
  FEDSHAP_RETURN_NOT_OK(WriteManifestLocked());
  for (uint64_t id : victims) {
    auto it = sealed_.find(id);
    if (it == sealed_.end()) continue;
    if (it->second.reader != nullptr) mapped_bytes_ -= it->second.file_bytes;
    sealed_.erase(it);
    fs::remove(SegmentPath(id), ec);
  }
  ++compactions_;
  EvictOverBudgetLocked(merge_id);
  return Status::OK();
}

Status UtilityStore::CompactNow() {
  std::unique_lock<std::mutex> lock(mutex_);
  WaitForCompactorLocked(lock);
  FEDSHAP_RETURN_NOT_OK(SealActiveLocked());
  compaction_running_ = true;  // block a concurrent background start
  Status status = CompactLocked(lock);
  compaction_running_ = false;
  return status;
}

// ---------------------------------------------------------------------------
// Iteration / accounting

void UtilityStore::ForEach(
    const std::function<void(const Coalition&, const UtilityRecord&)>& fn) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Grouped by segment so each is mapped once even under a byte budget.
  std::map<uint64_t, std::vector<std::pair<uint64_t, Coalition>>> by_segment;
  for (const auto& [coalition, location] : index_) {
    if (active_entries_.count(coalition) != 0) continue;  // shadowed
    by_segment[location.segment_id].emplace_back(location.offset, coalition);
  }
  for (auto& [id, list] : by_segment) {
    std::sort(list.begin(), list.end());
    auto seg_it = sealed_.find(id);
    FEDSHAP_CHECK(seg_it != sealed_.end());
    Result<SegmentReader*> reader = MappedLocked(seg_it->second);
    if (!reader.ok()) {
      FEDSHAP_LOG(Warning) << "[store] ForEach skipping segment "
                           << seg_it->second.file_path << ": "
                           << reader.status().ToString();
      continue;
    }
    for (const auto& [offset, coalition] : list) {
      Result<std::string_view> payload = (*reader)->RecordAt(offset);
      if (!payload.ok()) continue;
      Result<std::pair<Coalition, UtilityRecord>> entry =
          DecodeRecordPayload(*payload);
      if (!entry.ok()) continue;
      fn(coalition, entry->second);
    }
  }
  std::vector<std::pair<Coalition, UtilityRecord>> active(
      active_entries_.begin(), active_entries_.end());
  std::sort(active.begin(), active.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [coalition, record] : active) {
    fn(coalition, record);
  }
}

size_t UtilityStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = index_.size();
  for (const auto& [coalition, record] : active_entries_) {
    (void)record;
    if (index_.count(coalition) == 0) ++count;
  }
  return count;
}

bool UtilityStore::dirty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_writer_ != nullptr && active_writer_->unsynced_bytes() > 0;
}

UtilityStoreStats UtilityStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  UtilityStoreStats stats;
  stats.entries = index_.size();
  for (const auto& [coalition, record] : active_entries_) {
    (void)record;
    if (index_.count(coalition) == 0) ++stats.entries;
  }
  stats.sealed_segments = sealed_.size();
  for (const auto& [id, segment] : sealed_) {
    (void)id;
    stats.sealed_bytes += segment.file_bytes;
    if (segment.reader != nullptr) ++stats.mapped_segments;
  }
  stats.mapped_bytes = mapped_bytes_;
  stats.active_bytes =
      active_writer_ != nullptr ? active_writer_->bytes() : active_resume_at_;
  stats.evictions = evictions_;
  stats.remaps = remaps_;
  stats.compactions = compactions_;
  stats.byte_budget = byte_budget_;
  return stats;
}

void UtilityStore::set_byte_budget(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  byte_budget_ = bytes;
  EvictOverBudgetLocked(/*keep_id=*/0);
}

void UtilityStore::set_segment_target_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  segment_target_bytes_ = std::max<uint64_t>(bytes, 4096);
}

Result<std::unique_ptr<UtilityStore>> OpenAndAttachStore(
    const std::string& stem, bool resume, const UtilityFunction& fn,
    UtilityCache& cache, size_t flush_bytes) {
  const uint64_t fingerprint = fn.Fingerprint();
  const std::string path = UtilityStore::StemPath(stem, fingerprint);
  if (!resume) {
    std::error_code ec;
    fs::remove_all(path, ec);  // v2 stores are directories, v1 were files
  }
  FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<UtilityStore> store,
                           UtilityStore::Open(path, fingerprint));
  cache.AttachStore(store.get(), flush_bytes);
  return store;
}

}  // namespace fedshap
