#ifndef FEDSHAP_FL_SERVER_H_
#define FEDSHAP_FL_SERVER_H_

#include <vector>

#include "util/status.h"

namespace fedshap {

/// FedAvg aggregation: the weighted average of client parameter vectors,
/// with weights proportional to local dataset sizes (McMahan et al., 2017).
///
/// `client_params` must be non-empty vectors of equal length; `weights`
/// must be non-negative with a positive sum. Clients with weight zero are
/// ignored.
Result<std::vector<float>> FedAvgAggregate(
    const std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights);

}  // namespace fedshap

#endif  // FEDSHAP_FL_SERVER_H_
