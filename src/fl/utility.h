#ifndef FEDSHAP_FL_UTILITY_H_
#define FEDSHAP_FL_UTILITY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "fl/client.h"
#include "fl/fedavg.h"
#include "ml/gbdt.h"
#include "ml/model.h"
#include "util/coalition.h"
#include "util/status.h"

namespace fedshap {

/// The utility function U(.) of SV-based data valuation: maps a coalition of
/// FL clients to the performance of the FL model trained on their joint
/// data (Def. 2 of the paper).
///
/// Implementations must be deterministic per coalition (same coalition ->
/// same utility) and safe to call concurrently; the caching layer relies on
/// both.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// Number of FL clients n in the grand coalition.
  virtual int num_clients() const = 0;

  /// U(M_S): utility of the model trained on coalition `coalition`.
  virtual Result<double> Evaluate(const Coalition& coalition) const = 0;

  /// Evaluates several coalitions through one fused dispatch where the
  /// implementation supports it: trainings stay identical to Evaluate
  /// (bit-for-bit per coalition), but the trained models' test-set
  /// scoring may be stacked into larger GEMM dispatches, amortizing the
  /// per-model kernel overhead that dominates small models. Fused values
  /// agree with per-coalition Evaluate within the kernel tolerance
  /// contract of ml/matrix.h (kKernelAbsTol/kKernelRelTol) — not bitwise,
  /// which is why callers opt in (see UtilitySession::set_fused). The
  /// base implementation is a plain Evaluate loop, so every utility
  /// accepts the fused route; on failure the first failing coalition's
  /// status is returned and no values are produced.
  virtual Result<std::vector<double>> EvaluateBatchFused(
      const std::vector<Coalition>& coalitions) const;

  /// 64-bit content fingerprint of the *workload*: everything that
  /// determines the value of U(S) for every S — client datasets, test
  /// data, model architecture and initialization, training configuration.
  /// Two utility functions with equal fingerprints must agree on every
  /// coalition; persisted utilities (UtilityStore) are addressed by this
  /// value. The base implementation hashes only num_clients() and is
  /// meant for throwaway test utilities; every persistable implementation
  /// overrides it with a full content hash.
  virtual uint64_t Fingerprint() const;
};

/// Which model-quality metric U(.) reports.
enum class UtilityMetric {
  kAccuracy,      ///< Test accuracy (the paper's default).
  kNegativeLoss,  ///< Minus average test loss.
};

/// The real thing: U(S) trains a FedAvg model on the members of S from a
/// fixed initialization and evaluates it on the test set.
class FedAvgUtility : public UtilityFunction {
 public:
  /// `prototype` supplies the architecture and the (already initialized)
  /// shared starting parameters.
  static Result<std::unique_ptr<FedAvgUtility>> Create(
      std::vector<Dataset> client_data, Dataset test_data,
      const Model& prototype, const FedAvgConfig& config,
      UtilityMetric metric = UtilityMetric::kAccuracy);

  int num_clients() const override {
    return static_cast<int>(clients_.size());
  }
  Result<double> Evaluate(const Coalition& coalition) const override;
  /// Trains every coalition exactly as Evaluate would (bit-identical
  /// models), then scores all models with an affine scoring head
  /// (Model::AffineScorer) on the test set through stacked GEMMs: one
  /// X * [W_1^T | ... | W_M^T] product per test chunk instead of M
  /// per-example Predict sweeps. Models without an affine head, and the
  /// negative-loss metric, fall back to per-model scoring.
  Result<std::vector<double>> EvaluateBatchFused(
      const std::vector<Coalition>& coalitions) const override;
  uint64_t Fingerprint() const override;

  /// The i-th FL client (its dataset included).
  const FlClient& client(int i) const { return clients_[i]; }
  /// The shared test set every coalition's model is scored on.
  const Dataset& test_data() const { return test_data_; }
  /// The architecture + shared initialization every training starts from.
  const Model& prototype() const { return *prototype_; }
  /// The FedAvg training configuration.
  const FedAvgConfig& config() const { return config_; }
  /// Which model-quality metric U(.) reports.
  UtilityMetric metric() const { return metric_; }

  /// Evaluates an arbitrary parameter vector of the prototype architecture
  /// on the test set with this utility's metric. Used by gradient-based
  /// baselines to score reconstructed models.
  Result<double> EvaluateParameters(const std::vector<float>& params) const;

 private:
  FedAvgUtility(std::vector<FlClient> clients, Dataset test_data,
                std::unique_ptr<Model> prototype, const FedAvgConfig& config,
                UtilityMetric metric)
      : clients_(std::move(clients)),
        test_data_(std::move(test_data)),
        prototype_(std::move(prototype)),
        config_(config),
        metric_(metric) {}

  std::vector<FlClient> clients_;
  Dataset test_data_;
  std::unique_ptr<Model> prototype_;
  FedAvgConfig config_;
  UtilityMetric metric_;
};

/// XGBoost-style utility for tabular FL (Table V): U(S) fits a GBDT on the
/// merged coalition dataset and reports test accuracy. Gradient-based
/// baselines are not applicable to this utility, as in the paper.
class GbdtUtility : public UtilityFunction {
 public:
  /// Builds the utility over the given client shards and test set.
  static Result<std::unique_ptr<GbdtUtility>> Create(
      std::vector<Dataset> client_data, Dataset test_data,
      const GbdtConfig& config);

  int num_clients() const override {
    return static_cast<int>(client_data_.size());
  }
  Result<double> Evaluate(const Coalition& coalition) const override;
  uint64_t Fingerprint() const override;

 private:
  GbdtUtility(std::vector<Dataset> client_data, Dataset test_data,
              const GbdtConfig& config)
      : client_data_(std::move(client_data)),
        test_data_(std::move(test_data)),
        config_(config) {}

  std::vector<Dataset> client_data_;
  Dataset test_data_;
  GbdtConfig config_;
};

/// Explicit utility table, as in the paper's worked examples (Table I,
/// Fig. 2). Also the workhorse of unit tests.
class TableUtility : public UtilityFunction {
 public:
  /// `values[mask]` is U(S) for the coalition whose members are the set
  /// bits of `mask`; must have exactly 2^n entries. n <= 20.
  static Result<TableUtility> FromValues(int n,
                                         std::vector<double> values);

  /// Builds the table by evaluating `fn` on every subset. n <= 20.
  static Result<TableUtility> FromFunction(
      int n, const std::function<double(const Coalition&)>& fn);

  int num_clients() const override { return n_; }
  Result<double> Evaluate(const Coalition& coalition) const override;
  uint64_t Fingerprint() const override;

 private:
  TableUtility(int n, std::vector<double> values)
      : n_(n), values_(std::move(values)) {}

  /// Index of a coalition in the table (its low 64 bits; n <= 20 so safe).
  static uint64_t MaskOf(const Coalition& coalition);

  int n_;
  std::vector<double> values_;
};

/// Closed-form linear-regression utility from the Donahue & Kleinberg
/// model the paper's theory uses (Lemma 1): with per-client sample count t,
/// feature dimension d and noise mean mu_e,
///
///   E[U(S)] = -mse(|D_S|) = -mu_e * d / (t*|S| - d - 1)
///
/// clamped to -m0 (the initial model's MSE) when the denominator is not
/// positive.
///
/// Noise model (Eq. 8-10 of the paper): the utility is a sum of per-sample
/// errors e_j, and crucially the *same* e_j appear in every coalition
/// containing that sample. We therefore add one per-client noise term
/// eta_i ~ N(0, (noise_scale * t)^2), shared across coalitions:
/// U(S) = mean(S) + sum_{i in S} eta_i. This correlation is what makes
/// Var[U(S u i) - U(S)] = t^2 sigma^2 for MC (only client i's noise
/// survives) versus n * t^2 sigma^2 for CC — the substance of Theorem 2.
/// Noise is drawn deterministically from (seed, client id) so the function
/// stays reproducible; call `Reseed` for a fresh realization in
/// repeated-run variance studies.
class LinearRegressionUtility : public UtilityFunction {
 public:
  /// The closed-form model's parameters (symbols per Lemma 1 / Eq. 8-10).
  struct Params {
    int num_clients = 10;          ///< n.
    int samples_per_client = 50;   ///< t.
    int feature_dim = 5;           ///< d = |x|.
    double noise_mean = 1.0;       ///< mu_e.
    double initial_mse = 10.0;     ///< m0.
    double noise_scale = 0.0;      ///< sigma (per-sample); 0 = deterministic.
  };

  /// Creates the utility with a fixed default noise seed; see Reseed.
  explicit LinearRegressionUtility(const Params& params)
      : params_(params), noise_seed_(0x5eedf00dULL) {}

  int num_clients() const override { return params_.num_clients; }
  Result<double> Evaluate(const Coalition& coalition) const override;
  uint64_t Fingerprint() const override;

  /// Expected (noise-free) utility of a coalition of size k.
  double MeanUtility(int k) const;

  /// Switches to a different noise realization.
  void Reseed(uint64_t seed) { noise_seed_ = seed; }

 private:
  Params params_;
  uint64_t noise_seed_;
};

}  // namespace fedshap

#endif  // FEDSHAP_FL_UTILITY_H_
