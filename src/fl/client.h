#ifndef FEDSHAP_FL_CLIENT_H_
#define FEDSHAP_FL_CLIENT_H_

#include <vector>

#include "data/dataset.h"
#include "ml/model.h"
#include "ml/sgd.h"
#include "util/random.h"
#include "util/status.h"

namespace fedshap {

/// A simulated FL data provider (hospital, bank, ...): owns a local dataset
/// and performs local training when the server hands it the global model.
///
/// The paper simulates providers with multiprocessing + gRPC on one machine;
/// this in-process equivalent exposes the same contract: receive global
/// parameters, run local epochs, return updated parameters.
class FlClient {
 public:
  /// Creates client `id` owning `data`.
  FlClient(int id, Dataset data) : id_(id), data_(std::move(data)) {}

  /// The client's index in the federation (0-based).
  int id() const { return id_; }
  /// Number of local training rows |D_i|.
  size_t num_samples() const { return data_.size(); }
  /// The client's local dataset D_i.
  const Dataset& data() const { return data_; }

  /// Runs `config` epochs of SGD starting from `global_params` and returns
  /// the updated local parameters. `model` is a scratch model of the right
  /// architecture (its parameters are overwritten). A client with no data
  /// returns the global parameters unchanged.
  ///
  /// The local-epoch loop executes each shuffled minibatch through the
  /// model's batched kernel path by default (`config.gradient_mode`);
  /// batch order is drawn from `rng`, so a seeded run is deterministic
  /// under either gradient mode.
  Result<std::vector<float>> LocalUpdate(
      const std::vector<float>& global_params, Model& model,
      const SgdConfig& config, Rng& rng) const;

 private:
  int id_;
  Dataset data_;
};

}  // namespace fedshap

#endif  // FEDSHAP_FL_CLIENT_H_
