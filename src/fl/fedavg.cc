#include "fl/fedavg.h"

#include <atomic>
#include <cstdlib>

#include "fl/server.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fedshap {

namespace {

/// -1 = unread, then the FEDSHAP_FEDAVG_WORKERS value (0 when unset).
std::atomic<int> g_client_parallelism{-1};

int ReadClientParallelism() {
  int cap = g_client_parallelism.load(std::memory_order_relaxed);
  if (cap >= 0) return cap;
  int from_env = 0;
  if (const char* env = std::getenv("FEDSHAP_FEDAVG_WORKERS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) from_env = parsed;
  }
  // Losing this race is fine: both writers store the same env value.
  g_client_parallelism.store(from_env, std::memory_order_relaxed);
  return from_env;
}

}  // namespace

void SetFedAvgClientParallelism(int max_workers) {
  g_client_parallelism.store(max_workers < 0 ? 0 : max_workers,
                             std::memory_order_relaxed);
}

int FedAvgClientParallelism() { return ReadClientParallelism(); }

Result<std::unique_ptr<Model>> TrainFedAvg(
    const Model& prototype, const std::vector<const FlClient*>& clients,
    const FedAvgConfig& config, TrainingLog* log) {
  if (config.rounds < 0) {
    return Status::InvalidArgument("rounds must be >= 0");
  }
  std::unique_ptr<Model> model = prototype.Clone();
  std::vector<float> global = model->GetParameters();
  if (log != nullptr) {
    log->initial_params = global;
    log->rounds.clear();
  }

  // Mix the coalition into the seed so different coalitions draw
  // independent local-SGD noise, deterministically. Clients without data
  // are excluded from the mix: they contribute nothing to training, so a
  // coalition with and without them must produce the *same* model — the
  // exact null-player property (Def. 2(i)).
  uint64_t mixed_seed = config.seed;
  std::vector<const FlClient*> participants;
  for (const FlClient* client : clients) {
    FEDSHAP_CHECK(client != nullptr);
    if (client->num_samples() == 0) continue;  // null player: no update
    mixed_seed = mixed_seed * 0x9E3779B97F4A7C15ULL +
                 static_cast<uint64_t>(client->id()) + 0x7F4A7C15ULL;
    participants.push_back(client);
  }
  Rng rng(mixed_seed);

  if (participants.empty() || config.rounds == 0) {
    if (log != nullptr) log->final_params = global;
    return model;
  }

  // Per-round client fan-out: lease extra compute slots from the global
  // budget (0 granted under an already-saturated outer layer — see the
  // header) and shard the participants over granted+1 workers, the
  // calling thread included. Everything order-sensitive — RNG forks,
  // aggregation, log records, error selection — happens in client order
  // regardless of the shard count, so the trained model is bit-identical
  // at every worker count.
  const size_t num_participants = participants.size();
  int wanted = static_cast<int>(num_participants) - 1;
  const int cap = ReadClientParallelism();
  if (cap > 0) wanted = std::min(wanted, cap - 1);
  WorkerBudget::Lease lease(WorkerBudget::Global(), wanted);
  const int shards = 1 + lease.granted();

  std::vector<std::unique_ptr<Model>> scratch;
  scratch.reserve(shards);
  for (int s = 0; s < shards; ++s) scratch.push_back(prototype.Clone());

  for (int round = 0; round < config.rounds; ++round) {
    // Fork every participant's RNG stream up front, in client order —
    // the exact draw sequence of a sequential round.
    std::vector<Rng> client_rngs;
    client_rngs.reserve(num_participants);
    for (size_t i = 0; i < num_participants; ++i) {
      client_rngs.push_back(rng.Fork());
    }

    std::vector<std::vector<float>> updated(num_participants);
    std::vector<Status> statuses(num_participants, Status::OK());
    auto train_client = [&](size_t i) {
      Result<std::vector<float>> result = participants[i]->LocalUpdate(
          global, *scratch[i % shards], config.local, client_rngs[i]);
      if (result.ok()) {
        updated[i] = std::move(result).value();
      } else {
        statuses[i] = result.status();
      }
    };
    if (shards == 1) {
      for (size_t i = 0; i < num_participants; ++i) train_client(i);
    } else {
      TaskGroup group(SharedTrainingPool());
      for (int s = 1; s < shards; ++s) {
        group.Run([&, s] {
          for (size_t i = s; i < num_participants;
               i += static_cast<size_t>(shards)) {
            train_client(i);
          }
        });
      }
      for (size_t i = 0; i < num_participants;
           i += static_cast<size_t>(shards)) {
        train_client(i);
      }
      group.Wait();
    }
    // First failure in client order — the same error a sequential round
    // would have returned.
    for (size_t i = 0; i < num_participants; ++i) {
      if (!statuses[i].ok()) return statuses[i];
    }

    RoundRecord record;
    if (log != nullptr) record.global_before = global;
    std::vector<std::vector<float>> local_params;
    std::vector<double> weights;
    local_params.reserve(num_participants);
    weights.reserve(num_participants);
    for (size_t i = 0; i < num_participants; ++i) {
      const FlClient* client = participants[i];
      if (log != nullptr) {
        std::vector<float> delta(updated[i].size());
        for (size_t p = 0; p < updated[i].size(); ++p) {
          delta[p] = updated[i][p] - global[p];
        }
        record.client_deltas.push_back(std::move(delta));
        record.client_ids.push_back(client->id());
        record.client_weights.push_back(
            static_cast<double>(client->num_samples()));
      }
      weights.push_back(static_cast<double>(client->num_samples()));
      local_params.push_back(std::move(updated[i]));
    }
    FEDSHAP_ASSIGN_OR_RETURN(global, FedAvgAggregate(local_params, weights));
    if (log != nullptr) log->rounds.push_back(std::move(record));
  }
  FEDSHAP_RETURN_NOT_OK(model->SetParameters(global));
  if (log != nullptr) log->final_params = global;
  return model;
}

}  // namespace fedshap
