#include "fl/fedavg.h"

#include "fl/server.h"
#include "util/logging.h"

namespace fedshap {

Result<std::unique_ptr<Model>> TrainFedAvg(
    const Model& prototype, const std::vector<const FlClient*>& clients,
    const FedAvgConfig& config, TrainingLog* log) {
  if (config.rounds < 0) {
    return Status::InvalidArgument("rounds must be >= 0");
  }
  std::unique_ptr<Model> model = prototype.Clone();
  std::vector<float> global = model->GetParameters();
  if (log != nullptr) {
    log->initial_params = global;
    log->rounds.clear();
  }

  // Mix the coalition into the seed so different coalitions draw
  // independent local-SGD noise, deterministically. Clients without data
  // are excluded from the mix: they contribute nothing to training, so a
  // coalition with and without them must produce the *same* model — the
  // exact null-player property (Def. 2(i)).
  uint64_t mixed_seed = config.seed;
  for (const FlClient* client : clients) {
    FEDSHAP_CHECK(client != nullptr);
    if (client->num_samples() == 0) continue;
    mixed_seed = mixed_seed * 0x9E3779B97F4A7C15ULL +
                 static_cast<uint64_t>(client->id()) + 0x7F4A7C15ULL;
  }
  Rng rng(mixed_seed);

  const bool any_data = [&] {
    for (const FlClient* client : clients) {
      if (client->num_samples() > 0) return true;
    }
    return false;
  }();

  if (clients.empty() || !any_data || config.rounds == 0) {
    if (log != nullptr) log->final_params = global;
    return model;
  }

  std::unique_ptr<Model> scratch = prototype.Clone();
  for (int round = 0; round < config.rounds; ++round) {
    std::vector<std::vector<float>> local_params;
    std::vector<double> weights;
    RoundRecord record;
    if (log != nullptr) record.global_before = global;
    for (const FlClient* client : clients) {
      if (client->num_samples() == 0) continue;  // null player: no update
      Rng client_rng = rng.Fork();
      FEDSHAP_ASSIGN_OR_RETURN(
          std::vector<float> updated,
          client->LocalUpdate(global, *scratch, config.local, client_rng));
      if (log != nullptr) {
        std::vector<float> delta(updated.size());
        for (size_t p = 0; p < updated.size(); ++p) {
          delta[p] = updated[p] - global[p];
        }
        record.client_deltas.push_back(std::move(delta));
        record.client_ids.push_back(client->id());
        record.client_weights.push_back(
            static_cast<double>(client->num_samples()));
      }
      weights.push_back(static_cast<double>(client->num_samples()));
      local_params.push_back(std::move(updated));
    }
    FEDSHAP_ASSIGN_OR_RETURN(global, FedAvgAggregate(local_params, weights));
    if (log != nullptr) log->rounds.push_back(std::move(record));
  }
  FEDSHAP_RETURN_NOT_OK(model->SetParameters(global));
  if (log != nullptr) log->final_params = global;
  return model;
}

}  // namespace fedshap
