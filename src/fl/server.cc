#include "fl/server.h"

namespace fedshap {

Result<std::vector<float>> FedAvgAggregate(
    const std::vector<std::vector<float>>& client_params,
    const std::vector<double>& weights) {
  if (client_params.empty()) {
    return Status::InvalidArgument("no client parameters to aggregate");
  }
  if (client_params.size() != weights.size()) {
    return Status::InvalidArgument("weights/params count mismatch");
  }
  const size_t dim = client_params[0].size();
  double total_weight = 0.0;
  for (size_t i = 0; i < client_params.size(); ++i) {
    if (client_params[i].size() != dim) {
      return Status::InvalidArgument("client parameter size mismatch");
    }
    if (weights[i] < 0.0) {
      return Status::InvalidArgument("negative aggregation weight");
    }
    total_weight += weights[i];
  }
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("aggregation weights sum to zero");
  }
  std::vector<float> aggregated(dim, 0.0f);
  for (size_t i = 0; i < client_params.size(); ++i) {
    const float w = static_cast<float>(weights[i] / total_weight);
    if (w == 0.0f) continue;
    const std::vector<float>& params = client_params[i];
    for (size_t p = 0; p < dim; ++p) aggregated[p] += w * params[p];
  }
  return aggregated;
}

}  // namespace fedshap
