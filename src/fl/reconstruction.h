#ifndef FEDSHAP_FL_RECONSTRUCTION_H_
#define FEDSHAP_FL_RECONSTRUCTION_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "fl/training_log.h"
#include "fl/utility.h"
#include "util/coalition.h"
#include "util/status.h"

namespace fedshap {

/// Shared substrate of the gradient-based valuation baselines (OR, lambda-MR,
/// GTG-Shapley, DIG-FL): trains the grand coalition *once* while recording
/// per-round client deltas, then answers "what would coalition S's model
/// look like" by re-aggregating recorded deltas — no further FL training.
///
/// Reconstructed-model utilities are memoized; reconstruction+evaluation is
/// cheap relative to training but O(2^n) calls add up for the exact-SV-style
/// baselines.
class ReconstructionContext {
 public:
  /// Trains the grand coalition of `utility` with logging. The utility
  /// object must outlive the context.
  static Result<std::unique_ptr<ReconstructionContext>> Create(
      const FedAvgUtility& utility);

  /// Number of FL clients n of the underlying utility.
  int num_clients() const { return utility_->num_clients(); }
  /// Number of recorded FedAvg rounds.
  int num_rounds() const { return log_.num_rounds(); }
  /// The recorded grand-coalition training log.
  const TrainingLog& log() const { return log_; }

  /// Wall-clock cost of the single grand-coalition training.
  double grand_training_seconds() const { return grand_training_seconds_; }

  /// Number of reconstructed models evaluated so far (memoized calls count
  /// once).
  size_t num_reconstructions() const { return cache_.size(); }

  /// U of the model reconstructed for S by replaying S's deltas across all
  /// rounds (OR-style full-trajectory reconstruction).
  Result<double> EvaluateReconstructed(const Coalition& coalition);

  /// U of the *actual* global model after `round` rounds (round == 0 gives
  /// the initial model). Used for between-round truncation / DIG-FL.
  Result<double> EvaluateGlobalAfterRound(int round);

  /// U of the model obtained by applying only round `round`'s recorded
  /// deltas of S on top of that round's starting parameters (per-round
  /// schemes: lambda-MR, GTG-Shapley).
  Result<double> EvaluateRoundSubset(int round, const Coalition& coalition);

 private:
  ReconstructionContext(const FedAvgUtility* utility, TrainingLog log,
                        double grand_training_seconds)
      : utility_(utility),
        log_(std::move(log)),
        grand_training_seconds_(grand_training_seconds) {}

  struct Key {
    int mode;  // 0 = full trajectory, 1 = global prefix, 2 = single round
    int round;
    Coalition coalition;
    bool operator==(const Key& other) const {
      return mode == other.mode && round == other.round &&
             coalition == other.coalition;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      return key.coalition.Hash() * 1000003u +
             static_cast<size_t>(key.mode) * 31u +
             static_cast<size_t>(key.round);
    }
  };

  Result<double> Memoized(const Key& key,
                          const std::function<Result<double>()>& compute);

  const FedAvgUtility* utility_;
  TrainingLog log_;
  double grand_training_seconds_;
  std::unordered_map<Key, double, KeyHash> cache_;
};

}  // namespace fedshap

#endif  // FEDSHAP_FL_RECONSTRUCTION_H_
