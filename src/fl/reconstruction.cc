#include "fl/reconstruction.h"

#include "util/logging.h"
#include "util/stopwatch.h"

namespace fedshap {

Result<std::unique_ptr<ReconstructionContext>> ReconstructionContext::Create(
    const FedAvgUtility& utility) {
  std::vector<const FlClient*> members;
  for (int i = 0; i < utility.num_clients(); ++i) {
    members.push_back(&utility.client(i));
  }
  TrainingLog log;
  Stopwatch timer;
  FEDSHAP_ASSIGN_OR_RETURN(
      std::unique_ptr<Model> trained,
      TrainFedAvg(utility.prototype(), members, utility.config(), &log));
  (void)trained;  // The log captures everything the baselines need.
  const double seconds = timer.ElapsedSeconds();
  return std::unique_ptr<ReconstructionContext>(
      new ReconstructionContext(&utility, std::move(log), seconds));
}

Result<double> ReconstructionContext::Memoized(
    const Key& key, const std::function<Result<double>()>& compute) {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  FEDSHAP_ASSIGN_OR_RETURN(double value, compute());
  cache_.emplace(key, value);
  return value;
}

Result<double> ReconstructionContext::EvaluateReconstructed(
    const Coalition& coalition) {
  return Memoized(Key{0, -1, coalition}, [&]() -> Result<double> {
    FEDSHAP_ASSIGN_OR_RETURN(
        std::vector<float> params,
        ReconstructParameters(log_, coalition.Members()));
    return utility_->EvaluateParameters(params);
  });
}

Result<double> ReconstructionContext::EvaluateGlobalAfterRound(int round) {
  if (round < 0 || round > num_rounds()) {
    return Status::OutOfRange("round out of range");
  }
  return Memoized(Key{1, round, Coalition()}, [&]() -> Result<double> {
    if (round == 0) return utility_->EvaluateParameters(log_.initial_params);
    if (round == num_rounds()) {
      return utility_->EvaluateParameters(log_.final_params);
    }
    return utility_->EvaluateParameters(log_.rounds[round].global_before);
  });
}

Result<double> ReconstructionContext::EvaluateRoundSubset(
    int round, const Coalition& coalition) {
  if (round < 0 || round >= num_rounds()) {
    return Status::OutOfRange("round out of range");
  }
  return Memoized(Key{2, round, coalition}, [&]() -> Result<double> {
    FEDSHAP_ASSIGN_OR_RETURN(
        std::vector<float> params,
        ReconstructRoundParameters(log_, round, coalition.Members()));
    return utility_->EvaluateParameters(params);
  });
}

}  // namespace fedshap
