#ifndef FEDSHAP_UTIL_SERIALIZATION_H_
#define FEDSHAP_UTIL_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace fedshap {

/// \file
/// Versioned binary serialization primitives shared by every on-disk
/// artifact of the library (the persistent UtilityStore, resumable-sweep
/// snapshots). The design goals are the ones persistence forces on us:
///
///  - **Self-describing frames.** Every file is `magic + version +
///    crc32(payload) + payload`, so a reader can reject foreign files,
///    newer formats, and bit rot before parsing a single field.
///  - **Compactness.** Non-negative integers are LEB128 varints; a small
///    coalition costs a handful of bytes, not a fixed-width word.
///  - **Exactness.** Doubles round-trip bit-for-bit (IEEE-754 bits in
///    little-endian order), which resumable estimators rely on for
///    "resumed run == uninterrupted run" equivalence.
///  - **Crash safety.** WriteFileAtomic writes a temp file in the target
///    directory and renames it into place; a crash leaves either the old
///    file or the new one, never a torn hybrid.

/// Append-only encoder producing a byte string.
///
/// All multi-byte fixed-width values are written little-endian regardless
/// of host order, so files transfer between machines.
class ByteWriter {
 public:
  /// Appends a single byte.
  void PutU8(uint8_t value);
  /// Appends a fixed-width 32-bit value (little-endian).
  void PutU32(uint32_t value);
  /// Appends a fixed-width 64-bit value (little-endian).
  void PutU64(uint64_t value);
  /// Appends an unsigned LEB128 varint (1 byte for values < 128).
  void PutVarint(uint64_t value);
  /// Appends the IEEE-754 bits of `value`; round-trips exactly, NaNs and
  /// signed zeros included.
  void PutDouble(double value);
  /// Appends a varint length followed by the raw bytes.
  void PutString(std::string_view value);

  /// The bytes written so far.
  const std::string& bytes() const { return bytes_; }
  /// Number of bytes written so far.
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

/// Bounds-checked decoder over a byte string.
///
/// Every getter returns OutOfRange instead of reading past the end, so a
/// truncated file surfaces as a clean error rather than undefined
/// behavior. The reader does not own the data; the underlying buffer must
/// outlive it.
class ByteReader {
 public:
  /// Wraps `data` without copying it.
  explicit ByteReader(std::string_view data) : data_(data) {}

  /// Reads a single byte.
  Result<uint8_t> GetU8();
  /// Reads a fixed-width little-endian 32-bit value.
  Result<uint32_t> GetU32();
  /// Reads a fixed-width little-endian 64-bit value.
  Result<uint64_t> GetU64();
  /// Reads an unsigned LEB128 varint; rejects encodings longer than 10
  /// bytes (the maximum for 64 bits).
  Result<uint64_t> GetVarint();
  /// Reads a double written by ByteWriter::PutDouble.
  Result<double> GetDouble();
  /// Reads a varint length followed by that many raw bytes.
  Result<std::string> GetString();

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }
  /// True once every byte has been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of `data`.
uint32_t Crc32(std::string_view data);

/// Incremental 64-bit content hasher (FNV-1a core) used for the
/// content-addressing fingerprints of the UtilityStore and for
/// configuration hashes of resumable sweeps. Not cryptographic: it guards
/// against accidental mixups (wrong dataset, changed config), not
/// adversaries.
class Hasher64 {
 public:
  /// Mixes a 64-bit value.
  Hasher64& MixU64(uint64_t value);
  /// Mixes a 32-bit value.
  Hasher64& MixU32(uint32_t value) { return MixU64(value); }
  /// Mixes the IEEE-754 bits of a double (distinguishes -0.0 from 0.0).
  Hasher64& MixDouble(double value);
  /// Mixes raw bytes.
  Hasher64& MixBytes(const void* data, size_t size);
  /// Mixes a length-prefixed string (so "ab","c" != "a","bc").
  Hasher64& MixString(std::string_view value);

  /// The current digest. Mixing after reading digest() is allowed.
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// Wraps `payload` in a self-describing frame:
///
///   [magic u32][version u32][crc32(payload) u32][payload bytes]
///
/// `magic` identifies the artifact kind (e.g. the utility store vs. a
/// sweep snapshot); `version` its format revision.
std::string EncodeFramed(uint32_t magic, uint32_t version,
                         std::string_view payload);

/// Validates and strips the frame produced by EncodeFramed. Fails with
/// InvalidArgument on a wrong magic, FailedPrecondition on a version
/// newer than `max_version`, and with a "corrupted" InvalidArgument when
/// the checksum does not match (truncation, bit flips). On success
/// `*version_out` (when non-null) receives the stored version and the
/// returned view aliases `frame`'s payload bytes.
Result<std::string_view> DecodeFramed(uint32_t magic, uint32_t max_version,
                                      std::string_view frame,
                                      uint32_t* version_out = nullptr);

/// Writes `contents` to `path` crash-safely: the bytes go to a temporary
/// file in the same directory (same filesystem, so the final step is a
/// plain rename) which is fsync'd and renamed over `path`. Concurrent
/// writers of the same path are serialized by a per-process-unique temp
/// name; a crash at any point leaves either the previous file or the new
/// one intact. A crash *between* write and rename can orphan the
/// `<path>.tmp.<pid>` file — it is inert (no loader ever reads it, the
/// next successful write of the same pid reuses it) and safe to delete.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Reads an entire file. NotFound when the file does not exist.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_SERIALIZATION_H_
