#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>

#include "util/status.h"

namespace fedshap {

namespace {

int InitialLogLevel() {
  return static_cast<int>(
      ParseLogLevel(std::getenv("FEDSHAP_LOG_LEVEL"), LogLevel::kInfo));
}

std::atomic<int> g_log_level{InitialLogLevel()};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* mutex = new std::mutex();
  return *mutex;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

LogLevel ParseLogLevel(const char* name, LogLevel fallback) {
  if (name == nullptr) return fallback;
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return fallback;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << stream_.str() << std::endl;
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::cerr << stream_.str() << std::endl;
  }
  std::abort();
}

}  // namespace internal

}  // namespace fedshap
