#include "util/random.h"

#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace fedshap {

uint64_t Rng::UniformInt(uint64_t n) {
  FEDSHAP_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = std::numeric_limits<uint64_t>::max() -
                         std::numeric_limits<uint64_t>::max() % n;
  uint64_t draw;
  do {
    draw = engine_();
  } while (draw >= limit);
  return draw % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  FEDSHAP_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  FEDSHAP_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FEDSHAP_CHECK(w >= 0.0);
    total += w;
  }
  FEDSHAP_CHECK(total > 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // Guard against floating point round-off.
}

double Rng::Gamma(double shape) {
  FEDSHAP_CHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost trick: Gamma(a) = Gamma(a+1) * U^(1/a).
    return Gamma(shape + 1.0) * std::pow(Uniform(), 1.0 / shape);
  }
  // Marsaglia & Tsang (2000) squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x, v;
    do {
      x = Gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(double alpha, int dimension) {
  FEDSHAP_CHECK(alpha > 0.0);
  FEDSHAP_CHECK(dimension >= 1);
  std::vector<double> draw(dimension);
  double total = 0.0;
  for (double& v : draw) {
    v = Gamma(alpha);
    total += v;
  }
  if (total <= 0.0) {
    // Numerically degenerate (possible for tiny alpha): fall back to a
    // one-hot draw, the distribution's own limit.
    std::fill(draw.begin(), draw.end(), 0.0);
    draw[UniformInt(static_cast<uint64_t>(dimension))] = 1.0;
    return draw;
  }
  for (double& v : draw) v /= total;
  return draw;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(perm);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  FEDSHAP_CHECK(k >= 0 && k <= n);
  // Partial Fisher-Yates: O(n) memory but only k swaps.
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (int i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::string Rng::SaveState() const {
  // <random> engines and distributions define stream operators whose
  // output round-trips exactly (values are emitted as integers / hex
  // floats per the standard's requirements). The normal distribution is
  // stateful (it caches the spare Box-Muller deviate), so it must be
  // saved alongside the engine for bit-identical resumption.
  std::ostringstream out;
  out << engine_ << ' ' << unit_ << ' ' << normal_;
  return out.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  std::mt19937_64 engine;
  std::uniform_real_distribution<double> unit;
  std::normal_distribution<double> normal;
  in >> engine >> unit >> normal;
  if (in.fail()) {
    return Status::InvalidArgument("malformed Rng state string");
  }
  engine_ = engine;
  unit_ = unit;
  normal_ = normal;
  return Status::OK();
}

Rng Rng::Fork() {
  // Mix two draws through SplitMix64 so child streams decorrelate from the
  // parent even for adjacent fork calls.
  uint64_t s = engine_() ^ (engine_() * 0x9E3779B97F4A7C15ULL);
  s ^= s >> 30;
  s *= 0xBF58476D1CE4E5B9ULL;
  s ^= s >> 27;
  s *= 0x94D049BB133111EBULL;
  s ^= s >> 31;
  return Rng(s);
}

}  // namespace fedshap
