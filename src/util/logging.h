#ifndef FEDSHAP_UTIL_LOGGING_H_
#define FEDSHAP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fedshap {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimum severity that is emitted; messages below it are dropped.
/// Defaults to kInfo. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Log message that aborts the process on destruction; used by checks.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define FEDSHAP_LOG(level)                                              \
  ::fedshap::internal::LogMessage(::fedshap::LogLevel::k##level,        \
                                  __FILE__, __LINE__)                   \
      .stream()

/// Aborts with a diagnostic when `condition` is false. Active in all build
/// types: valuation invariants guard statistical correctness, not just
/// memory safety, so they are never compiled out.
#define FEDSHAP_CHECK(condition)                                          \
  (condition)                                                             \
      ? static_cast<void>(0)                                              \
      : static_cast<void>(::fedshap::internal::FatalLogMessage(           \
                              __FILE__, __LINE__, #condition)             \
                              .stream())

#define FEDSHAP_CHECK_OK(expr)                                      \
  do {                                                              \
    ::fedshap::Status _st = (expr);                                 \
    if (!_st.ok()) {                                                \
      ::fedshap::internal::FatalLogMessage(__FILE__, __LINE__,      \
                                           #expr)                   \
              .stream()                                             \
          << " -> " << _st.ToString();                              \
    }                                                               \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define FEDSHAP_DCHECK(condition) static_cast<void>(0)
#else
#define FEDSHAP_DCHECK(condition) FEDSHAP_CHECK(condition)
#endif

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_LOGGING_H_
