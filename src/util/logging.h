#ifndef FEDSHAP_UTIL_LOGGING_H_
#define FEDSHAP_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace fedshap {

/// Severity levels for the library logger.
enum class LogLevel {
  kDebug = 0,    ///< Verbose diagnostics.
  kInfo = 1,     ///< Normal progress messages.
  kWarning = 2,  ///< Unexpected but recoverable conditions.
  kError = 3,    ///< Failures worth surfacing even in quiet runs.
};

/// Sets the minimum severity that is emitted; messages below it are
/// dropped. Defaults to kInfo, or to the FEDSHAP_LOG_LEVEL environment
/// variable (`debug`/`info`/`warn`/`error`) when set at process start.
/// Thread-safe.
void SetLogLevel(LogLevel level);
/// The current minimum emitted severity.
LogLevel GetLogLevel();

/// Parses a level name (`debug`/`info`/`warn[ing]`/`error`, case
/// insensitive); returns `fallback` for null or unrecognized input.
/// This is the FEDSHAP_LOG_LEVEL parser, exposed for tests.
LogLevel ParseLogLevel(const char* name, LogLevel fallback);

namespace internal {

/// Stream-style log message that emits on destruction.
class LogMessage {
 public:
  /// Starts a message at `level`, tagged with its source location.
  LogMessage(LogLevel level, const char* file, int line);
  /// Emits the accumulated message (if the level passes the filter).
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  /// The stream to append message text to.
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Log message that aborts the process on destruction; used by checks.
class FatalLogMessage {
 public:
  /// Starts the fatal diagnostic for a failed `condition`.
  FatalLogMessage(const char* file, int line, const char* condition);
  /// Prints the diagnostic and aborts.
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  /// The stream to append diagnostic text to.
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

/// Streams a log message at the given severity, e.g.
/// `FEDSHAP_LOG(Warning) << "..."`.
#define FEDSHAP_LOG(level)                                              \
  ::fedshap::internal::LogMessage(::fedshap::LogLevel::k##level,        \
                                  __FILE__, __LINE__)                   \
      .stream()

/// Aborts with a diagnostic when `condition` is false. Active in all build
/// types: valuation invariants guard statistical correctness, not just
/// memory safety, so they are never compiled out.
#define FEDSHAP_CHECK(condition)                                          \
  (condition)                                                             \
      ? static_cast<void>(0)                                              \
      : static_cast<void>(::fedshap::internal::FatalLogMessage(           \
                              __FILE__, __LINE__, #condition)             \
                              .stream())

/// Aborts with the status text when `expr` yields a non-OK Status.
#define FEDSHAP_CHECK_OK(expr)                                      \
  do {                                                              \
    ::fedshap::Status _st = (expr);                                 \
    if (!_st.ok()) {                                                \
      ::fedshap::internal::FatalLogMessage(__FILE__, __LINE__,      \
                                           #expr)                   \
              .stream()                                             \
          << " -> " << _st.ToString();                              \
    }                                                               \
  } while (0)

#ifdef NDEBUG
/// Debug-only check; compiled out in NDEBUG builds.
#define FEDSHAP_DCHECK(condition) static_cast<void>(0)
#else
/// Debug-only check; compiled out in NDEBUG builds.
#define FEDSHAP_DCHECK(condition) FEDSHAP_CHECK(condition)
#endif

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_LOGGING_H_
