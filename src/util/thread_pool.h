#ifndef FEDSHAP_UTIL_THREAD_POOL_H_
#define FEDSHAP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedshap {

/// Fixed-size worker pool used to evaluate independent FL coalitions in
/// parallel (the paper simulates providers with multiprocessing; we use
/// in-process threads).
///
/// Tasks are `void()` closures; exceptions must not escape them (the library
/// is exception-free). `WaitIdle()` blocks until every submitted task has
/// finished, which gives benches a simple fork/join structure.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);
  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void WaitIdle();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, count), distributing across the pool, and
  /// returns when all iterations finished. Waits only for its own
  /// iterations (via a per-call TaskGroup), so concurrent callers and
  /// unrelated background tasks on the same pool never block each other.
  /// Called from one of this pool's own workers it degrades to an inline
  /// sequential loop instead of deadlocking on itself. Safe to call
  /// repeatedly.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  /// Number of hardware threads, at least 1.
  static int DefaultThreads();

 private:
  friend class TaskGroup;

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int active_ = 0;
  bool shutdown_ = false;
};

/// A caller-owned join handle over a subset of a ThreadPool's tasks.
///
/// `WaitIdle()` waits for *every* task in a pool, which makes a shared
/// pool unusable by concurrent independent callers (each would wait on
/// the others' work). A TaskGroup counts only its own submissions:
/// `Run()` enqueues a task on the pool and `Wait()` blocks until exactly
/// those tasks finished. Several TaskGroups can share one pool without
/// cross-talk — this is how concurrent `TrainFedAvg` calls fan their
/// clients out over the shared training pool.
///
/// Tasks submitted through a group must never themselves submit to or
/// wait on the same pool (no nesting): the group's waiter parks on its
/// own condition variable, so a pool whose workers are all blocked on
/// inner work would deadlock. The FedAvg client fan-out satisfies this
/// by construction (local SGD never re-enters the pool).
class TaskGroup {
 public:
  /// Binds the group to `pool`. A null pool degrades Run() to inline
  /// execution, so callers need no special sequential path.
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  /// Waits for outstanding tasks (a destructor must not leak closures
  /// that reference the caller's stack).
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `task` on the pool (or runs it inline without a pool).
  void Run(std::function<void()> task);

  /// Blocks until every task Run() through this group has completed.
  void Wait();

 private:
  ThreadPool* pool_;
  std::mutex mutex_;
  std::condition_variable done_;
  int pending_ = 0;
};

/// Process-wide accounting of compute-thread slots, so the parallelism
/// layers cannot multiply into oversubscription: coalition batches
/// (UtilitySession::EvaluateBatch), service workers and the per-round
/// client fan-out inside TrainFedAvg all draw from this one budget.
///
/// The budget is advisory admission control, not a lock: `TryAcquire`
/// never blocks, it grants between 0 and `wanted` slots depending on
/// what is free, and the caller shrinks its parallelism to the grant
/// (0 = run sequentially on the calling thread). Outer layers lease
/// slots for their worker threads up front, so an inner TrainFedAvg
/// nested under a saturated EvaluateBatch sees an empty budget and runs
/// its clients sequentially — the hierarchy degrades to exactly one
/// compute thread per core instead of threads^2.
class WorkerBudget {
 public:
  /// A budget of `total` slots (clamped to >= 1).
  explicit WorkerBudget(int total);

  /// The process-wide budget. Sized to DefaultThreads(), overridable
  /// via FEDSHAP_WORKER_BUDGET (useful for pinning benchmarks) before
  /// first use, or SetTotal() afterwards.
  static WorkerBudget& Global();

  /// Total slots.
  int total() const;
  /// Slots currently leased.
  int in_use() const;
  /// Re-sizes the budget (tests; clamped to >= 1). Outstanding leases
  /// keep their grants.
  void SetTotal(int total);

  /// Grants min(wanted, free) slots without blocking; returns the grant
  /// (possibly 0). When a SetTotal() shrink left more slots leased than
  /// the new total, nothing is free and the grant is 0 until enough
  /// leases drain back under the total. Every grant must be returned via
  /// Release.
  int TryAcquire(int wanted);
  /// Returns `granted` slots obtained from TryAcquire. Returning more
  /// than is currently leased is a bug (caught by a debug check); release
  /// clamps at zero rather than driving the accounting negative, so a
  /// double-release cannot silently inflate later grants.
  void Release(int granted);

  /// RAII lease: acquires up to `wanted` slots for the scope.
  class Lease {
   public:
    /// Acquires up to `wanted` slots from `budget`.
    Lease(WorkerBudget& budget, int wanted)
        : budget_(budget), granted_(budget.TryAcquire(wanted)) {}
    /// Returns the granted slots.
    ~Lease() { budget_.Release(granted_); }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    /// Slots this lease holds (0 = nothing free, run sequentially).
    int granted() const { return granted_; }

   private:
    WorkerBudget& budget_;
    int granted_;
  };

 private:
  mutable std::mutex mutex_;
  int total_;
  int in_use_ = 0;
};

/// The lazily-created process-global pool that TrainFedAvg fans
/// per-round client trainings out over (sized to DefaultThreads()).
/// Callers coordinate via TaskGroup and size their fan-out by a
/// WorkerBudget lease; the pool itself is never waited on globally.
/// Intentionally leaked: it must outlive every static destructor that
/// might still train.
ThreadPool* SharedTrainingPool();

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_THREAD_POOL_H_
