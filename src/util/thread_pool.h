#ifndef FEDSHAP_UTIL_THREAD_POOL_H_
#define FEDSHAP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedshap {

/// Fixed-size worker pool used to evaluate independent FL coalitions in
/// parallel (the paper simulates providers with multiprocessing; we use
/// in-process threads).
///
/// Tasks are `void()` closures; exceptions must not escape them (the library
/// is exception-free). `WaitIdle()` blocks until every submitted task has
/// finished, which gives benches a simple fork/join structure.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);
  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void WaitIdle();

  /// Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, count), distributing across the pool, and
  /// returns when all iterations finished. Safe to call repeatedly.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  /// Number of hardware threads, at least 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_THREAD_POOL_H_
