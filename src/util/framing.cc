#include "util/framing.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "util/logging.h"
#include "util/serialization.h"

namespace fedshap {
namespace {

// Local control frames are tiny; anything near this bound means a
// desynchronized stream, not a legitimate message.
constexpr uint32_t kMaxFramePayload = 64u << 20;

void PutU32Le(char* out, uint32_t value) {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

uint32_t GetU32Le(const char* in) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(in);
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

FrameChannel::FrameChannel(int fd) : fd_(fd) {
  // Non-blocking mode: both directions gate on poll() with explicit
  // deadlines, so neither a stalled reader nor a slow writer can park a
  // thread in the kernel indefinitely.
  if (fd_ >= 0) {
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  }
}

FrameChannel::~FrameChannel() {
  if (fd_ >= 0) ::close(fd_);
}

void FrameChannel::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status FrameChannel::WriteAll(const char* data, size_t len) {
  using Clock = std::chrono::steady_clock;
  const int timeout_ms = send_timeout_ms_;
  const Clock::time_point deadline =
      timeout_ms < 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that died must surface as EPIPE, not SIGPIPE —
    // a fork-mode worker has no signal handler to survive one.
    ssize_t n = ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return Status::Internal(std::string("frame send failed: ") +
                              ::strerror(errno));
    }
    // Buffer full (or interrupted): wait for writability within what is
    // left of the send deadline.
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(left.count());
      if (wait_ms <= 0) {
        return Status::DeadlineExceeded(
            "frame send stalled: peer not draining");
      }
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLOUT;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0 && errno != EINTR) {
      return Status::Internal(std::string("frame poll failed: ") +
                              ::strerror(errno));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("frame send stalled: peer not draining");
    }
  }
  return Status::OK();
}

Status FrameChannel::Send(uint32_t type, std::string_view payload) {
  return SendFaulted(type, payload, nullptr);
}

Status FrameChannel::SendFaulted(uint32_t type, std::string_view payload,
                                 FaultInjector* faults) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  bool corrupt = false;
  if (faults != nullptr) {
    if (faults->Fire(FaultSite::kPartition)) {
      FEDSHAP_LOG(Warning) << "[frame] fault: partitioning connection";
      Shutdown();
      return Status::Unavailable("injected network partition");
    }
    if (faults->Fire(FaultSite::kDelayFrame)) {
      const uint64_t delay = faults->param_ms(FaultSite::kDelayFrame);
      FEDSHAP_LOG(Warning) << "[frame] fault: delaying frame " << delay
                           << "ms";
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    corrupt = faults->Fire(FaultSite::kCorruptFrame);
  }
  char header[12];
  PutU32Le(header, static_cast<uint32_t>(payload.size()));
  PutU32Le(header + 4, type);
  PutU32Le(header + 8, Crc32(payload));
  std::string buffer;
  buffer.reserve(sizeof(header) + payload.size());
  buffer.append(header, sizeof(header));
  buffer.append(payload.data(), payload.size());
  if (corrupt && !payload.empty()) {
    // The CRC above covered the clean payload; flipping a byte now means
    // the receiver's check must reject this frame.
    FEDSHAP_LOG(Warning) << "[frame] fault: corrupting frame payload";
    buffer[sizeof(header)] = static_cast<char>(buffer[sizeof(header)] ^ 0x40);
  }

  std::lock_guard<std::mutex> lock(send_mutex_);
  return WriteAll(buffer.data(), buffer.size());
}

Status FrameChannel::ReadExact(char* out, size_t len, int timeout_ms,
                               bool* timed_out, bool* clean_eof) {
  *timed_out = false;
  *clean_eof = false;
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      timeout_ms < 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(timeout_ms);
  size_t got = 0;
  while (got < len) {
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(left.count());
      if (wait_ms < 0) wait_ms = 0;
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("frame poll failed: ") +
                              ::strerror(errno));
    }
    if (ready == 0) {
      *timed_out = true;
      return Status::OK();
    }
    ssize_t n = ::recv(fd_, out + got, len - got, 0);
    if (n < 0) {
      // EAGAIN after POLLIN is possible (spurious wakeup, or a peer
      // reset raced the poll); go wait again rather than fail.
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Internal(std::string("frame recv failed: ") +
                              ::strerror(errno));
    }
    if (n == 0) {
      *clean_eof = true;
      return Status::OK();
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::optional<Frame>> FrameChannel::Recv(int timeout_ms) {
  char header[12];
  bool timed_out = false;
  bool clean_eof = false;
  // Peek for the first byte within the caller's timeout; a timeout before
  // any byte of a frame is a normal idle tick, not an error.
  FEDSHAP_RETURN_NOT_OK(
      ReadExact(header, 1, timeout_ms, &timed_out, &clean_eof));
  if (timed_out) return std::optional<Frame>();
  if (clean_eof) return Status::NotFound("frame channel closed by peer");
  // The rest of the frame must follow promptly on a local socket; a stall
  // here means the peer died mid-write (a torn frame).
  constexpr int kRestOfFrameTimeoutMs = 10000;
  FEDSHAP_RETURN_NOT_OK(ReadExact(header + 1, sizeof(header) - 1,
                                  kRestOfFrameTimeoutMs, &timed_out,
                                  &clean_eof));
  if (timed_out || clean_eof) {
    return Status::OutOfRange("torn frame header");
  }
  const uint32_t payload_len = GetU32Le(header);
  const uint32_t type = GetU32Le(header + 4);
  const uint32_t crc = GetU32Le(header + 8);
  if (payload_len > kMaxFramePayload) {
    return Status::OutOfRange("frame payload length implausible");
  }
  Frame frame;
  frame.type = type;
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    FEDSHAP_RETURN_NOT_OK(ReadExact(frame.payload.data(), payload_len,
                                    kRestOfFrameTimeoutMs, &timed_out,
                                    &clean_eof));
    if (timed_out || clean_eof) {
      return Status::OutOfRange("torn frame payload");
    }
  }
  if (Crc32(frame.payload) != crc) {
    return Status::OutOfRange("frame payload CRC mismatch");
  }
  return std::optional<Frame>(std::move(frame));
}

Result<std::pair<std::unique_ptr<FrameChannel>, std::unique_ptr<FrameChannel>>>
CreateChannelPair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal(std::string("socketpair failed: ") +
                            ::strerror(errno));
  }
  return std::make_pair(std::make_unique<FrameChannel>(fds[0]),
                        std::make_unique<FrameChannel>(fds[1]));
}

}  // namespace fedshap
