#ifndef FEDSHAP_UTIL_STATUS_H_
#define FEDSHAP_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace fedshap {

/// Error categories used across the library. Mirrors the usual database-style
/// status vocabulary (cf. Arrow / RocksDB): a small closed set of codes plus
/// a human-readable message.
enum class StatusCode {
  kOk = 0,              ///< Success.
  kInvalidArgument,     ///< Malformed input or configuration.
  kOutOfRange,          ///< Index/read past a boundary (e.g. truncation).
  kFailedPrecondition,  ///< State does not admit the operation.
  kNotFound,            ///< Referenced entity does not exist.
  kAlreadyExists,       ///< Entity with that identity already present.
  kInternal,            ///< Invariant violation; a bug, not bad input.
  kNotImplemented,      ///< Operation not supported by this build/type.
  kUnavailable,         ///< Transient resource loss (dead peer, no worker);
                        ///< retrying or degrading locally may succeed.
  kDeadlineExceeded,    ///< Operation exceeded its time budget.
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value used at all fallible API boundaries.
///
/// The library does not throw exceptions; functions that can fail return
/// `Status` (or `Result<T>` when they produce a value). `Status` is cheap to
/// copy in the OK case and carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// The success value.
  static Status OK() { return Status(); }
  /// Shorthand for Status(StatusCode::kInvalidArgument, msg).
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kOutOfRange, msg).
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kFailedPrecondition, msg).
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kNotFound, msg).
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kAlreadyExists, msg).
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kInternal, msg).
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kNotImplemented, msg).
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kUnavailable, msg).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Shorthand for Status(StatusCode::kDeadlineExceeded, msg).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True when the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The error message (empty for OK).
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Equal code and message.
  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-status union: either holds a `T` or a non-OK `Status`.
///
/// Usage:
///   Result<Dataset> r = LoadSomething(...);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites readable (`return value;` / `return Status::InvalidArgument(...)`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      // A Result must never hold an OK status without a value; degrade to an
      // explicit internal error instead of an unusable state.
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True when a value (not an error) is held.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns OK when a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// The held value; requires ok().
  const T& value() const& { return std::get<T>(payload_); }
  /// The held value; requires ok().
  T& value() & { return std::get<T>(payload_); }
  /// Moves the held value out; requires ok().
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Dereference to the held value; requires ok().
  const T& operator*() const& { return value(); }
  /// Dereference to the held value; requires ok().
  T& operator*() & { return value(); }
  /// Member access on the held value; requires ok().
  const T* operator->() const { return &value(); }
  /// Member access on the held value; requires ok().
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define FEDSHAP_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::fedshap::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define FEDSHAP_ASSIGN_OR_RETURN(lhs, rexpr)       \
  FEDSHAP_ASSIGN_OR_RETURN_IMPL(                   \
      FEDSHAP_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

/// Implementation detail of FEDSHAP_ASSIGN_OR_RETURN (unique temp name).
#define FEDSHAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// Token-pasting helper for FEDSHAP_ASSIGN_OR_RETURN.
#define FEDSHAP_STATUS_CONCAT_INNER(a, b) a##b
/// Token-pasting helper for FEDSHAP_ASSIGN_OR_RETURN.
#define FEDSHAP_STATUS_CONCAT(a, b) FEDSHAP_STATUS_CONCAT_INNER(a, b)

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_STATUS_H_
