#ifndef FEDSHAP_UTIL_STATUS_H_
#define FEDSHAP_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace fedshap {

/// Error categories used across the library. Mirrors the usual database-style
/// status vocabulary (cf. Arrow / RocksDB): a small closed set of codes plus
/// a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kAlreadyExists,
  kInternal,
  kNotImplemented,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Lightweight success-or-error value used at all fallible API boundaries.
///
/// The library does not throw exceptions; functions that can fail return
/// `Status` (or `Result<T>` when they produce a value). `Status` is cheap to
/// copy in the OK case and carries a message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-status union: either holds a `T` or a non-OK `Status`.
///
/// Usage:
///   Result<Dataset> r = LoadSomething(...);
///   if (!r.ok()) return r.status();
///   Dataset d = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites readable (`return value;` / `return Status::InvalidArgument(...)`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      // A Result must never hold an OK status without a value; degrade to an
      // explicit internal error instead of an unusable state.
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns OK when a value is held, the stored error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates a non-OK status to the caller.
#define FEDSHAP_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::fedshap::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define FEDSHAP_ASSIGN_OR_RETURN(lhs, rexpr)       \
  FEDSHAP_ASSIGN_OR_RETURN_IMPL(                   \
      FEDSHAP_STATUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define FEDSHAP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define FEDSHAP_STATUS_CONCAT_INNER(a, b) a##b
#define FEDSHAP_STATUS_CONCAT(a, b) FEDSHAP_STATUS_CONCAT_INNER(a, b)

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_STATUS_H_
