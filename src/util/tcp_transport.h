#ifndef FEDSHAP_UTIL_TCP_TRANSPORT_H_
#define FEDSHAP_UTIL_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/fault_injector.h"
#include "util/framing.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// TCP transport behind the FrameChannel abstraction. The CRC-framed
/// cluster protocol is transport-agnostic; this file provides the only
/// pieces that are not: a listener, a deadline-bounded connector, and the
/// deterministic reconnect-backoff schedule the worker client follows.
/// Every accepted or connected socket comes back as a plain FrameChannel
/// (non-blocking, bounded sends, SIGPIPE-safe), with TCP_NODELAY (the
/// protocol is small request/response frames; Nagle only adds latency)
/// and SO_KEEPALIVE (a silently vanished peer must eventually read as a
/// dead socket, not an eternal stall) already set.

/// A "host:port" endpoint. Parse() accepts "host:port" with a numeric
/// port; host may be a dotted IPv4 address or a name ("localhost").
struct TcpEndpoint {
  std::string host;
  int port = 0;

  static Result<TcpEndpoint> Parse(const std::string& host_port);
  std::string ToString() const { return host + ":" + std::to_string(port); }
};

/// A listening TCP socket handing out FrameChannels.
class TcpListener {
 public:
  /// Binds and listens on `endpoint` (SO_REUSEADDR; port 0 picks a free
  /// port, readable back via port()).
  static Result<std::unique_ptr<TcpListener>> Listen(
      const TcpEndpoint& endpoint);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accepts one connection, waiting up to `timeout_ms` (negative =
  /// forever). Returns null on timeout, a connected FrameChannel
  /// otherwise. Fails once Shutdown() ran.
  Result<std::unique_ptr<FrameChannel>> Accept(int timeout_ms);

  /// The port actually bound (resolves port 0).
  int port() const { return port_; }

  /// Disables the listening socket (shutdown(2), not close: the
  /// descriptor stays owned until the destructor so a concurrent
  /// Accept() cannot land on a recycled fd); a blocked Accept() fails
  /// promptly. Idempotent, safe to call from any thread.
  void Shutdown();

 private:
  TcpListener(int fd, int port) : fd_(fd), port_(port) {}

  const int fd_;
  const int port_;
  std::atomic<bool> shut_down_{false};
};

/// Dials `endpoint`, waiting at most `connect_timeout_ms` for the
/// three-way handshake (non-blocking connect + poll; DeadlineExceeded on
/// expiry, Unavailable when refused). When `faults` (or, if null, the
/// process-global injector) arms `refuse-connect`, a firing event fails
/// the dial with Unavailable before any packet is sent — the scripted
/// unreachable-coordinator case.
Result<std::unique_ptr<FrameChannel>> TcpConnect(const TcpEndpoint& endpoint,
                                                 int connect_timeout_ms,
                                                 FaultInjector* faults =
                                                     nullptr);

/// The reconnect schedule: capped exponential backoff with deterministic
/// seeded jitter. Attempt 0 waits ~base_ms, attempt k waits
/// min(cap_ms, base_ms << k) plus a jitter in [0, base_ms) drawn by
/// hashing (seed, attempt) — a pure function, so a worker's backoff
/// sequence is replayable from its seed and two workers with different
/// seeds never thunder in lockstep.
int ReconnectBackoffMs(int attempt, int base_ms, int cap_ms, uint64_t seed);

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_TCP_TRANSPORT_H_
