#ifndef FEDSHAP_UTIL_STOPWATCH_H_
#define FEDSHAP_UTIL_STOPWATCH_H_

#include <chrono>

namespace fedshap {

/// Monotonic wall-clock stopwatch for measuring training and valuation cost.
class Stopwatch {
 public:
  /// Starts timing immediately.
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the reference point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_STOPWATCH_H_
