#include "util/tcp_transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace fedshap {
namespace {

// SplitMix64 (same mixing round the FaultInjector uses): gives the
// backoff jitter an independent uniform draw per (seed, attempt).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK) failed: ") +
                            ::strerror(errno));
  }
  return Status::OK();
}

void SetSocketOptions(int fd) {
  int one = 1;
  // Nagle off: the protocol is small latency-sensitive frames.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Keepalive on: a host that vanished without a FIN must eventually
  // surface as a dead socket instead of an eternal half-open stall.
  (void)::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
}

Result<struct sockaddr_in> ResolveIpv4(const TcpEndpoint& endpoint) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(endpoint.host.c_str(), nullptr, &hints,
                               &result);
  if (rc != 0 || result == nullptr) {
    return Status::InvalidArgument("cannot resolve host '" + endpoint.host +
                                   "': " + ::gai_strerror(rc));
  }
  addr.sin_addr =
      reinterpret_cast<struct sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

}  // namespace

Result<TcpEndpoint> TcpEndpoint::Parse(const std::string& host_port) {
  const size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == host_port.size()) {
    return Status::InvalidArgument("endpoint '" + host_port +
                                   "' is not host:port");
  }
  TcpEndpoint endpoint;
  endpoint.host = host_port.substr(0, colon);
  for (size_t i = colon + 1; i < host_port.size(); ++i) {
    const char c = host_port[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + host_port +
                                     "' has a non-numeric port");
    }
    endpoint.port = endpoint.port * 10 + (c - '0');
    if (endpoint.port > 65535) {
      return Status::InvalidArgument("endpoint '" + host_port +
                                     "' port out of range");
    }
  }
  return endpoint;
}

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const TcpEndpoint& endpoint) {
  FEDSHAP_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveIpv4(endpoint));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            ::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string error = ::strerror(errno);
    ::close(fd);
    return Status::Unavailable("bind " + endpoint.ToString() + " failed: " +
                               error);
  }
  if (::listen(fd, 64) != 0) {
    const std::string error = ::strerror(errno);
    ::close(fd);
    return Status::Internal("listen failed: " + error);
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  int port = endpoint.port;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    port = ntohs(bound.sin_port);
  }
  if (Status nb = SetNonBlocking(fd); !nb.ok()) {
    ::close(fd);
    return nb;
  }
  return std::unique_ptr<TcpListener>(new TcpListener(fd, port));
}

TcpListener::~TcpListener() {
  // close() only, never shutdown(2): close is descriptor-scoped, so a
  // forked child dropping its inherited listener leaves the parent's
  // LISTEN state intact; and the fd is only released here, once no
  // Accept() caller can be live — closing from Shutdown() would race
  // the acceptor thread's poll/accept on this descriptor.
  ::close(fd_);
}

void TcpListener::Shutdown() {
  if (!shut_down_.exchange(true)) {
    // shutdown(2) on the listening socket wakes a blocked accept/poll
    // and makes further accepts fail, without freeing the fd number.
    (void)::shutdown(fd_, SHUT_RDWR);
  }
}

Result<std::unique_ptr<FrameChannel>> TcpListener::Accept(int timeout_ms) {
  if (shut_down_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("listener is shut down");
  }
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("accept poll failed: ") +
                              ::strerror(errno));
    }
    if (ready == 0) return std::unique_ptr<FrameChannel>();
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;  // the dialer gave up between poll and accept
      }
      if (shut_down_.load(std::memory_order_acquire)) {
        // A concurrent Shutdown() invalidated the socket (accept sees
        // EINVAL after shutdown(2)); report it as the shutdown it is.
        return Status::FailedPrecondition("listener is shut down");
      }
      return Status::Internal(std::string("accept failed: ") +
                              ::strerror(errno));
    }
    SetSocketOptions(fd);
    return std::make_unique<FrameChannel>(fd);
  }
}

Result<std::unique_ptr<FrameChannel>> TcpConnect(const TcpEndpoint& endpoint,
                                                 int connect_timeout_ms,
                                                 FaultInjector* faults) {
  FaultInjector* injector =
      faults != nullptr ? faults : FaultInjector::Global();
  if (injector != nullptr && injector->Fire(FaultSite::kRefuseConnect)) {
    return Status::Unavailable("injected connection refusal to " +
                               endpoint.ToString());
  }
  FEDSHAP_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveIpv4(endpoint));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            ::strerror(errno));
  }
  if (Status nb = SetNonBlocking(fd); !nb.ok()) {
    ::close(fd);
    return nb;
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const std::string error = ::strerror(errno);
    ::close(fd);
    return Status::Unavailable("connect " + endpoint.ToString() +
                               " failed: " + error);
  }
  // Non-blocking connect: wait for writability, then read the final
  // verdict from SO_ERROR (POLLOUT fires for success and failure alike).
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLOUT;
  pfd.revents = 0;
  int ready;
  do {
    ready = ::poll(&pfd, 1, connect_timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) {
    const std::string error = ::strerror(errno);
    ::close(fd);
    return Status::Internal("connect poll failed: " + error);
  }
  if (ready == 0) {
    ::close(fd);
    return Status::DeadlineExceeded("connect " + endpoint.ToString() +
                                    " timed out");
  }
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
      so_error != 0) {
    ::close(fd);
    return Status::Unavailable("connect " + endpoint.ToString() +
                               " failed: " + ::strerror(so_error));
  }
  SetSocketOptions(fd);
  return std::make_unique<FrameChannel>(fd);
}

int ReconnectBackoffMs(int attempt, int base_ms, int cap_ms, uint64_t seed) {
  if (base_ms < 1) base_ms = 1;
  if (cap_ms < base_ms) cap_ms = base_ms;
  if (attempt < 0) attempt = 0;
  // min(cap, base << attempt) without shift overflow.
  int64_t wait = base_ms;
  for (int i = 0; i < attempt && wait < cap_ms; ++i) wait *= 2;
  if (wait > cap_ms) wait = cap_ms;
  const uint64_t draw =
      Mix64(seed ^ Mix64(static_cast<uint64_t>(attempt) + 1));
  const int jitter = static_cast<int>(draw % static_cast<uint64_t>(base_ms));
  return static_cast<int>(wait) + jitter;
}

}  // namespace fedshap
