#ifndef FEDSHAP_UTIL_COMBINATORICS_H_
#define FEDSHAP_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/coalition.h"
#include "util/random.h"

namespace fedshap {

/// Binomial coefficient C(n, k) as a double. Exact for all values that fit a
/// double's 53-bit mantissa; beyond that it degrades gracefully instead of
/// overflowing, which is what the Shapley weights 1/(n*C(n-1,|S|)) need.
/// Returns 0 for k < 0 or k > n.
double BinomialDouble(int n, int k);

/// Binomial coefficient as u64; saturates at UINT64_MAX on overflow.
uint64_t BinomialU64(int n, int k);

/// Natural log of n! via lgamma; exact enough for sampling weights.
double LogFactorial(int n);

/// Number of subsets of an n-element set with size <= k: sum_{j<=k} C(n, j),
/// saturating at UINT64_MAX.
uint64_t SubsetsUpToSize(int n, int k);

/// Invokes `fn` once for every size-k subset of {0,...,n-1}, in
/// lexicographic order of member indices. `fn` receives the subset as a
/// Coalition. Intended for the exhaustive strata in K-Greedy / IPSS.
void ForEachSubsetOfSize(int n, int k,
                         const std::function<void(const Coalition&)>& fn);

/// Invokes `fn` once for every subset of `universe` (all 2^|universe|,
/// including the empty set). |universe| must be <= 30.
void ForEachSubsetOf(const Coalition& universe,
                     const std::function<void(const Coalition&)>& fn);

/// Uniformly samples one size-k subset of {0,...,n-1}.
Coalition RandomSubsetOfSize(int n, int k, Rng& rng);

/// Uniformly samples one size-k subset of {0,...,n-1} \ {excluded}.
Coalition RandomSubsetOfSizeExcluding(int n, int k, int excluded, Rng& rng);

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_COMBINATORICS_H_
