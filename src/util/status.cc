#include "util/status.h"

namespace fedshap {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace fedshap
