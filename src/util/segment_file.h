#ifndef FEDSHAP_UTIL_SEGMENT_FILE_H_
#define FEDSHAP_UTIL_SEGMENT_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/mapped_file.h"
#include "util/status.h"

namespace fedshap {

/// \file
/// Append-only segment files with per-record CRC framing.
///
/// A segment is the unit of the segmented UtilityStore: an immutable,
/// individually-checksummed sequence of records that is written once,
/// sealed with an fsync'd footer index, and afterwards only ever read
/// (memory-mapped) or deleted (compaction). The format is designed so a
/// crash at *any* byte leaves the file recoverable:
///
///   header   [magic u32][version u32][meta u64]
///   records  ([payload_len u32][crc32(payload) u32][payload])*
///   footer   [crc32(footer_payload) u32][footer_payload]
///            [footer_payload_len u32][footer_magic u32]      (sealed only)
///
/// Every record is independently CRC-framed, so an unsealed (active)
/// segment that loses its tail mid-write has at most one torn record,
/// which `SegmentReader::Open` detects (bad length/CRC) and reports as a
/// truncation point; all preceding records stay valid. A sealed segment
/// carries a footer whose payload the caller defines (the UtilityStore
/// stores its key->offset index there, so opening a sealed segment never
/// touches the record pages) terminated by a fixed trailer that marks
/// the segment as complete.

/// Magic tag closing a sealed segment's trailer ("FSEG" little-endian).
inline constexpr uint32_t kSegmentFooterMagic = 0x47455346u;

/// Appends CRC-framed records to a segment file.
///
/// Not thread-safe; the owner serializes access (the UtilityStore holds
/// its mutex across appends). Durability is explicit: `Sync` fsyncs what
/// has been appended, `Seal` writes the footer and fsyncs.
class SegmentWriter {
 public:
  /// Creates `path` (truncating any existing file) and writes the
  /// segment header. `meta` is an opaque caller value stored in the
  /// header (the UtilityStore puts the workload fingerprint there).
  static Result<std::unique_ptr<SegmentWriter>> Create(
      const std::string& path, uint32_t magic, uint32_t version,
      uint64_t meta);

  /// Reopens an existing unsealed segment for appending, truncating it
  /// to `resume_at` bytes first (the valid prefix a SegmentReader
  /// reported; this is the torn-tail recovery path).
  static Result<std::unique_ptr<SegmentWriter>> OpenForAppend(
      const std::string& path, uint64_t resume_at);

  /// Closes the file (without sealing or syncing).
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Appends one framed record; returns the record's absolute file
  /// offset (stable forever: sealed segments are immutable).
  Result<uint64_t> Append(std::string_view payload);

  /// Flushes and fsyncs everything appended so far.
  Status Sync();

  /// Appends the footer (caller-defined `footer_payload` + trailer),
  /// fsyncs and closes: the segment is now complete and immutable.
  /// No further Append/Sync calls are allowed.
  Status Seal(std::string_view footer_payload);

  /// Current file size in bytes (header + appended records).
  uint64_t bytes() const { return bytes_; }
  /// Bytes appended since the last Sync/Create.
  uint64_t unsynced_bytes() const { return unsynced_bytes_; }
  /// The segment's file path.
  const std::string& path() const { return path_; }

 private:
  SegmentWriter(std::string path, std::FILE* file, uint64_t bytes)
      : path_(std::move(path)), file_(file), bytes_(bytes) {}

  Status WriteRaw(std::string_view bytes);

  const std::string path_;
  std::FILE* file_ = nullptr;
  uint64_t bytes_ = 0;
  uint64_t unsynced_bytes_ = 0;
  bool sealed_ = false;
};

/// Read-only view of a segment file (memory-mapped).
///
/// Open validates the header, classifies the segment as sealed (valid
/// footer trailer) or unsealed (an active segment, possibly with a torn
/// tail), and for unsealed segments scans the records to find the valid
/// prefix. Record payload views alias the mapping and live as long as
/// the reader.
class SegmentReader {
 public:
  /// Maps and validates `path`. Fails with InvalidArgument on a wrong
  /// magic / corrupt header and FailedPrecondition on a newer version.
  static Result<std::unique_ptr<SegmentReader>> Open(
      const std::string& path, uint32_t magic, uint32_t max_version);

  /// The opaque header value the writer stored.
  uint64_t meta() const { return meta_; }
  /// True when the segment carries a valid footer (complete, immutable).
  bool sealed() const { return sealed_; }
  /// The caller-defined footer payload; empty for unsealed segments.
  std::string_view footer() const { return footer_; }
  /// Total mapped bytes of the file.
  uint64_t file_bytes() const { return file_->size(); }
  /// End offset of the valid record region. For unsealed segments with a
  /// torn tail this is where the file must be truncated before appending
  /// resumes.
  uint64_t data_end() const { return data_end_; }
  /// True when an unsealed segment had trailing bytes that do not form a
  /// complete, checksum-valid record (the crash signature).
  bool torn_tail() const { return torn_tail_; }
  /// The segment's file path.
  const std::string& path() const { return file_->path(); }

  /// Calls `fn(offset, payload)` for every valid record in file order.
  /// Stops early and returns `fn`'s error if it fails.
  Status ForEachRecord(
      const std::function<Status(uint64_t, std::string_view)>& fn) const;

  /// The payload of the record whose frame starts at `offset`
  /// (as returned by SegmentWriter::Append / ForEachRecord). Validates
  /// the frame bounds and checksum.
  Result<std::string_view> RecordAt(uint64_t offset) const;

 private:
  explicit SegmentReader(std::unique_ptr<MappedFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<MappedFile> file_;
  uint64_t meta_ = 0;
  uint64_t data_end_ = 0;
  std::string_view footer_;
  bool sealed_ = false;
  bool torn_tail_ = false;
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_SEGMENT_FILE_H_
