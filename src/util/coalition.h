#ifndef FEDSHAP_UTIL_COALITION_H_
#define FEDSHAP_UTIL_COALITION_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fedshap {

/// A set of FL clients (a "dataset combination" S in the paper), stored as a
/// fixed-width bitset.
///
/// Supports up to `kMaxClients` clients, which covers the paper's largest
/// scalability experiment (100 clients, Fig. 9). Value semantics; cheap to
/// copy and hash, suitable as a key in the utility cache.
class Coalition {
 public:
  /// Largest supported client index + 1.
  static constexpr int kMaxClients = 256;
  /// 64-bit words backing the bitset.
  static constexpr int kWords = kMaxClients / 64;

  /// Constructs the empty coalition.
  Coalition() : words_{} {}

  /// Builds a coalition from explicit client indices.
  static Coalition Of(std::initializer_list<int> clients);
  /// Builds a coalition from a vector of client indices.
  static Coalition FromIndices(const std::vector<int>& clients);

  /// The grand coalition {0, 1, ..., n-1}.
  static Coalition Full(int n);

  /// Membership test. Indices must lie in [0, kMaxClients).
  bool Contains(int client) const {
    return (words_[Word(client)] >> Bit(client)) & 1ULL;
  }
  /// Inserts `client`. Indices must lie in [0, kMaxClients).
  void Add(int client) { words_[Word(client)] |= Mask(client); }
  /// Erases `client`. Indices must lie in [0, kMaxClients).
  void Remove(int client) { words_[Word(client)] &= ~Mask(client); }

  /// Copy of this coalition with `client` inserted.
  Coalition With(int client) const;
  /// Copy of this coalition with `client` erased.
  Coalition Without(int client) const;

  /// Number of members |S|.
  int Count() const;

  /// True when the coalition has no members.
  bool Empty() const;

  /// Set union S u other.
  Coalition Union(const Coalition& other) const;
  /// Set intersection S n other.
  Coalition Intersect(const Coalition& other) const;
  /// Set difference S \ other.
  Coalition Minus(const Coalition& other) const;

  /// Complement with respect to the grand coalition of `n` clients: N \ S.
  Coalition ComplementIn(int n) const;

  /// True when every member of this coalition also belongs to `other`.
  bool IsSubsetOf(const Coalition& other) const;

  /// Member indices in increasing order.
  std::vector<int> Members() const;

  /// Invokes `fn(client)` for each member in increasing order.
  void ForEach(const std::function<void(int)>& fn) const;

  /// Compact display form, e.g. "{0,2,5}".
  std::string ToString() const;

  /// Equal membership bits.
  bool operator==(const Coalition& other) const {
    return words_ == other.words_;
  }
  /// Differing membership bits.
  bool operator!=(const Coalition& other) const { return !(*this == other); }

  /// Lexicographic order on the underlying words; provides a total order for
  /// deterministic iteration of std::map-style containers.
  bool operator<(const Coalition& other) const {
    return words_ < other.words_;
  }

  /// 64-bit hash of the membership bits.
  size_t Hash() const;

 private:
  static int Word(int client) { return client >> 6; }
  static int Bit(int client) { return client & 63; }
  static uint64_t Mask(int client) { return 1ULL << Bit(client); }

  std::array<uint64_t, kWords> words_;
};

/// Hash functor for unordered containers keyed by Coalition.
struct CoalitionHash {
  size_t operator()(const Coalition& c) const { return c.Hash(); }
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_COALITION_H_
