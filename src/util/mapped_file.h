#ifndef FEDSHAP_UTIL_MAPPED_FILE_H_
#define FEDSHAP_UTIL_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace fedshap {

/// \file
/// Read-only memory-mapped file access.
///
/// The segmented UtilityStore serves lookups straight from the page
/// cache: sealed segments are mapped, not read, so opening a
/// multi-gigabyte store touches only the pages a lookup actually needs
/// and the kernel reclaims cold pages under memory pressure. Unmapping a
/// segment (the store's eviction path) drops its resident pages
/// immediately, which is how a store larger than `FEDSHAP_STORE_BYTES`
/// keeps process RSS under the budget.

/// A read-only file mapped into the address space.
///
/// The mapping is immutable and lives until the object is destroyed;
/// views returned by `view()` must not outlive it. On platforms without
/// mmap the class transparently falls back to reading the file into
/// heap memory (correct, but without the paging benefits).
class MappedFile {
 public:
  /// Maps `path` read-only. NotFound when the file does not exist;
  /// an empty file maps successfully with `size() == 0`.
  static Result<std::unique_ptr<MappedFile>> Open(const std::string& path);

  /// Unmaps (or frees the fallback buffer).
  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// First mapped byte (nullptr when `size() == 0`).
  const char* data() const { return data_; }
  /// Mapped length in bytes.
  size_t size() const { return size_; }
  /// The whole mapping as a string_view (aliases the mapping).
  std::string_view view() const { return std::string_view(data_, size_); }
  /// The mapped file's path.
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, const char* data, size_t size, bool mmapped)
      : path_(std::move(path)), data_(data), size_(size),
        mmapped_(mmapped) {}

  const std::string path_;
  const char* data_ = nullptr;
  size_t size_ = 0;
  /// True when `data_` is an mmap'd region; false for the heap fallback.
  bool mmapped_ = false;
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_MAPPED_FILE_H_
