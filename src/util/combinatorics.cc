#include "util/combinatorics.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace fedshap {

double BinomialDouble(int n, int k) {
  if (k < 0 || k > n) return 0.0;
  k = std::min(k, n - k);
  // Multiplicative formula keeps intermediate values near the result's
  // magnitude, unlike factorial ratios.
  double result = 1.0;
  for (int i = 1; i <= k; ++i) {
    result *= static_cast<double>(n - k + i);
    result /= static_cast<double>(i);
  }
  return result;
}

uint64_t BinomialU64(int n, int k) {
  if (k < 0 || k > n) return 0;
  k = std::min(k, n - k);
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    uint64_t numerator = static_cast<uint64_t>(n - k + i);
    // result * numerator may overflow; divide by gcd-free i afterwards, so
    // detect overflow against the pre-division product.
    if (result > kMax / numerator) return kMax;
    result = result * numerator / static_cast<uint64_t>(i);
  }
  return result;
}

double LogFactorial(int n) {
  FEDSHAP_CHECK(n >= 0);
  return std::lgamma(static_cast<double>(n) + 1.0);
}

uint64_t SubsetsUpToSize(int n, int k) {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t total = 0;
  for (int j = 0; j <= std::min(k, n); ++j) {
    uint64_t term = BinomialU64(n, j);
    if (term == kMax || total > kMax - term) return kMax;
    total += term;
  }
  return total;
}

void ForEachSubsetOfSize(int n, int k,
                         const std::function<void(const Coalition&)>& fn) {
  FEDSHAP_CHECK(n >= 0 && n <= Coalition::kMaxClients);
  if (k < 0 || k > n) return;
  if (k == 0) {
    fn(Coalition());
    return;
  }
  // Standard combination enumeration: indices[0] < ... < indices[k-1].
  std::vector<int> indices(k);
  for (int i = 0; i < k; ++i) indices[i] = i;
  while (true) {
    fn(Coalition::FromIndices(indices));
    // Advance to the next combination.
    int i = k - 1;
    while (i >= 0 && indices[i] == n - k + i) --i;
    if (i < 0) break;
    ++indices[i];
    for (int j = i + 1; j < k; ++j) indices[j] = indices[j - 1] + 1;
  }
}

void ForEachSubsetOf(const Coalition& universe,
                     const std::function<void(const Coalition&)>& fn) {
  std::vector<int> members = universe.Members();
  FEDSHAP_CHECK(members.size() <= 30);
  const uint64_t limit = 1ULL << members.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Coalition subset;
    for (size_t i = 0; i < members.size(); ++i) {
      if ((mask >> i) & 1ULL) subset.Add(members[i]);
    }
    fn(subset);
  }
}

Coalition RandomSubsetOfSize(int n, int k, Rng& rng) {
  FEDSHAP_CHECK(k >= 0 && k <= n);
  return Coalition::FromIndices(rng.SampleWithoutReplacement(n, k));
}

Coalition RandomSubsetOfSizeExcluding(int n, int k, int excluded, Rng& rng) {
  FEDSHAP_CHECK(excluded >= 0 && excluded < n);
  FEDSHAP_CHECK(k >= 0 && k <= n - 1);
  // Sample from a universe of n-1 logical slots, then remap indices >=
  // `excluded` up by one.
  std::vector<int> picked = rng.SampleWithoutReplacement(n - 1, k);
  Coalition c;
  for (int idx : picked) c.Add(idx >= excluded ? idx + 1 : idx);
  return c;
}

}  // namespace fedshap
