#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace fedshap {

ConsoleTable::ConsoleTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FEDSHAP_CHECK(!header_.empty());
}

void ConsoleTable::AddRow(std::vector<std::string> row) {
  FEDSHAP_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void ConsoleTable::AddSeparator() { rows_.emplace_back(); }

void ConsoleTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_rule = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_cells(row);
    }
  }
  print_rule();
}

std::string FormatDouble(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  std::string out(buffer);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

std::string FormatSeconds(double seconds) {
  char buffer[64];
  if (seconds < 0) return "-";
  if (seconds < 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1fms", seconds * 1e3);
  } else if (seconds < 1e4) {
    std::snprintf(buffer, sizeof(buffer), "%.2fs", seconds);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1es", seconds);
  }
  return std::string(buffer);
}

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

Result<CsvWriter> CsvWriter::Create(const std::string& path,
                                    const std::vector<std::string>& header) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV header must not be empty");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::Internal("cannot open CSV file for writing: " + path);
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out << ",";
    out << CsvEscape(header[i]);
  }
  out << "\n";
  if (!out) return Status::Internal("failed writing CSV header: " + path);
  return CsvWriter(path, header.size());
}

Status CsvWriter::WriteRow(const std::vector<std::string>& row) {
  if (row.size() != columns_) {
    return Status::InvalidArgument("CSV row width mismatch");
  }
  std::ofstream out(path_, std::ios::app);
  if (!out) return Status::Internal("cannot append to CSV file: " + path_);
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ",";
    out << CsvEscape(row[i]);
  }
  out << "\n";
  if (!out) return Status::Internal("failed writing CSV row: " + path_);
  return Status::OK();
}

}  // namespace fedshap
