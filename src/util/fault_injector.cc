#include "util/fault_injector.h"

#include <cstdlib>
#include <vector>

#include "util/logging.h"

namespace fedshap {
namespace {

constexpr std::string_view kSiteNames[kNumFaultSites] = {
    "kill-worker", "drop-frame", "dup-frame", "reorder-frame",
    "torn-store-write", "partition", "delay-frame", "corrupt-frame",
    "refuse-connect"};

// SplitMix64: one 64-bit mixing round. Hashing (seed, ordinal) through it
// gives each event an independent uniform draw that depends only on the
// spec, never on wall-clock or thread interleaving.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseProbability(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buf(text);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (!(value >= 0.0 && value <= 1.0)) return false;
  *out = value;
  return true;
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  return kSiteNames[static_cast<int>(site)];
}

Result<std::unique_ptr<FaultInjector>> FaultInjector::Parse(
    std::string_view spec) {
  std::unique_ptr<FaultInjector> injector(new FaultInjector());
  injector->spec_ = std::string(spec);
  for (std::string_view clause : Split(spec, ';')) {
    if (clause.empty()) continue;
    const size_t colon = clause.find(':');
    const std::string_view name = clause.substr(0, colon);
    int site = -1;
    for (int i = 0; i < kNumFaultSites; ++i) {
      if (name == kSiteNames[i]) site = i;
    }
    if (site < 0) {
      return Status::InvalidArgument("unknown fault site '" +
                                     std::string(name) + "'");
    }
    Rule& rule = injector->rules_[static_cast<size_t>(site)];
    if (rule.armed) {
      return Status::InvalidArgument("duplicate fault clause for '" +
                                     std::string(name) + "'");
    }
    rule.armed = true;
    bool has_p = false;
    bool has_seed = false;
    if (colon != std::string_view::npos) {
      for (std::string_view param : Split(clause.substr(colon + 1), ',')) {
        const size_t eq = param.find('=');
        if (eq == std::string_view::npos) {
          return Status::InvalidArgument("fault parameter '" +
                                         std::string(param) +
                                         "' is not key=value");
        }
        const std::string_view key = param.substr(0, eq);
        const std::string_view value = param.substr(eq + 1);
        bool ok = false;
        if (key == "nth") {
          ok = ParseU64(value, &rule.nth) && rule.nth >= 1;
        } else if (key == "after") {
          ok = ParseU64(value, &rule.after);
          rule.has_after = ok;
        } else if (key == "until") {
          ok = ParseU64(value, &rule.until) && rule.until >= 1;
        } else if (key == "ms") {
          ok = ParseU64(value, &rule.ms);
        } else if (key == "p") {
          ok = ParseProbability(value, &rule.probability);
          has_p = ok;
        } else if (key == "seed") {
          ok = ParseU64(value, &rule.seed);
          has_seed = ok;
        } else {
          return Status::InvalidArgument("unknown fault parameter '" +
                                         std::string(key) + "'");
        }
        if (!ok) {
          return Status::InvalidArgument("bad fault parameter '" +
                                         std::string(param) + "'");
        }
      }
    }
    const int triggers = (rule.nth > 0 ? 1 : 0) + (rule.has_after ? 1 : 0) +
                         (rule.until > 0 ? 1 : 0) + (has_p ? 1 : 0);
    if (triggers > 1) {
      return Status::InvalidArgument(
          "fault clause '" + std::string(name) +
          "' mixes nth/after/until/p triggers; pick exactly one");
    }
    if (has_seed && !has_p) {
      return Status::InvalidArgument("fault parameter seed= requires p=");
    }
    if (triggers == 0) rule.has_after = true;  // bare site == after=0
  }
  return injector;
}

namespace {
std::unique_ptr<FaultInjector>& GlobalSlot() {
  static std::unique_ptr<FaultInjector> slot;
  return slot;
}
std::once_flag g_global_once;
}  // namespace

FaultInjector* FaultInjector::Global() {
  std::call_once(g_global_once, [] {
    const char* spec = std::getenv("FEDSHAP_FAULT_SPEC");
    if (spec == nullptr || spec[0] == '\0') return;
    Result<std::unique_ptr<FaultInjector>> parsed = Parse(spec);
    if (!parsed.ok()) {
      FEDSHAP_LOG(Error) << "ignoring invalid FEDSHAP_FAULT_SPEC: "
                         << parsed.status().ToString();
      return;
    }
    GlobalSlot() = std::move(parsed).value();
  });
  return GlobalSlot().get();
}

void FaultInjector::SetGlobal(std::unique_ptr<FaultInjector> injector) {
  // Ensure the env-parsing once-flag is consumed so a later Global() does
  // not overwrite what a test installed here.
  Global();
  GlobalSlot() = std::move(injector);
}

bool FaultInjector::Fire(FaultSite site) {
  std::lock_guard<std::mutex> lock(mutex_);
  Rule& rule = rules_[static_cast<size_t>(site)];
  const uint64_t ordinal = ++rule.events;
  if (!rule.armed) return false;
  bool fires = false;
  if (rule.nth > 0) {
    fires = ordinal == rule.nth;
  } else if (rule.until > 0) {
    fires = ordinal <= rule.until;
  } else if (rule.has_after) {
    fires = ordinal > rule.after;
  } else if (rule.probability >= 0.0) {
    const uint64_t draw = Mix64(rule.seed ^ Mix64(ordinal));
    // Map the top 53 bits to [0, 1): exact doubles, uniform enough.
    const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
    fires = unit < rule.probability;
  }
  if (fires) ++rule.fired;
  return fires;
}

uint64_t FaultInjector::events(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rules_[static_cast<size_t>(site)].events;
}

uint64_t FaultInjector::fired(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rules_[static_cast<size_t>(site)].fired;
}

uint64_t FaultInjector::param_ms(FaultSite site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rules_[static_cast<size_t>(site)].ms;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Rule& rule : rules_) {
    rule.events = 0;
    rule.fired = 0;
  }
}

}  // namespace fedshap
