#ifndef FEDSHAP_UTIL_ALIGNED_H_
#define FEDSHAP_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace fedshap {

/// \file
/// Cache-line-aligned storage shared by the data and ML layers: the
/// columnar Dataset stores each feature column in an aligned buffer and
/// the batched gradient paths consume/produce the same buffer type, so a
/// column slice can flow into a SIMD kernel without a realignment copy.

/// STL-compatible allocator returning 64-byte-aligned storage, so the
/// SIMD backends' vector loads on matrix rows, feature columns and
/// scratch buffers never straddle a cache line. Used by `Matrix`, the
/// columnar `Dataset` and the models' thread-local scratch; plain
/// std::vector buffers remain legal kernel operands (the backends use
/// unaligned load instructions, which are penalty-free on aligned
/// addresses).
template <typename T>
class AlignedAllocator {
 public:
  /// STL allocator element type.
  using value_type = T;
  /// Cache-line alignment of every allocation.
  static constexpr std::align_val_t kAlignment{64};

  /// Stateless default construction.
  AlignedAllocator() = default;
  /// Rebinding copy constructor required of STL allocators.
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  /// Allocates 64-byte-aligned storage for `n` elements.
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlignment));
  }
  /// Releases storage obtained from allocate().
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlignment);
  }

  /// All instances are interchangeable.
  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

/// 64-byte-aligned float buffer: the storage type of `Matrix`, of each
/// `Dataset` feature column and of the batched gradient paths' scratch
/// space.
using AlignedFloats = std::vector<float, AlignedAllocator<float>>;

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_ALIGNED_H_
