#ifndef FEDSHAP_UTIL_TABLE_H_
#define FEDSHAP_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedshap {

/// Console table with aligned columns; used by the bench harnesses to print
/// paper-style result tables.
class ConsoleTable {
 public:
  /// Creates a table with the given column headers.
  explicit ConsoleTable(std::vector<std::string> header);

  /// Appends a data row; must have as many cells as the header.
  void AddRow(std::vector<std::string> row);

  /// Inserts a horizontal separator before the next row.
  void AddSeparator();

  /// Renders with ASCII separators.
  void Print(std::ostream& os) const;

  /// Number of data rows added so far (separators included).
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Formats a double with `digits` significant decimals, trimming noise
/// ("1.2300" -> "1.23", "-0" -> "0").
std::string FormatDouble(double value, int digits = 4);

/// Formats seconds adaptively ("532us", "12.3ms", "4.56s", "1.2e+03s").
std::string FormatSeconds(double seconds);

/// Minimal CSV writer for machine-readable bench output.
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Fails with IOError-style status when the file cannot be created.
  static Result<CsvWriter> Create(const std::string& path,
                                  const std::vector<std::string>& header);

  /// Appends one row; must match the header width.
  Status WriteRow(const std::vector<std::string>& row);

  /// The output file path.
  const std::string& path() const { return path_; }

 private:
  CsvWriter(std::string path, size_t columns)
      : path_(std::move(path)), columns_(columns) {}

  std::string path_;
  size_t columns_;
};

/// Escapes a CSV field (quotes fields containing separators).
std::string CsvEscape(const std::string& field);

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_TABLE_H_
