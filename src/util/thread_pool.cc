#include "util/thread_pool.h"

#include <algorithm>

namespace fedshap {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (num_threads() == 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  for (int i = 0; i < count; ++i) {
    Submit([&fn, i] { fn(i); });
  }
  WaitIdle();
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fedshap
