#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace fedshap {

namespace {

/// The pool whose WorkerLoop the current thread is running, if any.
/// ParallelFor consults it to fall back to an inline loop instead of
/// deadlocking when re-entered from one of its own workers.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  // From one of our own workers, queueing and waiting would park the
  // worker on tasks only this pool can run — with every worker inside a
  // ParallelFor the pool deadlocks. Inline execution is always safe.
  if (t_current_pool == this || num_threads() == 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  // A per-call TaskGroup joins exactly these iterations, so concurrent
  // ParallelFor calls and unrelated background submissions on the same
  // pool never wait on each other (WaitIdle would drain the whole pool).
  TaskGroup group(this);
  for (int i = 0; i < count; ++i) {
    group.Run([&fn, i] { fn(i); });
  }
  group.Wait();
}

int ThreadPool::DefaultThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void TaskGroup::Run(std::function<void()> task) {
  if (pool_ == nullptr) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    std::lock_guard<std::mutex> lock(mutex_);
    if (--pending_ == 0) done_.notify_all();
  });
}

void TaskGroup::Wait() {
  if (pool_ == nullptr) return;
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

WorkerBudget::WorkerBudget(int total) : total_(std::max(1, total)) {}

WorkerBudget& WorkerBudget::Global() {
  static WorkerBudget* budget = [] {
    int total = ThreadPool::DefaultThreads();
    if (const char* env = std::getenv("FEDSHAP_WORKER_BUDGET")) {
      const int parsed = std::atoi(env);
      if (parsed > 0) total = parsed;
    }
    return new WorkerBudget(total);
  }();
  return *budget;
}

int WorkerBudget::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

int WorkerBudget::in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_use_;
}

void WorkerBudget::SetTotal(int total) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_ = std::max(1, total);
}

int WorkerBudget::TryAcquire(int wanted) {
  if (wanted <= 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const int granted = std::clamp(total_ - in_use_, 0, wanted);
  in_use_ += granted;
  return granted;
}

void WorkerBudget::Release(int granted) {
  if (granted <= 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  FEDSHAP_DCHECK(granted <= in_use_);
  // Clamp rather than go negative: a double-release must not inflate
  // every later TryAcquire grant past the configured total.
  in_use_ = std::max(0, in_use_ - granted);
}

ThreadPool* SharedTrainingPool() {
  static ThreadPool* pool = new ThreadPool(ThreadPool::DefaultThreads());
  return pool;
}

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace fedshap
