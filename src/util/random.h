#ifndef FEDSHAP_UTIL_RANDOM_H_
#define FEDSHAP_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedshap {

/// Deterministic random number generator used throughout the library.
///
/// Every stochastic component (data generation, partitioning, sampling
/// algorithms, SGD shuffling) takes an explicit `Rng` so experiments are
/// reproducible from a single seed. `Fork()` derives independent streams so
/// that adding randomness in one component does not perturb another.
class Rng {
 public:
  /// Creates a generator with the given seed.
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal sample.
  double Gaussian() { return normal_(engine_); }

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Gamma(shape, 1) sample (Marsaglia-Tsang). Requires shape > 0.
  double Gamma(double shape);

  /// Dirichlet(alpha, ..., alpha) sample of the given dimension: a point
  /// on the probability simplex. Small alpha concentrates mass on few
  /// coordinates (strong non-IID skew), large alpha approaches uniform.
  std::vector<double> Dirichlet(double alpha, int dimension);

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Returns a random permutation of {0, 1, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Samples `k` distinct indices from [0, n) uniformly (order unspecified).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Derives an independent child generator. The child stream is a pure
  /// function of this generator's current state, so forking is itself
  /// deterministic.
  Rng Fork();

  /// Serializes the complete generator state (engine plus distribution
  /// carry, e.g. the Box-Muller spare of the normal distribution) to a
  /// portable text form. A generator restored with LoadState produces the
  /// exact same stream this one would have — the basis of resumable
  /// sampling sweeps.
  std::string SaveState() const;

  /// Restores a state captured by SaveState. Fails with InvalidArgument
  /// on malformed input, leaving the generator untouched.
  Status LoadState(const std::string& state);

  /// Underlying engine, for interoperating with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_RANDOM_H_
