#include "util/segment_file.h"

#include <cstring>
#include <filesystem>

#include "util/fault_injector.h"
#include "util/serialization.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FEDSHAP_HAVE_FSYNC 1
#else
#define FEDSHAP_HAVE_FSYNC 0
#endif

namespace fedshap {

namespace {

/// Bytes of the fixed segment header: magic + version + meta.
constexpr uint64_t kHeaderBytes = 16;
/// Bytes of a record frame before its payload: length + CRC.
constexpr uint64_t kRecordFrameBytes = 8;
/// Bytes of the sealed-segment trailer: footer length + footer magic.
constexpr uint64_t kTrailerBytes = 8;

uint32_t ReadU32(const char* p) {
  uint32_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;  // files are little-endian; so are all supported hosts
}

uint64_t ReadU64(const char* p) {
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;
}

Status FlushAndFsync(std::FILE* file, const std::string& path) {
  if (std::fflush(file) != 0) {
    return Status::Internal("flush failed for segment " + path);
  }
#if FEDSHAP_HAVE_FSYNC
  if (::fsync(::fileno(file)) != 0) {
    return Status::Internal("fsync failed for segment " + path);
  }
#endif
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentWriter

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::Create(
    const std::string& path, uint32_t magic, uint32_t version,
    uint64_t meta) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot create segment " + path);
  }
  ByteWriter header;
  header.PutU32(magic);
  header.PutU32(version);
  header.PutU64(meta);
  std::unique_ptr<SegmentWriter> writer(
      new SegmentWriter(path, file, /*bytes=*/0));
  FEDSHAP_RETURN_NOT_OK(writer->WriteRaw(header.bytes()));
  return writer;
}

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::OpenForAppend(
    const std::string& path, uint64_t resume_at) {
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound("cannot reopen segment " + path + ": " +
                            ec.message());
  }
  if (resume_at < kHeaderBytes || resume_at > size) {
    return Status::InvalidArgument("segment resume offset out of range");
  }
  if (resume_at < size) {
    // Drop the torn tail so the next append starts on a record boundary.
    std::filesystem::resize_file(path, resume_at, ec);
    if (ec) {
      return Status::Internal("cannot truncate segment " + path + ": " +
                              ec.message());
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Internal("cannot reopen segment " + path);
  }
  return std::unique_ptr<SegmentWriter>(
      new SegmentWriter(path, file, resume_at));
}

SegmentWriter::~SegmentWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SegmentWriter::WriteRaw(std::string_view bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::Internal("short write to segment " + path_);
  }
  bytes_ += bytes.size();
  unsynced_bytes_ += bytes.size();
  return Status::OK();
}

Result<uint64_t> SegmentWriter::Append(std::string_view payload) {
  if (sealed_ || file_ == nullptr) {
    return Status::FailedPrecondition("segment " + path_ + " is sealed");
  }
  const uint64_t offset = bytes_;
  ByteWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  frame.PutU32(Crc32(payload));
  FaultInjector* faults = FaultInjector::Global();
  if (faults != nullptr && faults->Fire(FaultSite::kTornStoreWrite)) {
    // Scripted torn write: persist the frame header plus a payload prefix
    // — exactly what a crash mid-append leaves behind — then close the
    // file so this writer behaves like the dead process. Reopening the
    // segment must truncate the torn tail back to `offset`.
    FEDSHAP_RETURN_NOT_OK(WriteRaw(frame.bytes()));
    FEDSHAP_RETURN_NOT_OK(WriteRaw(payload.substr(0, payload.size() / 2)));
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    return Status::Internal("fault injected: torn write to segment " + path_);
  }
  FEDSHAP_RETURN_NOT_OK(WriteRaw(frame.bytes()));
  FEDSHAP_RETURN_NOT_OK(WriteRaw(payload));
  return offset;
}

Status SegmentWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("segment " + path_ + " is closed");
  }
  FEDSHAP_RETURN_NOT_OK(FlushAndFsync(file_, path_));
  unsynced_bytes_ = 0;
  return Status::OK();
}

Status SegmentWriter::Seal(std::string_view footer_payload) {
  if (sealed_ || file_ == nullptr) {
    return Status::FailedPrecondition("segment " + path_ +
                                      " is already sealed");
  }
  ByteWriter footer;
  footer.PutU32(Crc32(footer_payload));
  FEDSHAP_RETURN_NOT_OK(WriteRaw(footer.bytes()));
  FEDSHAP_RETURN_NOT_OK(WriteRaw(footer_payload));
  ByteWriter trailer;
  trailer.PutU32(static_cast<uint32_t>(footer_payload.size()));
  trailer.PutU32(kSegmentFooterMagic);
  FEDSHAP_RETURN_NOT_OK(WriteRaw(trailer.bytes()));
  FEDSHAP_RETURN_NOT_OK(FlushAndFsync(file_, path_));
  unsynced_bytes_ = 0;
  sealed_ = true;
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SegmentReader

Result<std::unique_ptr<SegmentReader>> SegmentReader::Open(
    const std::string& path, uint32_t magic, uint32_t max_version) {
  FEDSHAP_ASSIGN_OR_RETURN(std::unique_ptr<MappedFile> file,
                           MappedFile::Open(path));
  if (file->size() < kHeaderBytes) {
    return Status::InvalidArgument("segment " + path + " has no header");
  }
  const char* base = file->data();
  if (ReadU32(base) != magic) {
    return Status::InvalidArgument("segment " + path +
                                   " has the wrong magic");
  }
  const uint32_t version = ReadU32(base + 4);
  if (version > max_version) {
    return Status::FailedPrecondition(
        "segment " + path + " has format version " +
        std::to_string(version) + ", newer than supported " +
        std::to_string(max_version));
  }
  std::unique_ptr<SegmentReader> reader(new SegmentReader(std::move(file)));
  base = reader->file_->data();
  const uint64_t size = reader->file_->size();
  reader->meta_ = ReadU64(base + 8);

  // Sealed? The trailer is self-describing: [footer_len][footer_magic]
  // in the last 8 bytes, with the CRC-framed footer right before it.
  if (size >= kHeaderBytes + 4 + kTrailerBytes &&
      ReadU32(base + size - 4) == kSegmentFooterMagic) {
    const uint64_t footer_len = ReadU32(base + size - 8);
    if (kHeaderBytes + 4 + footer_len + kTrailerBytes <= size) {
      const uint64_t footer_start = size - kTrailerBytes - footer_len - 4;
      const std::string_view payload(base + footer_start + 4, footer_len);
      if (Crc32(payload) == ReadU32(base + footer_start)) {
        reader->sealed_ = true;
        reader->footer_ = payload;
        reader->data_end_ = footer_start;
        return reader;
      }
    }
    // The trailer bytes lied (a torn record that happens to end in the
    // footer magic); fall through to the unsealed scan.
  }

  // Unsealed: walk the records; the valid prefix ends at the first
  // incomplete or checksum-failing frame.
  uint64_t pos = kHeaderBytes;
  while (pos + kRecordFrameBytes <= size) {
    const uint64_t len = ReadU32(base + pos);
    if (pos + kRecordFrameBytes + len > size) break;  // torn length/payload
    const std::string_view payload(base + pos + kRecordFrameBytes, len);
    if (Crc32(payload) != ReadU32(base + pos + 4)) break;  // torn payload
    pos += kRecordFrameBytes + len;
  }
  reader->data_end_ = pos;
  reader->torn_tail_ = pos < size;
  return reader;
}

Status SegmentReader::ForEachRecord(
    const std::function<Status(uint64_t, std::string_view)>& fn) const {
  const char* base = file_->data();
  uint64_t pos = kHeaderBytes;
  while (pos + kRecordFrameBytes <= data_end_) {
    const uint64_t len = ReadU32(base + pos);
    if (pos + kRecordFrameBytes + len > data_end_) {
      return Status::InvalidArgument("segment " + path() +
                                     " has a record crossing the footer");
    }
    const std::string_view payload(base + pos + kRecordFrameBytes, len);
    if (sealed_ && Crc32(payload) != ReadU32(base + pos + 4)) {
      return Status::InvalidArgument("segment " + path() +
                                     " has a corrupt record");
    }
    FEDSHAP_RETURN_NOT_OK(fn(pos, payload));
    pos += kRecordFrameBytes + len;
  }
  return Status::OK();
}

Result<std::string_view> SegmentReader::RecordAt(uint64_t offset) const {
  const char* base = file_->data();
  if (offset < kHeaderBytes || offset + kRecordFrameBytes > data_end_) {
    return Status::OutOfRange("record offset outside segment " + path());
  }
  const uint64_t len = ReadU32(base + offset);
  if (offset + kRecordFrameBytes + len > data_end_) {
    return Status::OutOfRange("record length outside segment " + path());
  }
  const std::string_view payload(base + offset + kRecordFrameBytes, len);
  if (Crc32(payload) != ReadU32(base + offset + 4)) {
    return Status::InvalidArgument("corrupt record in segment " + path());
  }
  return payload;
}

}  // namespace fedshap
