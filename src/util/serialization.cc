#include "util/serialization.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace fedshap {

void ByteWriter::PutU8(uint8_t value) {
  bytes_.push_back(static_cast<char>(value));
}

void ByteWriter::PutU32(uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void ByteWriter::PutU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<char>((value >> shift) & 0xffu));
  }
}

void ByteWriter::PutVarint(uint64_t value) {
  while (value >= 0x80u) {
    bytes_.push_back(static_cast<char>((value & 0x7fu) | 0x80u));
    value >>= 7;
  }
  bytes_.push_back(static_cast<char>(value));
}

void ByteWriter::PutDouble(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void ByteWriter::PutString(std::string_view value) {
  PutVarint(value.size());
  bytes_.append(value.data(), value.size());
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) {
    return Status::OutOfRange("byte stream truncated (u8)");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return Status::OutOfRange("byte stream truncated (u32)");
  }
  uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
             << shift;
  }
  return value;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return Status::OutOfRange("byte stream truncated (u64)");
  }
  uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
             << shift;
  }
  return value;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t value = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (remaining() < 1) {
      return Status::OutOfRange("byte stream truncated (varint)");
    }
    const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift == 63 && (byte & 0x7fu) > 1) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    value |= static_cast<uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return value;
  }
  return Status::InvalidArgument("varint longer than 10 bytes");
}

Result<double> ByteReader::GetDouble() {
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  return std::bit_cast<double>(bits);
}

Result<std::string> ByteReader::GetString() {
  FEDSHAP_ASSIGN_OR_RETURN(uint64_t size, GetVarint());
  if (size > remaining()) {
    return Status::OutOfRange("byte stream truncated (string body)");
  }
  std::string value(data_.substr(pos_, size));
  pos_ += size;
  return value;
}

namespace {

/// Table-driven CRC-32; the table is built once, on first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  const std::array<uint32_t, 256>& table = Crc32Table();
  uint32_t crc = 0xffffffffu;
  for (char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<uint8_t>(c)) & 0xffu];
  }
  return crc ^ 0xffffffffu;
}

Hasher64& Hasher64::MixU64(uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    state_ ^= (value >> shift) & 0xffu;
    state_ *= 0x100000001b3ULL;  // FNV prime
  }
  return *this;
}

Hasher64& Hasher64::MixDouble(double value) {
  return MixU64(std::bit_cast<uint64_t>(value));
}

Hasher64& Hasher64::MixBytes(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    state_ ^= bytes[i];
    state_ *= 0x100000001b3ULL;
  }
  return *this;
}

Hasher64& Hasher64::MixString(std::string_view value) {
  MixU64(value.size());
  return MixBytes(value.data(), value.size());
}

std::string EncodeFramed(uint32_t magic, uint32_t version,
                         std::string_view payload) {
  ByteWriter header;
  header.PutU32(magic);
  header.PutU32(version);
  header.PutU32(Crc32(payload));
  std::string frame = header.bytes();
  frame.append(payload.data(), payload.size());
  return frame;
}

Result<std::string_view> DecodeFramed(uint32_t magic, uint32_t max_version,
                                      std::string_view frame,
                                      uint32_t* version_out) {
  ByteReader header(frame.substr(0, std::min<size_t>(frame.size(), 12)));
  FEDSHAP_ASSIGN_OR_RETURN(uint32_t stored_magic, header.GetU32());
  if (stored_magic != magic) {
    return Status::InvalidArgument("bad magic: not the expected file kind");
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version > max_version) {
    return Status::FailedPrecondition(
        "file format version " + std::to_string(version) +
        " is newer than supported version " + std::to_string(max_version));
  }
  FEDSHAP_ASSIGN_OR_RETURN(uint32_t stored_crc, header.GetU32());
  std::string_view payload = frame.substr(12);
  if (Crc32(payload) != stored_crc) {
    return Status::InvalidArgument(
        "corrupted file: payload checksum mismatch");
  }
  if (version_out != nullptr) *version_out = version;
  return payload;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  // Temp file in the same directory so the final rename stays within one
  // filesystem (rename(2) is atomic only then).
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid());
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot open temp file " + tmp_path + ": " +
                            std::strerror(errno));
  }
  bool ok = contents.empty() ||
            std::fwrite(contents.data(), 1, contents.size(), file) ==
                contents.size();
  // Flush user-space buffers and reach the disk before the rename makes
  // the new contents visible under `path`.
  ok = (std::fflush(file) == 0) && ok;
  ok = (::fsync(::fileno(file)) == 0) && ok;
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::remove(tmp_path.c_str());
    return Status::Internal("write to temp file " + tmp_path + " failed: " +
                            std::strerror(errno));
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string reason = std::strerror(errno);
    std::remove(tmp_path.c_str());
    return Status::Internal("rename " + tmp_path + " -> " + path +
                            " failed: " + reason);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal("cannot open " + path + ": " +
                            std::strerror(errno));
  }
  std::string contents;
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, read);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal("read of " + path + " failed");
  }
  return contents;
}

}  // namespace fedshap
