#include "util/coalition.h"

#include <bit>

#include "util/logging.h"

namespace fedshap {

Coalition Coalition::Of(std::initializer_list<int> clients) {
  Coalition c;
  for (int client : clients) {
    FEDSHAP_CHECK(client >= 0 && client < kMaxClients);
    c.Add(client);
  }
  return c;
}

Coalition Coalition::FromIndices(const std::vector<int>& clients) {
  Coalition c;
  for (int client : clients) {
    FEDSHAP_CHECK(client >= 0 && client < kMaxClients);
    c.Add(client);
  }
  return c;
}

Coalition Coalition::Full(int n) {
  FEDSHAP_CHECK(n >= 0 && n <= kMaxClients);
  Coalition c;
  for (int w = 0; w < kWords; ++w) {
    int lo = w * 64;
    if (n <= lo) break;
    int bits = std::min(64, n - lo);
    c.words_[w] = (bits == 64) ? ~0ULL : ((1ULL << bits) - 1);
  }
  return c;
}

Coalition Coalition::With(int client) const {
  Coalition c = *this;
  c.Add(client);
  return c;
}

Coalition Coalition::Without(int client) const {
  Coalition c = *this;
  c.Remove(client);
  return c;
}

int Coalition::Count() const {
  int total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

bool Coalition::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

Coalition Coalition::Union(const Coalition& other) const {
  Coalition c;
  for (int w = 0; w < kWords; ++w) c.words_[w] = words_[w] | other.words_[w];
  return c;
}

Coalition Coalition::Intersect(const Coalition& other) const {
  Coalition c;
  for (int w = 0; w < kWords; ++w) c.words_[w] = words_[w] & other.words_[w];
  return c;
}

Coalition Coalition::Minus(const Coalition& other) const {
  Coalition c;
  for (int w = 0; w < kWords; ++w) c.words_[w] = words_[w] & ~other.words_[w];
  return c;
}

Coalition Coalition::ComplementIn(int n) const {
  return Full(n).Minus(*this);
}

bool Coalition::IsSubsetOf(const Coalition& other) const {
  for (int w = 0; w < kWords; ++w) {
    if ((words_[w] & ~other.words_[w]) != 0) return false;
  }
  return true;
}

std::vector<int> Coalition::Members() const {
  std::vector<int> members;
  members.reserve(Count());
  for (int w = 0; w < kWords; ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      int bit = std::countr_zero(bits);
      members.push_back(w * 64 + bit);
      bits &= bits - 1;
    }
  }
  return members;
}

void Coalition::ForEach(const std::function<void(int)>& fn) const {
  for (int w = 0; w < kWords; ++w) {
    uint64_t bits = words_[w];
    while (bits != 0) {
      int bit = std::countr_zero(bits);
      fn(w * 64 + bit);
      bits &= bits - 1;
    }
  }
}

std::string Coalition::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int member : Members()) {
    if (!first) out += ",";
    out += std::to_string(member);
    first = false;
  }
  out += "}";
  return out;
}

size_t Coalition::Hash() const {
  // FNV-1a style fold over the words; adequate for cache keying.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  }
  return static_cast<size_t>(h);
}

}  // namespace fedshap
