#ifndef FEDSHAP_UTIL_FAULT_INJECTOR_H_
#define FEDSHAP_UTIL_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace fedshap {

/// Places in the runtime where a scripted fault can fire. Each site is a
/// deterministic event stream: the Nth call to Fire() for a site is the
/// Nth event, regardless of which thread makes it.
enum class FaultSite {
  kKillWorker = 0,     ///< Cluster worker dies after finishing a training.
  kDropFrame,          ///< A result frame is silently not sent.
  kDupFrame,          ///< A result frame is sent twice.
  kReorderFrame,       ///< A result frame is held back behind the next one.
  kTornStoreWrite,     ///< A store append writes only a record prefix.
  kPartition,          ///< The connection is torn down instead of sending
                       ///< (a network partition; both directions die).
  kDelayFrame,         ///< The frame send is delayed by `ms=` milliseconds.
  kCorruptFrame,       ///< One payload byte is flipped after the CRC is
                       ///< computed; the receiver rejects the frame.
  kRefuseConnect,      ///< An outbound connect fails as if refused.
};
inline constexpr int kNumFaultSites = 9;

/// Stable spec name for a site ("kill-worker", "drop-frame", ...).
std::string_view FaultSiteName(FaultSite site);

/// Deterministic, replayable fault script for the cluster test harness.
///
/// A spec is a `;`-separated list of `site:param=value[,param=value]`
/// clauses, e.g. `kill-worker:after=3;drop-frame:nth=2`. Parameters:
///
///   - `nth=K`    fire exactly on the Kth event at that site (1-based).
///   - `after=N`  fire on every event once N events have completed
///                (i.e. from event N+1 onward). `after=0` fires always.
///   - `until=K`  fire on every event up to and including the Kth — the
///                "broken for a while, then heals" pattern the circuit
///                breaker and reconnect suites script.
///   - `p=P,seed=S` fire on each event with probability P, decided by a
///                hash of (S, event ordinal): the decision sequence is a
///                pure function of the seed, so a run is replayable.
///
/// Exactly one of `nth`, `after`, `until`, or `p` must be given per
/// clause; a bare `site` clause means `after=0`. A clause may also carry
/// `ms=M` (a site-specific magnitude: the delay of `delay-frame`),
/// readable via param_ms(). Fire() is thread-safe; event ordinals are
/// assigned under a lock so concurrent callers see a total order.
class FaultInjector {
 public:
  /// Parses `spec`; empty spec yields an injector that never fires.
  static Result<std::unique_ptr<FaultInjector>> Parse(std::string_view spec);

  /// Process-wide injector parsed from FEDSHAP_FAULT_SPEC at first use
  /// (null when the variable is unset or empty). An invalid spec is
  /// logged and treated as unset. SetGlobal replaces it (tests, forked
  /// cluster workers); passing null clears it.
  static FaultInjector* Global();
  static void SetGlobal(std::unique_ptr<FaultInjector> injector);

  /// Records one event at `site`; returns true when the scripted fault
  /// fires for this event.
  bool Fire(FaultSite site);

  /// Total events recorded / faults fired at `site`.
  uint64_t events(FaultSite site) const;
  uint64_t fired(FaultSite site) const;

  /// The clause's `ms=` magnitude for `site` (0 when not given).
  uint64_t param_ms(FaultSite site) const;

  /// The spec string this injector was parsed from.
  const std::string& spec() const { return spec_; }

  /// Zeroes all event and fired counters (the script itself is kept).
  void Reset();

 private:
  struct Rule {
    bool armed = false;
    // Exactly one of the three trigger kinds is active when armed.
    uint64_t nth = 0;         // 0 = not an nth rule
    bool has_after = false;
    uint64_t after = 0;
    uint64_t until = 0;       // 0 = not an until rule
    double probability = -1.0;  // < 0 = not a probabilistic rule
    uint64_t seed = 0;
    uint64_t ms = 0;          // site-specific magnitude (delay-frame)
    uint64_t events = 0;
    uint64_t fired = 0;
  };

  FaultInjector() = default;

  mutable std::mutex mutex_;
  std::array<Rule, kNumFaultSites> rules_;
  std::string spec_;
};

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_FAULT_INJECTOR_H_
