#ifndef FEDSHAP_UTIL_FRAMING_H_
#define FEDSHAP_UTIL_FRAMING_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/fault_injector.h"
#include "util/status.h"

namespace fedshap {

/// One message on a FrameChannel: a small integer type tag plus an opaque
/// payload (typically ByteWriter-encoded).
struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// Length-prefixed, CRC-framed message stream over a stream socket
/// (a socketpair end or a connected TCP socket; see util/tcp_transport.h).
///
/// Wire format per frame, all integers little-endian:
///
///   [payload_len u32][type u32][crc32(payload) u32][payload bytes]
///
/// The CRC covers the payload, so a torn or corrupted frame surfaces as an
/// error instead of silently desynchronizing the stream — the cluster
/// treats any framing error as a dead peer. Send() is thread-safe (frames
/// from concurrent senders never interleave); Recv() must be called from
/// one thread at a time. The channel owns its fd and closes it on
/// destruction.
///
/// Both directions are bounded and signal-safe: the fd runs in
/// non-blocking mode and every read/write waits in poll() with a
/// deadline, so a stalled peer (full socket buffer, half-open TCP
/// connection) surfaces as DeadlineExceeded within send_timeout_ms
/// instead of wedging the calling thread forever, and a peer that died
/// mid-write raises EPIPE (MSG_NOSIGNAL), never SIGPIPE — which would be
/// fatal to fork-mode cluster workers.
class FrameChannel {
 public:
  explicit FrameChannel(int fd);
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Writes one frame, waiting at most send_timeout_ms for socket-buffer
  /// space (DeadlineExceeded on expiry — the peer is stalled, not just
  /// slow). Fails when the peer has closed the connection.
  Status Send(uint32_t type, std::string_view payload);

  /// Send with scripted network faults. When `faults` is non-null, one
  /// event is recorded per armed network site and a firing site acts
  /// before (partition, delay-frame) or during (corrupt-frame) the write:
  ///
  ///   - partition: tears the connection down (both directions) and
  ///     fails with Unavailable — the injected network split.
  ///   - delay-frame (ms=M): sleeps M ms, then sends normally.
  ///   - corrupt-frame: flips one payload byte after the CRC was
  ///     computed, so the receiver rejects the frame as torn.
  Status SendFaulted(uint32_t type, std::string_view payload,
                     FaultInjector* faults);

  /// Reads one frame, waiting up to `timeout_ms` for it to begin
  /// (negative = wait forever). Returns nullopt on timeout, NotFound on a
  /// clean peer close at a frame boundary, and an error Status on a torn
  /// or CRC-corrupt frame.
  Result<std::optional<Frame>> Recv(int timeout_ms);

  /// Bounds how long Send() may wait for the peer to drain its socket
  /// buffer. Negative = wait forever (not recommended off-box).
  void set_send_timeout_ms(int timeout_ms) { send_timeout_ms_ = timeout_ms; }
  int send_timeout_ms() const { return send_timeout_ms_; }

  /// Shuts down both directions of the socket, unblocking any thread in
  /// Recv() (sees EOF) or Send() (sees an error). Idempotent.
  void Shutdown();

  int fd() const { return fd_; }

 private:
  Status ReadExact(char* out, size_t len, int timeout_ms, bool* timed_out,
                   bool* clean_eof);
  Status WriteAll(const char* data, size_t len);

  int fd_;
  /// Default send deadline: long enough for any legitimately slow peer
  /// on a LAN, short enough that a wedged one is detected the same order
  /// of magnitude as the heartbeat timeout.
  int send_timeout_ms_ = 10000;
  std::mutex send_mutex_;
};

/// A connected pair of local stream sockets (socketpair), as channels.
/// Either end may be handed to another thread or kept across fork() for a
/// subprocess worker.
Result<std::pair<std::unique_ptr<FrameChannel>, std::unique_ptr<FrameChannel>>>
CreateChannelPair();

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_FRAMING_H_
