#ifndef FEDSHAP_UTIL_FRAMING_H_
#define FEDSHAP_UTIL_FRAMING_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/status.h"

namespace fedshap {

/// One message on a FrameChannel: a small integer type tag plus an opaque
/// payload (typically ByteWriter-encoded).
struct Frame {
  uint32_t type = 0;
  std::string payload;
};

/// Length-prefixed, CRC-framed message stream over a local stream socket.
///
/// Wire format per frame, all integers little-endian:
///
///   [payload_len u32][type u32][crc32(payload) u32][payload bytes]
///
/// The CRC covers the payload, so a torn or corrupted frame surfaces as an
/// error instead of silently desynchronizing the stream — the cluster
/// treats any framing error as a dead peer. Send() is thread-safe (frames
/// from concurrent senders never interleave); Recv() must be called from
/// one thread at a time. The channel owns its fd and closes it on
/// destruction.
class FrameChannel {
 public:
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel();

  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  /// Writes one frame. Fails when the peer has closed the connection.
  Status Send(uint32_t type, std::string_view payload);

  /// Reads one frame, waiting up to `timeout_ms` for it to begin
  /// (negative = wait forever). Returns nullopt on timeout, NotFound on a
  /// clean peer close at a frame boundary, and an error Status on a torn
  /// or CRC-corrupt frame.
  Result<std::optional<Frame>> Recv(int timeout_ms);

  /// Shuts down both directions of the socket, unblocking any thread in
  /// Recv() (sees EOF) or Send() (sees an error). Idempotent.
  void Shutdown();

  int fd() const { return fd_; }

 private:
  Status ReadExact(char* out, size_t len, int timeout_ms, bool* timed_out,
                   bool* clean_eof);

  int fd_;
  std::mutex send_mutex_;
};

/// A connected pair of local stream sockets (socketpair), as channels.
/// Either end may be handed to another thread or kept across fork() for a
/// subprocess worker.
Result<std::pair<std::unique_ptr<FrameChannel>, std::unique_ptr<FrameChannel>>>
CreateChannelPair();

}  // namespace fedshap

#endif  // FEDSHAP_UTIL_FRAMING_H_
