#include "util/mapped_file.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define FEDSHAP_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FEDSHAP_HAVE_MMAP 0
#include "util/serialization.h"
#endif

namespace fedshap {

Result<std::unique_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
#if FEDSHAP_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal("open failed for " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("fstat failed for " + path + ": " +
                            std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const char* data = nullptr;
  if (size > 0) {
    void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapping == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::Internal("mmap failed for " + path + ": " +
                              std::strerror(err));
    }
    data = static_cast<const char*>(mapping);
  }
  // The mapping keeps the pages alive; the descriptor is no longer needed.
  ::close(fd);
  return std::unique_ptr<MappedFile>(
      new MappedFile(path, data, size, /*mmapped=*/true));
#else
  // Portability fallback: load the file into heap memory. Same contract,
  // no demand paging.
  FEDSHAP_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  char* data = nullptr;
  if (!contents.empty()) {
    data = new char[contents.size()];
    std::memcpy(data, contents.data(), contents.size());
  }
  return std::unique_ptr<MappedFile>(
      new MappedFile(path, data, contents.size(), /*mmapped=*/false));
#endif
}

MappedFile::~MappedFile() {
#if FEDSHAP_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#else
  if (!mmapped_) delete[] data_;
#endif
}

}  // namespace fedshap
