/// Hospital collaboration: the full pipeline on real (synthetic) FL
/// training, mirroring the paper's Fig. 1(a) story.
///
/// Three hospitals hold digit images from different "writers" (patients /
/// devices), train a shared softmax classifier with FedAvg, and split a
/// collaboration reward proportionally to their exact Shapley data values.
/// Every coalition's model really is trained — 2^3 = 8 FedAvg runs.

#include <cstdio>

#include "core/exact.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/logistic_regression.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

int main() {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  // 1. Each hospital contributes writer-specific digit data; hospital 2
  //    has twice the data of hospital 0.
  DigitsConfig digits;
  digits.image_size = 8;
  digits.num_classes = 10;
  digits.num_writers = 12;
  Rng rng(7);
  Result<FederatedSource> source = GenerateDigits(digits, 1500, rng);
  if (!source.ok()) return 1;

  Dataset train = source->data.Head(1100);
  std::vector<size_t> test_idx;
  for (size_t i = 1100; i < source->data.size(); ++i) test_idx.push_back(i);
  Dataset test = source->data.Subset(test_idx);

  PartitionConfig part;
  part.scheme = PartitionScheme::kDiffSizeSameDist;  // sizes 1 : 2 : 3
  part.num_clients = 3;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  if (!clients.ok()) return 1;
  std::printf("hospital datasets: %zu / %zu / %zu samples\n",
              (*clients)[0].size(), (*clients)[1].size(),
              (*clients)[2].size());

  // 2. Build the FL utility: train FedAvg per coalition, score on the
  //    shared test set.
  LogisticRegression prototype(64, 10);
  Rng init(13);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 4;
  config.local.epochs = 1;
  config.local.learning_rate = 0.25;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(clients).value(), std::move(test), prototype, config);
  if (!utility.ok()) return 1;

  UtilityCache cache(utility->get());
  UtilitySession session(&cache);
  Result<double> full = session.Evaluate(Coalition::Full(3));
  Result<double> none = session.Evaluate(Coalition());
  if (!full.ok() || !none.ok()) return 1;
  std::printf("federation accuracy: %.3f (untrained: %.3f)\n\n", *full,
              *none);

  // 3. Exact Shapley values -> reward split.
  Result<ValuationResult> values = ExactShapleyMc(session);
  if (!values.ok()) return 1;

  const double reward_pool = 300000.0;  // collaboration budget to split
  double total = 0.0;
  for (double v : values->values) total += v;
  std::printf("%-10s %10s %14s\n", "hospital", "SV", "reward share");
  for (int i = 0; i < 3; ++i) {
    const double share =
        total > 0 ? values->values[i] / total * reward_pool : 0.0;
    std::printf("%-10d %10.4f %13.0f$\n", i, values->values[i], share);
  }
  std::printf(
      "\n(larger datasets earn larger rewards; trained %zu FL models)\n",
      values->num_trainings);
  return 0;
}
