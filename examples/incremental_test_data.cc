/// Incremental test data: the linear-additivity property in practice
/// (Def. 2(iii) of the paper).
///
/// A consortium valued its providers against test shard T1. A new test
/// shard T2 arrives. Because the Shapley value is linear in the utility
/// function — and accuracy over T1 u T2 is the size-weighted average of
/// the shard accuracies — the valuation under T1 u T2 is the same weighted
/// average of the two shard valuations. Old valuations stay reusable; no
/// retraining is needed when test data grows.

#include <cmath>
#include <cstdio>

#include "core/exact.h"
#include "core/report.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/logistic_regression.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

namespace {

/// Exact SV of the 4 providers against the given test shard.
Result<ValuationResult> ValueAgainst(const std::vector<Dataset>& providers,
                                     const Model& prototype,
                                     const FedAvgConfig& config,
                                     Dataset test_shard) {
  FEDSHAP_ASSIGN_OR_RETURN(
      std::unique_ptr<FedAvgUtility> utility,
      FedAvgUtility::Create(providers, std::move(test_shard), prototype,
                            config));
  UtilityCache cache(utility.get());
  UtilitySession session(&cache);
  return ExactShapleyMc(session);
}

}  // namespace

int main() {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  Rng rng(99);
  DigitsConfig digits;
  digits.image_size = 8;
  digits.num_classes = 10;
  Result<FederatedSource> source = GenerateDigits(digits, 2100, rng);
  if (!source.ok()) return 1;

  Dataset train = source->data.Head(1500);
  std::vector<size_t> t1_idx, t2_idx;
  for (size_t i = 1500; i < 1800; ++i) t1_idx.push_back(i);
  for (size_t i = 1800; i < source->data.size(); ++i) t2_idx.push_back(i);
  Dataset t1 = source->data.Subset(t1_idx);
  Dataset t2 = source->data.Subset(t2_idx);
  std::vector<size_t> both_idx = t1_idx;
  both_idx.insert(both_idx.end(), t2_idx.begin(), t2_idx.end());
  Dataset t_union = source->data.Subset(both_idx);

  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeDiffDist;
  part.num_clients = 4;
  Result<std::vector<Dataset>> providers = PartitionDataset(train, part, rng);
  if (!providers.ok()) return 1;

  LogisticRegression prototype(64, 10);
  Rng init(7);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 4;
  config.local.learning_rate = 0.25;

  Result<ValuationResult> phi_t1 =
      ValueAgainst(*providers, prototype, config, t1);
  Result<ValuationResult> phi_t2 =
      ValueAgainst(*providers, prototype, config, t2);
  Result<ValuationResult> phi_union =
      ValueAgainst(*providers, prototype, config, t_union);
  if (!phi_t1.ok() || !phi_t2.ok() || !phi_union.ok()) return 1;

  const double w1 = static_cast<double>(t1.size()) / t_union.size();
  const double w2 = static_cast<double>(t2.size()) / t_union.size();
  std::printf("test shards: |T1|=%zu |T2|=%zu (weights %.3f / %.3f)\n\n",
              t1.size(), t2.size(), w1, w2);
  std::printf("%-9s %10s %10s %16s %12s\n", "provider", "phi(T1)",
              "phi(T2)", "w1*phi1+w2*phi2", "phi(T1 u T2)");
  double max_gap = 0.0;
  for (int i = 0; i < 4; ++i) {
    const double combined =
        w1 * phi_t1->values[i] + w2 * phi_t2->values[i];
    const double direct = phi_union->values[i];
    max_gap = std::max(max_gap, std::abs(combined - direct));
    std::printf("%-9d %10.4f %10.4f %16.4f %12.4f\n", i,
                phi_t1->values[i], phi_t2->values[i], combined, direct);
  }
  std::printf("\nmax |combined - direct| = %.2e  (machine precision: "
              "coalition models are identical across the three\n"
              " valuations, and accuracy over T1 u T2 is exactly the "
              "size-weighted shard average)\n",
              max_gap);
  return 0;
}
