/// Quickstart: the paper's running example (Fig. 1a / Table I) in a dozen
/// lines of fedshap API.
///
/// Three hospitals jointly train an FL model; the utility of every coalition
/// is known (Table I of the paper). We compute each hospital's exact
/// Shapley data value, then approximate it with IPSS under a budget of 5
/// utility evaluations (the paper's gamma for n=3) and compare.

#include <cstdio>

#include "core/exact.h"
#include "core/ipss.h"
#include "core/valuation_metrics.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

int main() {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  // U(S) for all 8 coalitions of {hospital0, hospital1, hospital2},
  // indexed by bitmask (paper Table I).
  Result<TableUtility> utility = TableUtility::FromValues(
      3, {0.10, 0.50, 0.70, 0.80, 0.60, 0.90, 0.90, 0.96});
  if (!utility.ok()) {
    std::fprintf(stderr, "failed to build utility: %s\n",
                 utility.status().ToString().c_str());
    return 1;
  }

  UtilityCache cache(&utility.value());

  // Exact Shapley values (trains all 2^3 coalitions).
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  if (!exact.ok()) {
    std::fprintf(stderr, "exact SV failed: %s\n",
                 exact.status().ToString().c_str());
    return 1;
  }

  // IPSS under the paper's n=3 budget: gamma = 5 evaluations.
  UtilitySession ipss_session(&cache);
  IpssConfig config;
  config.total_rounds = 5;
  Result<ValuationResult> approx = IpssShapley(ipss_session, config);
  if (!approx.ok()) {
    std::fprintf(stderr, "IPSS failed: %s\n",
                 approx.status().ToString().c_str());
    return 1;
  }

  std::printf("Shapley data valuation of three hospitals (paper Table I)\n");
  std::printf("%-12s %12s %14s\n", "client", "exact SV", "IPSS (gamma=5)");
  for (int i = 0; i < 3; ++i) {
    std::printf("hospital %-3d %12.4f %14.4f\n", i, exact->values[i],
                approx->values[i]);
  }
  std::printf("\nexact evaluations used:  %zu coalitions\n",
              exact->num_trainings);
  std::printf("IPSS evaluations used:   %zu coalitions\n",
              approx->num_trainings);
  std::printf("relative l2 error:       %.4f\n",
              RelativeL2Error(exact->values, approx->values));
  return 0;
}
