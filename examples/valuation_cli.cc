/// valuation_cli — a small command-line tool over the public API: builds a
/// synthetic federated workload, runs the requested valuation algorithm and
/// prints (optionally exports) a valuation report.
///
/// Usage:
///   valuation_cli [--n=<clients>] [--gamma=<budget>] [--seed=<u64>]
///                 [--algo=exact|ipss|adaptive|tmc|gtb|cc|loo|banzhaf]
///                 [--partition=iid|skew|sizes|noisy]
///                 [--csv=<path>]
///
/// Examples:
///   valuation_cli --n=6 --algo=ipss --gamma=12
///   valuation_cli --n=8 --algo=adaptive --partition=skew --csv=report.csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/alternatives.h"
#include "core/exact.h"
#include "core/ipss.h"
#include "core/report.h"
#include "baselines/cc_shapley.h"
#include "baselines/extended_gtb.h"
#include "baselines/extended_tmc.h"
#include "data/partition.h"
#include "data/statistics.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/logistic_regression.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

namespace {

struct CliOptions {
  int n = 5;
  int gamma = 16;
  uint64_t seed = 2025;
  std::string algo = "ipss";
  std::string partition = "iid";
  std::string csv;
};

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--n=", 0) == 0) {
      options.n = std::atoi(value("--n="));
    } else if (arg.rfind("--gamma=", 0) == 0) {
      options.gamma = std::atoi(value("--gamma="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(value("--seed="), nullptr, 10);
    } else if (arg.rfind("--algo=", 0) == 0) {
      options.algo = value("--algo=");
    } else if (arg.rfind("--partition=", 0) == 0) {
      options.partition = value("--partition=");
    } else if (arg.rfind("--csv=", 0) == 0) {
      options.csv = value("--csv=");
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  const CliOptions options = ParseArgs(argc, argv);
  if (options.n < 2 || options.n > 16) {
    std::fprintf(stderr, "--n must be in [2, 16]\n");
    return 2;
  }

  // 1. Workload: synthetic digits, federated per --partition.
  DigitsConfig digits;
  digits.image_size = 8;
  digits.num_classes = 10;
  Rng rng(options.seed);
  Result<FederatedSource> source =
      GenerateDigits(digits, 250 * options.n + 400, rng);
  if (!source.ok()) return 1;
  auto [train, test] = source->data.Split(
      1.0 - 400.0 / source->data.size(), rng);

  PartitionConfig part;
  part.num_clients = options.n;
  if (options.partition == "iid") {
    part.scheme = PartitionScheme::kSameSizeSameDist;
  } else if (options.partition == "skew") {
    part.scheme = PartitionScheme::kSameSizeDiffDist;
  } else if (options.partition == "sizes") {
    part.scheme = PartitionScheme::kDiffSizeSameDist;
  } else if (options.partition == "noisy") {
    part.scheme = PartitionScheme::kSameSizeNoisyLabel;
  } else {
    std::fprintf(stderr, "unknown --partition=%s\n",
                 options.partition.c_str());
    return 2;
  }
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  if (!clients.ok()) return 1;

  std::printf("federation of %d clients (%s partition):\n", options.n,
              options.partition.c_str());
  for (int i = 0; i < options.n; ++i) {
    std::printf("  client %d: %s\n", i,
                SummaryToString(Summarize((*clients)[i])).c_str());
  }
  std::printf("  drift across clients: %.4f\n\n", ClientDrift(*clients));

  // 2. Utility oracle.
  LogisticRegression prototype(64, 10);
  Rng init(options.seed + 1);
  prototype.InitializeParameters(init);
  FedAvgConfig fl;
  fl.rounds = 4;
  fl.local.epochs = 2;
  fl.local.learning_rate = 0.25;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(clients).value(), std::move(test), prototype, fl);
  if (!utility.ok()) return 1;
  UtilityCache cache(utility->get());

  // 3. Run the requested algorithm (plus exact ground truth when cheap).
  std::vector<double> exact_values;
  ValuationReport report("fedshap valuation (n=" +
                             std::to_string(options.n) + ", algo=" +
                             options.algo + ")",
                         {});
  if (options.n <= 12) {
    UtilitySession session(&cache);
    Result<ValuationResult> exact = ExactShapleyMc(session);
    if (!exact.ok()) return 1;
    exact_values = exact->values;
    report = ValuationReport("fedshap valuation (n=" +
                                 std::to_string(options.n) + ", algo=" +
                                 options.algo + ")",
                             exact_values);
    report.Add({"exact (MC-SV)", *exact, true});
  }

  UtilitySession session(&cache);
  Result<ValuationResult> run = Status::Internal("unset");
  if (options.algo == "exact") {
    run = ExactShapleyMc(session);
  } else if (options.algo == "ipss") {
    IpssConfig config;
    config.total_rounds = options.gamma;
    config.seed = options.seed;
    run = IpssShapley(session, config);
  } else if (options.algo == "adaptive") {
    AdaptiveIpssConfig config;
    config.max_rounds = 1 << std::min(options.n, 12);
    config.seed = options.seed;
    run = AdaptiveIpssShapley(session, config);
  } else if (options.algo == "tmc") {
    ExtendedTmcConfig config;
    config.permutations = options.gamma;
    config.seed = options.seed;
    run = ExtendedTmcShapley(session, config);
  } else if (options.algo == "gtb") {
    ExtendedGtbConfig config;
    config.samples = options.gamma;
    config.seed = options.seed;
    run = ExtendedGtbShapley(session, config);
  } else if (options.algo == "cc") {
    CcShapleyConfig config;
    config.rounds = options.gamma;
    config.seed = options.seed;
    run = CcShapley(session, config);
  } else if (options.algo == "loo") {
    run = LeaveOneOut(session);
  } else if (options.algo == "banzhaf") {
    BanzhafConfig config;
    config.samples = options.gamma;
    config.seed = options.seed;
    run = MonteCarloBanzhaf(session, config);
  } else {
    std::fprintf(stderr, "unknown --algo=%s\n", options.algo.c_str());
    return 2;
  }
  if (!run.ok()) {
    std::fprintf(stderr, "valuation failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  report.Add({options.algo, *run, options.algo == "exact"});

  std::fputs(report.Render().c_str(), stdout);
  if (!options.csv.empty()) {
    Status written = report.WriteCsv(options.csv);
    if (!written.ok()) {
      std::fprintf(stderr, "CSV export failed: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("\nreport written to %s\n", options.csv.c_str());
  }
  return 0;
}
