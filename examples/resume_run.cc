/// Resumable valuation end to end: a sweep that checkpoints its estimator
/// state after every chunk of utility evaluations and persists every FL
/// training to an on-disk utility store — then survives being killed.
///
/// Simulate a crash and recover from it:
///
///   ./resume_run --kill-after=2 --cache-file=/tmp/demo --snapshot=/tmp/demo.snap
///   ./resume_run --resume      --cache-file=/tmp/demo --snapshot=/tmp/demo.snap
///
/// The second invocation restores the snapshot (cursor, recorded
/// utilities, RNG state), preloads the persisted trainings, and finishes
/// in seconds with estimates bit-identical to an uninterrupted run.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/resumable.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "fl/utility_store.h"
#include "ml/logistic_regression.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

namespace {

struct Options {
  std::string algo = "ipss";   // ipss | stratified | exact | perm
  int n = 8;
  int gamma = 0;               // 0 = 4*n
  uint64_t seed = 7;
  int chunk = 4;               // work units per checkpoint
  int kill_after = 0;          // exit after this many chunks (0 = never)
  int threads = 1;
  std::string snapshot = "resume_run.snapshot";
  std::string cache_stem;      // empty = no persistent store
  bool resume = false;
};

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--algo=", 0) == 0) {
      options.algo = arg.substr(7);
    } else if (arg.rfind("--n=", 0) == 0) {
      options.n = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--gamma=", 0) == 0) {
      options.gamma = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--chunk=", 0) == 0) {
      options.chunk = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--kill-after=", 0) == 0) {
      options.kill_after = std::atoi(arg.c_str() + 13);
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--snapshot=", 0) == 0) {
      options.snapshot = arg.substr(11);
    } else if (arg.rfind("--cache-file=", 0) == 0) {
      options.cache_stem = arg.substr(13);
    } else if (arg == "--resume") {
      options.resume = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.gamma <= 0) options.gamma = 4 * options.n;
  if (options.chunk < 1) options.chunk = 1;
  return options;
}

/// A small but real FedAvg workload: every utility evaluation trains a
/// federated logistic-regression model, so interrupting and resuming has
/// visible cost to save.
std::unique_ptr<UtilityFunction> MakeUtility(const Options& options) {
  DigitsConfig digits;
  digits.image_size = 6;
  digits.num_classes = 5;
  digits.num_writers = 2 * options.n;
  digits.pixel_noise = 0.3;
  Rng rng(options.seed);
  Result<FederatedSource> source =
      GenerateDigits(digits, 120 * options.n + 200, rng);
  FEDSHAP_CHECK_OK(source.status());

  const size_t test_rows = 200;
  const size_t train_rows = source->data.size() - test_rows;
  FederatedSource train;
  train.num_groups = source->num_groups;
  train.data = source->data.Head(train_rows);
  train.group_ids.assign(source->group_ids.begin(),
                         source->group_ids.begin() + train_rows);
  std::vector<size_t> test_idx;
  for (size_t i = train_rows; i < source->data.size(); ++i) {
    test_idx.push_back(i);
  }
  Dataset test = source->data.Subset(test_idx);

  Result<std::vector<Dataset>> clients =
      PartitionByGroup(train, options.n, rng);
  FEDSHAP_CHECK_OK(clients.status());

  LogisticRegression prototype(test.num_features(), test.num_classes());
  Rng init(options.seed + 17);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 3;
  config.local.epochs = 1;
  config.local.batch_size = 16;
  config.local.learning_rate = 0.3;
  config.seed = options.seed + 29;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(clients).value(), std::move(test), prototype, config);
  FEDSHAP_CHECK_OK(utility.status());
  return std::move(utility).value();
}

std::unique_ptr<ResumableEstimator> MakeEstimator(const Options& options) {
  if (options.algo == "ipss") {
    IpssConfig config;
    config.total_rounds = options.gamma;
    config.seed = options.seed;
    return std::make_unique<IpssSweep>(options.n, config);
  }
  if (options.algo == "stratified") {
    StratifiedConfig config;
    config.total_rounds = options.gamma;
    config.seed = options.seed;
    return std::make_unique<StratifiedSweep>(options.n, config);
  }
  if (options.algo == "exact") {
    return std::make_unique<ExactSweep>(options.n, SvScheme::kMarginal);
  }
  if (options.algo == "perm") {
    PermutationMcConfig config;
    config.permutations = std::max(1, options.gamma / options.n);
    config.seed = options.seed;
    return std::make_unique<PermutationMcSweep>(options.n, config);
  }
  std::fprintf(stderr, "unknown --algo=%s (ipss|stratified|exact|perm)\n",
               options.algo.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  Options options = ParseOptions(argc, argv);
  std::printf("resume_run: algo=%s n=%d gamma=%d chunk=%d threads=%d\n",
              options.algo.c_str(), options.n, options.gamma,
              options.chunk, options.threads);
  std::printf("snapshot=%s cache=%s resume=%s kill-after=%d\n\n",
              options.snapshot.c_str(),
              options.cache_stem.empty() ? "(none)"
                                         : options.cache_stem.c_str(),
              options.resume ? "yes" : "no", options.kill_after);

  std::unique_ptr<UtilityFunction> utility = MakeUtility(options);
  UtilityCache cache(utility.get());

  // Persistent utility store: every FL training this process performs
  // becomes durable; with --resume, previous processes' trainings are
  // preloaded as warm cache entries.
  std::unique_ptr<UtilityStore> store;
  if (!options.cache_stem.empty()) {
    Result<std::unique_ptr<UtilityStore>> opened = OpenAndAttachStore(
        options.cache_stem, options.resume, *utility, cache,
        /*flush_every=*/1);
    FEDSHAP_CHECK_OK(opened.status());
    store = std::move(opened).value();
    std::printf("[store] %s: %zu trainings preloaded\n",
                store->path().c_str(), store->loaded_entries());
  }

  std::unique_ptr<ResumableEstimator> estimator = MakeEstimator(options);
  if (options.resume) {
    Status restored = LoadSnapshot(*estimator, options.snapshot);
    if (restored.ok()) {
      std::printf("[snapshot] restored %s at %zu/%zu work units\n",
                  options.snapshot.c_str(), estimator->completed_units(),
                  estimator->total_units());
    } else if (restored.code() == StatusCode::kNotFound) {
      std::printf("[snapshot] %s not found, starting fresh\n",
                  options.snapshot.c_str());
    } else {
      std::fprintf(stderr, "snapshot restore failed: %s\n",
                   restored.ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
  }
  UtilitySession session(&cache, pool.get());

  int chunks_done = 0;
  while (!estimator->done()) {
    Status stepped = estimator->Step(session, options.chunk);
    if (!stepped.ok()) {
      std::fprintf(stderr, "step failed: %s\n",
                   stepped.ToString().c_str());
      return 1;
    }
    Status saved = SaveSnapshot(*estimator, options.snapshot);
    if (!saved.ok()) {
      std::fprintf(stderr, "snapshot save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    ++chunks_done;
    std::printf("[step] %zu/%zu work units done (checkpoint written)\n",
                estimator->completed_units(), estimator->total_units());
    if (options.kill_after > 0 && chunks_done >= options.kill_after &&
        !estimator->done()) {
      std::printf("\n[kill] simulating a crash after %d chunks; relaunch "
                  "with --resume to continue\n",
                  chunks_done);
      return 17;
    }
  }

  Result<ValuationResult> result = estimator->Finish(session);
  if (!result.ok()) {
    std::fprintf(stderr, "finish failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nper-client data values (%s):\n", options.algo.c_str());
  for (int i = 0; i < options.n; ++i) {
    std::printf("  client %-3d %+.6f\n", i, result->values[i]);
  }
  std::printf("\nthis process: %zu evaluations, %zu distinct trainings "
              "charged, %.3fs charged\n",
              result->num_evaluations, result->num_trainings,
              result->charged_seconds);
  std::printf("cache: %zu hits, %zu misses, %zu preloaded from disk\n",
              cache.hits(), cache.misses(), cache.preloaded());
  // The run is complete: drop the checkpoint so a later fresh invocation
  // does not accidentally resume a finished sweep.
  std::remove(options.snapshot.c_str());
  return 0;
}
