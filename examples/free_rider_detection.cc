/// Free-rider detection: using IPSS to audit a federation cheaply.
///
/// Eight clients join an FL federation. Two are free riders (one holds no
/// data, one holds garbage labels). Computing exact Shapley values would
/// train 2^8 = 256 FL models; IPSS spots both free riders with a budget of
/// 37 evaluations (k* = 2: all coalitions of size <= 2 plus a balanced
/// sample of triples).

#include <algorithm>
#include <cstdio>

#include "core/exact.h"
#include "core/ipss.h"
#include "core/valuation_metrics.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/mlp.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

int main() {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  const int n = 8;
  Rng rng(21);
  Result<Dataset> pool = GenerateBlobs(4, 8, 4.0, 1700, rng);
  if (!pool.ok()) return 1;
  auto [train, test] = pool->Split(0.75, rng);

  PartitionConfig part;
  part.scheme = PartitionScheme::kSameSizeSameDist;
  part.num_clients = n;
  Result<std::vector<Dataset>> clients = PartitionDataset(train, part, rng);
  if (!clients.ok()) return 1;
  std::vector<Dataset> federation = std::move(clients).value();

  // Client 3: empty dataset (pure free rider).
  Result<Dataset> empty = Dataset::Create(8, 4);
  if (!empty.ok()) return 1;
  federation[3] = std::move(empty).value();
  // Client 6: completely scrambled labels (poisoned free rider).
  if (!FlipLabels(federation[6], 1.0, rng).ok()) return 1;

  Mlp prototype(8, 12, 4);
  Rng init(22);
  prototype.InitializeParameters(init);
  FedAvgConfig config;
  config.rounds = 3;
  config.local.epochs = 1;
  config.local.learning_rate = 0.25;
  Result<std::unique_ptr<FedAvgUtility>> utility = FedAvgUtility::Create(
      std::move(federation), std::move(test), prototype, config);
  if (!utility.ok()) return 1;

  UtilityCache cache(utility->get());
  UtilitySession session(&cache);
  IpssConfig ipss;
  ipss.total_rounds = 37;  // all coalitions of size <= 2, plus sampled triples
  Result<ValuationResult> values = IpssShapley(session, ipss);
  if (!values.ok()) {
    std::fprintf(stderr, "%s\n", values.status().ToString().c_str());
    return 1;
  }

  std::printf("IPSS audit of an 8-client federation (budget: %zu of 256"
              " coalitions)\n\n",
              values->num_trainings);
  std::printf("%-8s %12s  %s\n", "client", "data value", "verdict");
  // Flag clients whose value is < 25% of the average positive value.
  double positive_mean = 0.0;
  int positive_count = 0;
  for (double v : values->values) {
    if (v > 0) {
      positive_mean += v;
      ++positive_count;
    }
  }
  positive_mean /= std::max(positive_count, 1);
  for (int i = 0; i < n; ++i) {
    const double v = values->values[i];
    const bool flagged = v < 0.25 * positive_mean;
    std::printf("%-8d %12.5f  %s\n", i, v,
                flagged ? "FLAGGED (free rider?)" : "contributing");
  }
  std::printf("\nplanted free riders: clients 3 (no data) and 6 (random"
              " labels)\n");
  return 0;
}
