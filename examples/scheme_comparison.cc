/// Scheme comparison: why the paper builds IPSS on MC-SV rather than CC-SV.
///
/// Replicates the paper's Sec. III-B analysis empirically: under the FL
/// linear-regression noise model (Donahue & Kleinberg), the unified
/// stratified-sampling framework (Alg. 1) is run many times with each
/// computation scheme, and the across-run variance of the estimates is
/// compared. MC-SV should come out lower (Theorem 2).

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/stratified.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

int main() {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  LinearRegressionUtility::Params params;
  params.num_clients = 8;
  params.samples_per_client = 40;
  params.feature_dim = 4;
  params.noise_mean = 1.5;
  params.initial_mse = 10.0;
  params.noise_scale = 0.001;  // Var[U(M_D)] = (0.001 * |D_S|)^2
  LinearRegressionUtility utility(params);

  const int n = params.num_clients;
  const int runs = 200;
  std::vector<std::vector<double>> mc_estimates, cc_estimates;
  for (int run = 0; run < runs; ++run) {
    utility.Reseed(1000 + run);  // fresh noise realization
    UtilityCache cache(&utility);
    StratifiedConfig config;
    // Theorem 2 compares the estimators with pairs always evaluated and
    // every client covered in every stratum (m_{i,k} > 0).
    config.rounds_per_stratum = {160, 12, 10, 8, 8, 10, 12, 1};
    config.pair_policy = PairPolicy::kEvaluateOnDemand;
    config.seed = 77 + run;

    config.scheme = SvScheme::kMarginal;
    UtilitySession mc_session(&cache);
    Result<ValuationResult> mc = StratifiedSamplingShapley(mc_session, config);
    if (!mc.ok()) return 1;
    mc_estimates.push_back(mc->values);

    config.scheme = SvScheme::kComplementary;
    UtilitySession cc_session(&cache);
    Result<ValuationResult> cc = StratifiedSamplingShapley(cc_session, config);
    if (!cc.ok()) return 1;
    cc_estimates.push_back(cc->values);
  }

  auto per_client_variance = [&](const std::vector<std::vector<double>>& e,
                                 int client) {
    double mean = 0.0;
    for (const auto& v : e) mean += v[client];
    mean /= e.size();
    double var = 0.0;
    for (const auto& v : e) var += (v[client] - mean) * (v[client] - mean);
    return var / e.size();
  };

  std::printf("variance of Alg. 1 estimates over %d runs (gamma=24, n=%d)\n",
              runs, n);
  std::printf("FL linear regression utility, noise per Eq. (8)\n\n");
  std::printf("%-8s %14s %14s\n", "client", "Var[MC-SV]", "Var[CC-SV]");
  double mc_total = 0.0, cc_total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double mc_var = per_client_variance(mc_estimates, i);
    const double cc_var = per_client_variance(cc_estimates, i);
    mc_total += mc_var;
    cc_total += cc_var;
    std::printf("%-8d %14.3e %14.3e\n", i, mc_var, cc_var);
  }
  std::printf("\ntotal: MC=%.3e vs CC=%.3e -> %s has lower variance"
              " (Theorem 2 predicts MC)\n",
              mc_total, cc_total, mc_total < cc_total ? "MC-SV" : "CC-SV");
  return 0;
}
