/// Data marketplace: budgeted valuation for revenue sharing.
///
/// A data marketplace sells access to a model trained on six providers'
/// tabular data (Adult-like, GBDT model — note gradient-based valuation
/// methods cannot handle tree models; sampling-based ones can). The
/// marketplace needs provider payouts *today*, so instead of 64 exact
/// coalition trainings it spends a budget of 22 and compares IPSS with
/// Extended-TMC at the same budget.

#include <cstdio>

#include "baselines/extended_tmc.h"
#include "core/exact.h"
#include "core/ipss.h"
#include "core/valuation_metrics.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "ml/kernel_backend.h"

using namespace fedshap;

int main() {
  // Provenance: which kernel backend / worker budget produced this
  // run (see ml/kernel_backend.h).
  std::printf("%s\n", fedshap::KernelProvenanceString().c_str());
  const int n = 6;
  TabularConfig tabular;
  tabular.num_occupations = 18;
  Rng rng(33);
  Result<FederatedSource> source = GenerateTabular(tabular, 2400, rng);
  if (!source.ok()) return 1;

  Dataset train = source->data.Head(1900);
  std::vector<size_t> test_idx;
  for (size_t i = 1900; i < source->data.size(); ++i) test_idx.push_back(i);
  Dataset test = source->data.Subset(test_idx);

  FederatedSource train_source;
  train_source.data = std::move(train);
  train_source.group_ids.assign(source->group_ids.begin(),
                                source->group_ids.begin() + 1900);
  train_source.num_groups = source->num_groups;
  Result<std::vector<Dataset>> providers =
      PartitionByGroup(train_source, n, rng);
  if (!providers.ok()) return 1;

  GbdtConfig gbdt;
  gbdt.num_trees = 12;
  gbdt.max_depth = 3;
  Result<std::unique_ptr<GbdtUtility>> utility =
      GbdtUtility::Create(std::move(providers).value(), std::move(test),
                          gbdt);
  if (!utility.ok()) return 1;

  UtilityCache cache(utility->get());

  // Ground truth for reference (the marketplace would skip this).
  UtilitySession exact_session(&cache);
  Result<ValuationResult> exact = ExactShapleyMc(exact_session);
  if (!exact.ok()) return 1;

  const int budget = 22;
  UtilitySession ipss_session(&cache);
  IpssConfig ipss_config;
  ipss_config.total_rounds = budget;
  Result<ValuationResult> ipss = IpssShapley(ipss_session, ipss_config);
  if (!ipss.ok()) return 1;

  UtilitySession tmc_session(&cache);
  ExtendedTmcConfig tmc_config;
  tmc_config.permutations = budget / n;  // match the coalition budget
  tmc_config.truncation_tolerance = 0.005;
  Result<ValuationResult> tmc = ExtendedTmcShapley(tmc_session, tmc_config);
  if (!tmc.ok()) return 1;

  const double monthly_revenue = 120000.0;
  double total = 0.0;
  for (double v : exact->values) total += v > 0 ? v : 0.0;

  std::printf("marketplace payouts from %d providers (GBDT model)\n\n", n);
  std::printf("%-10s %10s %10s %10s %14s\n", "provider", "exact", "IPSS",
              "Ext-TMC", "payout (exact)");
  for (int i = 0; i < n; ++i) {
    const double payout =
        total > 0 ? std::max(exact->values[i], 0.0) / total *
                        monthly_revenue
                  : 0.0;
    std::printf("%-10d %10.4f %10.4f %10.4f %13.0f$\n", i,
                exact->values[i], ipss->values[i], tmc->values[i], payout);
  }
  std::printf("\nbudgets: exact=%zu, IPSS=%zu, TMC=%zu coalition"
              " trainings\n",
              exact->num_trainings, ipss->num_trainings,
              tmc->num_trainings);
  std::printf("IPSS error:    %.4f (rank corr %.3f)\n",
              RelativeL2Error(exact->values, ipss->values),
              SpearmanCorrelation(exact->values, ipss->values));
  std::printf("Ext-TMC error: %.4f (rank corr %.3f)\n",
              RelativeL2Error(exact->values, tmc->values),
              SpearmanCorrelation(exact->values, tmc->values));
  return 0;
}
