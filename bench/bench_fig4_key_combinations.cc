/// Reproduces Fig. 4 (and the Sec. IV-A key-combinations study): the
/// relative error of K-Greedy (Alg. 2) as the coalition-size cutoff K
/// grows, on the FEMNIST-style workload with ten clients. The paper's
/// observation: error is already small for K <= 2-3 and decays fast,
/// because small coalitions dominate the Shapley value in FL.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/valuation_metrics.h"
#include "core/kgreedy.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader("Fig. 4: K-Greedy relative error vs K (n=10)", options);

  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    ScenarioRunner runner(MakeFemnistScenario(10, kind, options),
                          options);
    const std::vector<double>& exact = runner.GroundTruth();

    ConsoleTable table(
        {"K", "evaluations", "time", "error(l2)", "rank corr"});
    for (int k = 1; k <= 10; ++k) {
      UtilitySession session(&runner.cache());
      Result<ValuationResult> kg = KGreedyShapley(session, k);
      if (!kg.ok()) {
        std::fprintf(stderr, "K-Greedy(%d) failed: %s\n", k,
                     kg.status().ToString().c_str());
        return 1;
      }
      table.AddRow({std::to_string(k),
                    std::to_string(kg->num_trainings),
                    FormatSeconds(kg->charged_seconds),
                    FormatDouble(RelativeL2Error(exact, kg->values), 5),
                    FormatDouble(
                        SpearmanCorrelation(exact, kg->values), 4)});
    }
    std::printf("--- %s ---\n", runner.description().c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}
