/// Reproduces Fig. 9: scalability of the sampling-based algorithms up to
/// 100 FL clients. Exact ground truth is infeasible (2^100 coalitions), so
/// — exactly like the paper — 5% of clients are planted free riders (empty
/// datasets) and 5% hold duplicated datasets, and the error proxy is how
/// much each algorithm violates the no-free-rider and symmetric-fairness
/// properties. gamma = n log2 n.
///
/// A second, storage-scalability case exercises the segmented UtilityStore
/// beyond its mapped-byte budget: a store holding more record bytes than
/// `FEDSHAP_STORE_BYTES`-style budgets allow mapped must serve every
/// utility bit-identically to an unlimited store, evicting cold segments
/// instead of growing RSS. The BenchJson records carry the mapped-byte and
/// RSS readings that back the claim.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/valuation_metrics.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

namespace {

/// Store-scale case: fills a segmented store with synthetic utility
/// records (storage is what is measured; no trainings), then serves the
/// whole key set twice — once unmapped-unlimited, once under a mapped-byte
/// budget smaller than the store — and verifies bit-identical answers.
int RunStoreScaleCase(const BenchOptions& options, BenchJson& json) {
  namespace fs = std::filesystem;
  const std::string stem = options.StoreStem().empty()
                               ? std::string("/tmp/fedshap_fig9_store")
                               : options.StoreStem();
  const uint64_t fingerprint = 0xf19500000000ULL + options.seed;
  const std::string path = UtilityStore::StemPath(stem, fingerprint);
  fs::remove_all(path);

  // Segment rotation chosen so the write phase seals a handful of
  // segments without tripping background compaction (which would merge
  // them into one and leave nothing to evict). The budget admits one
  // sealed segment mapped at a time (~170 KiB with its footer index)
  // but not two, with the whole store about twice the budget.
  constexpr uint64_t kSegmentBytes = 96 * 1024;
  constexpr uint64_t kBudgetBytes = 256 * 1024;

  std::vector<Coalition> keys;
  std::vector<double> utilities;
  double write_seconds = 0.0;
  uint64_t store_bytes = 0;
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    if (!store.ok()) {
      std::fprintf(stderr, "store-scale: open: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    (*store)->set_segment_target_bytes(kSegmentBytes);
    Rng rng(options.seed + 9);
    Stopwatch timer;
    // Fill until three segments sealed: > 2x the mapped-byte budget of
    // the serving phase, still under the background-compaction trigger.
    while ((*store)->stats().sealed_segments < 3) {
      Coalition c;
      for (int i = 0; i < 200; ++i) {
        if (rng.Bernoulli(0.25)) c.Add(i);
      }
      if (!keys.empty() && c == keys.back()) continue;
      const double utility = rng.Uniform(-1.0, 1.0);
      (*store)->Put(c, {utility, rng.Uniform()});
      keys.push_back(c);
      utilities.push_back(utility);
    }
    if (!(*store)->Flush().ok()) return 1;
    write_seconds = timer.ElapsedSeconds();
    const UtilityStoreStats stats = (*store)->stats();
    store_bytes = stats.sealed_bytes + stats.active_bytes;
  }

  // Duplicate keys supersede; serve each coalition's latest record.
  auto serve = [&](UtilityStore& store, size_t* mismatches) {
    for (size_t i = 0; i < keys.size(); ++i) {
      UtilityRecord record;
      if (!store.Lookup(keys[i], &record)) {
        ++*mismatches;
        continue;
      }
      // Bit-identical: the stored double, not an approximation.
      bool superseded = false;
      for (size_t j = i + 1; j < keys.size() && !superseded; ++j) {
        superseded = keys[j] == keys[i];
      }
      if (!superseded && record.utility != utilities[i]) ++*mismatches;
    }
  };

  size_t unlimited_mismatches = 0;
  double unlimited_seconds = 0.0;
  uint64_t unlimited_mapped = 0;
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    if (!store.ok()) return 1;
    Stopwatch timer;
    serve(**store, &unlimited_mismatches);
    unlimited_seconds = timer.ElapsedSeconds();
    unlimited_mapped = (*store)->stats().mapped_bytes;
  }

  size_t budget_mismatches = 0;
  double budget_seconds = 0.0;
  UtilityStoreStats budget_stats;
  {
    Result<std::unique_ptr<UtilityStore>> store =
        UtilityStore::Open(path, fingerprint);
    if (!store.ok()) return 1;
    (*store)->set_byte_budget(kBudgetBytes);
    Stopwatch timer;
    serve(**store, &budget_mismatches);
    budget_seconds = timer.ElapsedSeconds();
    budget_stats = (*store)->stats();
  }
  fs::remove_all(path);

  const uint64_t rss = CurrentRssBytes();
  std::printf(
      "\nstore-scale: %zu records, %llu store bytes, budget %llu bytes\n"
      "  unlimited: %.3fs lookups, %llu bytes mapped\n"
      "  budgeted:  %.3fs lookups, %llu bytes mapped, %zu evictions, "
      "%zu remaps\n"
      "  mismatches vs written values: %zu (unlimited) / %zu (budgeted)\n"
      "  process RSS now %llu bytes (peak %llu)\n",
      keys.size(), static_cast<unsigned long long>(store_bytes),
      static_cast<unsigned long long>(kBudgetBytes), unlimited_seconds,
      static_cast<unsigned long long>(unlimited_mapped), budget_seconds,
      static_cast<unsigned long long>(budget_stats.mapped_bytes),
      budget_stats.evictions, budget_stats.remaps, unlimited_mismatches,
      budget_mismatches, static_cast<unsigned long long>(rss),
      static_cast<unsigned long long>(PeakRssBytes()));

  json.Add("store_scale")
      .Label("case", "segmented_store_budget")
      .Metric("records", static_cast<double>(keys.size()))
      .Metric("store_bytes", static_cast<double>(store_bytes))
      .Metric("byte_budget", static_cast<double>(kBudgetBytes))
      .Metric("write_seconds", write_seconds)
      .Metric("unlimited_lookup_seconds", unlimited_seconds)
      .Metric("unlimited_mapped_bytes",
              static_cast<double>(unlimited_mapped))
      .Metric("budget_lookup_seconds", budget_seconds)
      .Metric("budget_mapped_bytes",
              static_cast<double>(budget_stats.mapped_bytes))
      .Metric("evictions", static_cast<double>(budget_stats.evictions))
      .Metric("remaps", static_cast<double>(budget_stats.remaps))
      .Metric("mismatches", static_cast<double>(unlimited_mismatches +
                                                budget_mismatches))
      .Metric("current_rss_bytes", static_cast<double>(rss));

  if (unlimited_mismatches + budget_mismatches != 0) {
    std::fprintf(stderr,
                 "store-scale: budgeted store is NOT bit-identical\n");
    return 1;
  }
  if (budget_stats.mapped_bytes > kBudgetBytes) {
    std::fprintf(stderr, "store-scale: mapped bytes exceed the budget\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader(
      "Fig. 9: scalability to 100 clients (gamma = n log2 n, "
      "5% free riders + 5% duplicates)",
      options);
  BenchJson json("fig9_scalability");

  ConsoleTable table({"n", "algorithm", "time", "trainings",
                      "free-rider err", "symmetry err", "combined"});
  for (int n : {20, 40, 60, 80, 100}) {
    ScalabilityScenario scenario = MakeScalabilityScenario(n, options);
    ScenarioRunner runner(std::move(scenario.scenario), options);
    const int gamma = PaperGamma(n);

    for (Algo algo : SamplingAlgos()) {
      Result<AlgoRun> run = runner.Run(algo, gamma, options.seed + n);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                     run.status().ToString().c_str());
        return 1;
      }
      Result<FairnessProxyError> proxies = ComputeFairnessProxies(
          run->result.values, scenario.null_players,
          scenario.duplicate_pairs);
      if (!proxies.ok()) return 1;
      table.AddRow({std::to_string(n), AlgoName(algo), TimeCell(*run),
                    std::to_string(run->result.num_trainings),
                    FormatDouble(proxies->free_rider, 4),
                    FormatDouble(proxies->symmetry, 4),
                    FormatDouble(proxies->combined, 4)});
      json.Add("scalability")
          .Label("algorithm", AlgoName(algo))
          .Metric("n", n)
          .Metric("gamma", gamma)
          .Metric("charged_seconds", run->result.charged_seconds)
          .Metric("trainings",
                  static_cast<double>(run->result.num_trainings))
          .Metric("free_rider_error", proxies->free_rider)
          .Metric("symmetry_error", proxies->symmetry);
    }
    table.AddSeparator();
  }
  table.Print(std::cout);

  const int store_scale = RunStoreScaleCase(options, json);

  Status written = json.WriteTo(options.json);
  if (!written.ok()) {
    std::fprintf(stderr, "bench JSON: %s\n", written.ToString().c_str());
    return 1;
  }
  return store_scale;
}
