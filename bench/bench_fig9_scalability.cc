/// Reproduces Fig. 9: scalability of the sampling-based algorithms up to
/// 100 FL clients. Exact ground truth is infeasible (2^100 coalitions), so
/// — exactly like the paper — 5% of clients are planted free riders (empty
/// datasets) and 5% hold duplicated datasets, and the error proxy is how
/// much each algorithm violates the no-free-rider and symmetric-fairness
/// properties. gamma = n log2 n.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader(
      "Fig. 9: scalability to 100 clients (gamma = n log2 n, "
      "5% free riders + 5% duplicates)",
      options);

  ConsoleTable table({"n", "algorithm", "time", "trainings",
                      "free-rider err", "symmetry err", "combined"});
  for (int n : {20, 40, 60, 80, 100}) {
    ScalabilityScenario scenario = MakeScalabilityScenario(n, options);
    ScenarioRunner runner(std::move(scenario.scenario), options);
    const int gamma = PaperGamma(n);

    for (Algo algo : SamplingAlgos()) {
      Result<AlgoRun> run = runner.Run(algo, gamma, options.seed + n);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                     run.status().ToString().c_str());
        return 1;
      }
      Result<FairnessProxyError> proxies = ComputeFairnessProxies(
          run->result.values, scenario.null_players,
          scenario.duplicate_pairs);
      if (!proxies.ok()) return 1;
      table.AddRow({std::to_string(n), AlgoName(algo), TimeCell(*run),
                    std::to_string(run->result.num_trainings),
                    FormatDouble(proxies->free_rider, 4),
                    FormatDouble(proxies->symmetry, 4),
                    FormatDouble(proxies->combined, 4)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
