#ifndef FEDSHAP_BENCH_COMMON_H_
#define FEDSHAP_BENCH_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/exact.h"
#include "core/ipss.h"
#include "core/stratified.h"
#include "core/valuation_result.h"
#include "data/partition.h"
#include "fl/reconstruction.h"
#include "fl/utility.h"
#include "fl/utility_cache.h"
#include "fl/utility_store.h"

namespace fedshap {
namespace bench {

/// Command-line options shared by every bench binary.
///
///   --scale=<float>   multiplies dataset sizes (and some budgets); also
///                     readable from FEDSHAP_BENCH_SCALE. Default 1.0.
///   --seed=<u64>      master seed. Default 2025.
///   --quick           equivalent to --scale=0.4 (CI-sized run).
///   --threads=<int>   worker threads for coalition-batch evaluation; also
///                     readable from FEDSHAP_BENCH_THREADS. 0 = all
///                     hardware threads. Default 1 (sequential).
///   --batch-size=<int>  minibatch size of every FedAvg local-SGD epoch;
///                     also readable from FEDSHAP_BENCH_BATCH_SIZE.
///                     0 (default) keeps each scenario's own value. Part
///                     of the workload fingerprint: different batch sizes
///                     are different workloads and use different store
///                     files.
///   --cache-file=<stem>  persist utility evaluations: each workload the
///                     binary runs writes `<stem>.<fingerprint>.fsus`
///                     (content-addressed, crash-safe; also readable from
///                     FEDSHAP_BENCH_CACHE_FILE). Without --resume any
///                     existing store files are replaced.
///   --resume          with --cache-file: load existing store files, so a
///                     killed run relaunches warm and repeated invocations
///                     share trainings across processes. Charged-time
///                     accounting is unaffected (disk hits charge their
///                     recorded training cost).
///   --json=<path>     additionally write machine-readable timing /
///                     speedup records (BenchJson) to `path`; also
///                     readable from FEDSHAP_BENCH_JSON. CI uses this to
///                     archive BENCH_*.json artifacts per run so the
///                     perf trajectory is tracked over time.
///   --store-dir=<dir> directory for persistent utility stores; also
///                     readable from FEDSHAP_BENCH_STORE_DIR. Shorthand
///                     for --cache-file=<dir>/utilities (the per-workload
///                     store directories land under `dir`); an explicit
///                     --cache-file wins.
struct BenchOptions {
  double scale = 1.0;
  uint64_t seed = 2025;
  int threads = 1;
  int batch_size = 0;  // 0 = scenario default
  std::string cache_file;
  std::string store_dir;
  bool resume = false;
  std::string json;  // empty = no JSON output

  static BenchOptions Parse(int argc, char** argv);

  /// rows scaled by `scale`, with a floor to stay meaningful.
  size_t ScaledRows(size_t rows) const;

  /// The effective store stem: `cache_file` when set, else
  /// `<store_dir>/utilities`, else empty (no persistence).
  std::string StoreStem() const;
};

/// Peak resident set size of this process in bytes (0 when the platform
/// offers no reading). Recorded in BenchJson provenance so store-scale
/// memory claims are attributable.
uint64_t PeakRssBytes();

/// Current resident set size in bytes (0 when unavailable).
uint64_t CurrentRssBytes();

/// Prints the effective run configuration (scale, seed, threads, cache
/// file, resume mode) so every bench's output records its own
/// provenance. Every bench main calls this right after Parse. Benches
/// that never evaluate through a ScenarioRunner (closed-form utilities
/// reseeded per run, where caching and threading cannot apply) pass
/// `runner_backed = false`, and the header says the flags are unused
/// instead of claiming them as effective.
void PrintRunHeader(const char* title, const BenchOptions& options,
                    bool runner_backed = true);

/// Machine-readable bench output: an append-only list of named records,
/// each carrying string labels (case, backend, ...) and numeric metrics
/// (seconds, speedups, ...), serialized as
///
///   {"bench": "<name>", "provenance": {backend, worker budget, ...},
///    "records": [{"name": ..., <labels...>, <metrics...>}, ...]}
///
/// The provenance object is captured at write time from the live
/// process (kernel backend, worker budget, hardware threads), so every
/// archived number is attributable to the configuration that produced
/// it.
class BenchJson {
 public:
  /// One record under construction; returned by Add for fluent filling.
  class Record {
   public:
    /// Adds a string label.
    Record& Label(const std::string& key, const std::string& value);
    /// Adds a numeric metric.
    Record& Metric(const std::string& key, double value);

   private:
    friend class BenchJson;
    std::string name_;
    std::vector<std::pair<std::string, std::string>> labels_;
    std::vector<std::pair<std::string, double>> metrics_;
  };

  /// `bench_name` identifies the producing binary in the output.
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Starts a new record. The reference stays valid until the next Add.
  Record& Add(const std::string& name);

  /// True when no records were added.
  bool empty() const { return records_.empty(); }

  /// Writes the collected records to `path` (overwriting). No-op
  /// returning OK when `path` is empty, so call sites can pass
  /// BenchOptions::json unconditionally.
  Status WriteTo(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<Record> records_;
};

/// FL model architectures used across the paper's evaluation.
enum class ModelKind { kMlp, kCnn, kLogReg, kXgb };
const char* ModelKindName(ModelKind kind);

/// A fully assembled valuation workload: the utility function plus the
/// metadata the harness needs.
struct Scenario {
  std::unique_ptr<UtilityFunction> utility;
  /// Non-null iff gradient-based baselines apply (FedAvg-trained models).
  FedAvgUtility* fedavg = nullptr;
  int n = 0;
  std::string description;
};

/// FEMNIST-style workload: synthetic digits partitioned by writer id.
Scenario MakeFemnistScenario(int n, ModelKind kind,
                             const BenchOptions& options);

/// Adult-style workload: synthetic census data partitioned by occupation.
/// `kind` must be kMlp, kLogReg or kXgb.
Scenario MakeAdultScenario(int n, ModelKind kind,
                           const BenchOptions& options);

/// The five synthetic setups of Fig. 6 on digit data.
Scenario MakeSyntheticScenario(PartitionScheme scheme, int n, ModelKind kind,
                               const BenchOptions& options);

/// Scalability workload (Fig. 9): n clients on small digits with 5% planted
/// free riders (empty datasets) and 5% duplicated datasets. Outputs the
/// planted structure for the fairness proxies.
struct ScalabilityScenario {
  Scenario scenario;
  std::vector<int> null_players;
  std::vector<std::pair<int, int>> duplicate_pairs;
};
ScalabilityScenario MakeScalabilityScenario(int n,
                                            const BenchOptions& options);

/// The paper's Table III sampling budgets: gamma = 5 / 8 / 32 for
/// n = 3 / 6 / 10; n log2(n) otherwise (the Fig. 9 choice).
int PaperGamma(int n);

/// All compared algorithms, in the paper's column order (Tables IV/V).
enum class Algo {
  kPermShapley,
  kMcShapley,
  kDigFl,
  kExtTmc,
  kExtGtb,
  kCcShapley,
  kGtgShapley,
  kOr,
  kLambdaMr,
  kIpss,
};
const char* AlgoName(Algo algo);
std::vector<Algo> AllAlgos();
/// The sampling-based subset used by Figs. 7/8/9.
std::vector<Algo> SamplingAlgos();

/// One algorithm execution, annotated for table rendering.
struct AlgoRun {
  ValuationResult result;
  /// False when the method does not apply (gradient-based x XGB).
  bool applicable = true;
  /// True for exact methods: the error column renders "-".
  bool exact = false;
  /// True when charged time is an extrapolation (Perm-Shapley at n where
  /// enumerating n! is infeasible), mirroring the paper's 10^9-second
  /// entries.
  bool estimated_time = false;
};

/// Drives all algorithms against one scenario with a shared utility cache,
/// computing the exact ground truth once. With `threads` > 1, every
/// session it opens fans coalition batches out over a shared ThreadPool
/// (0 = all hardware threads); estimates and accounting are identical to a
/// sequential run.
///
/// When the options carry a `--cache-file` stem, the runner opens the
/// scenario's content-addressed UtilityStore (`<stem>.<fp>.fsus` where fp
/// = the utility's workload fingerprint) and attaches it to the cache:
/// every training becomes durable as it completes, and with `--resume`
/// previously persisted trainings are preloaded, so a relaunched run only
/// pays for what the killed one never computed.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario, int threads = 1);

  /// Applies `options.threads` and, when `options.cache_file` is set,
  /// opens + attaches the scenario's persistent utility store.
  ScenarioRunner(Scenario scenario, const BenchOptions& options);

  /// Flushes the attached store (when any) before tearing down.
  ~ScenarioRunner();

  int n() const { return scenario_.n; }
  const std::string& description() const { return scenario_.description; }
  UtilityCache& cache() { return cache_; }

  /// Exact MC-SV (computed once, cached).
  const std::vector<double>& GroundTruth();

  /// Mean train+evaluate seconds per coalition observed so far (tau).
  double MeanTrainingCost() const;

  /// Runs one algorithm at budget `gamma` with the given seed.
  Result<AlgoRun> Run(Algo algo, int gamma, uint64_t seed);

 private:
  Result<ReconstructionContext*> GetContext();

  Scenario scenario_;
  UtilityCache cache_;
  std::unique_ptr<UtilityStore> store_;  // null without --cache-file
  std::unique_ptr<ThreadPool> pool_;  // null when running sequentially
  std::unique_ptr<ReconstructionContext> context_;
  std::optional<std::vector<double>> ground_truth_;
  double ground_truth_seconds_ = 0.0;
};

/// "12.3ms" / "-" / "~1.2e+03s" cell renderers for the result tables.
std::string TimeCell(const AlgoRun& run);
std::string ErrorCell(const AlgoRun& run, const std::vector<double>& exact);

}  // namespace bench
}  // namespace fedshap

#endif  // FEDSHAP_BENCH_COMMON_H_
