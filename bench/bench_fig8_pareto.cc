/// Reproduces Fig. 8(a)-(f): Pareto curves of the time/error trade-off for
/// the sampling-based algorithms on FEMNIST-style data across
/// n in {3, 6, 10} clients and {MLP, CNN} models. For each gamma on a grid,
/// repeated runs are averaged into one (time, error) point; a point is
/// Pareto-optimal if no other point of any algorithm beats it on both axes.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

namespace {

struct ParetoPoint {
  Algo algo;
  int gamma;
  double time;
  double error;
};

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int repeats = 8;
  PrintRunHeader(("Fig. 8: Pareto curves, time vs error (" +
                  std::to_string(repeats) + " runs/point)")
                     .c_str(),
                 options);

  const char* labels[] = {"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"};
  int panel = 0;
  for (ModelKind kind : {ModelKind::kMlp, ModelKind::kCnn}) {
    for (int n : {3, 6, 10}) {
      ScenarioRunner runner(MakeFemnistScenario(n, kind, options),
                            options);
      const std::vector<double>& exact = runner.GroundTruth();

      std::vector<ParetoPoint> points;
      std::vector<int> gammas =
          n == 3 ? std::vector<int>{2, 4, 6}
                 : (n == 6 ? std::vector<int>{4, 8, 16, 32}
                           : std::vector<int>{8, 16, 32, 64, 128});
      for (int gamma : gammas) {
        for (Algo algo : SamplingAlgos()) {
          double time_sum = 0.0, err_sum = 0.0;
          for (int rep = 0; rep < repeats; ++rep) {
            Result<AlgoRun> run = runner.Run(
                algo, gamma, options.seed + 37 * rep + gamma);
            if (!run.ok()) {
              std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                           run.status().ToString().c_str());
              return 1;
            }
            time_sum += run->result.charged_seconds;
            err_sum += RelativeL2Error(exact, run->result.values);
          }
          points.push_back({algo, gamma, time_sum / repeats,
                            err_sum / repeats});
        }
      }

      // Pareto front: no other point strictly better on both axes.
      auto dominated = [&](const ParetoPoint& p) {
        for (const ParetoPoint& q : points) {
          if (q.time < p.time && q.error < p.error) return true;
        }
        return false;
      };
      ConsoleTable table(
          {"algorithm", "gamma", "time", "error(l2)", "pareto"});
      std::sort(points.begin(), points.end(),
                [](const ParetoPoint& a, const ParetoPoint& b) {
                  return a.time < b.time;
                });
      for (const ParetoPoint& p : points) {
        table.AddRow({AlgoName(p.algo), std::to_string(p.gamma),
                      FormatSeconds(p.time), FormatDouble(p.error, 4),
                      dominated(p) ? "" : "*"});
      }
      std::printf("--- %s %s ---\n", labels[panel++],
                  runner.description().c_str());
      table.Print(std::cout);
      std::printf("\n");
    }
  }
  return 0;
}
