/// Ablation: importance pruning in isolation.
///
/// IPSS = stratified sampling + importance pruning (spend the budget on
/// small coalitions exhaustively instead of spreading it over all strata).
/// At matched budgets gamma, compares IPSS against plain Alg. 1 (uniform
/// allocation, MC scheme) and against K-Greedy's nearest cutoff on the
/// FEMNIST-style workload — quantifying how much of IPSS's win comes from
/// *where* the budget is spent.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/valuation_metrics.h"
#include "core/kgreedy.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  const int repeats = 10;
  PrintRunHeader(("Ablation: importance pruning at matched budgets "
                  "(n=10, MLP, " +
                  std::to_string(repeats) + " runs)")
                     .c_str(),
                 options);

  ScenarioRunner runner(MakeFemnistScenario(10, ModelKind::kMlp, options),
                        options);
  const std::vector<double>& exact = runner.GroundTruth();

  ConsoleTable table(
      {"gamma", "IPSS err", "uniform Alg.1 err", "improvement"});
  for (int gamma : {16, 32, 64, 128}) {
    double ipss_sum = 0.0, uniform_sum = 0.0;
    for (int rep = 0; rep < repeats; ++rep) {
      const uint64_t seed = options.seed + 31 * rep + gamma;
      Result<AlgoRun> ipss = runner.Run(Algo::kIpss, gamma, seed);
      if (!ipss.ok()) return 1;
      ipss_sum += RelativeL2Error(exact, ipss->result.values);

      StratifiedConfig uniform;
      uniform.total_rounds = gamma;
      uniform.scheme = SvScheme::kMarginal;
      uniform.seed = seed;
      UtilitySession session(&runner.cache());
      Result<ValuationResult> plain =
          StratifiedSamplingShapley(session, uniform);
      if (!plain.ok()) return 1;
      uniform_sum += RelativeL2Error(exact, plain->values);
    }
    const double ipss_err = ipss_sum / repeats;
    const double uniform_err = uniform_sum / repeats;
    table.AddRow({std::to_string(gamma), FormatDouble(ipss_err, 4),
                  FormatDouble(uniform_err, 4),
                  FormatDouble(uniform_err / std::max(ipss_err, 1e-12), 2) +
                      "x"});
  }
  table.Print(std::cout);

  // Context: the deterministic K-Greedy points bracketing the budgets.
  std::printf("\nK-Greedy reference points (deterministic):\n");
  ConsoleTable kg_table({"K", "evaluations", "error(l2)"});
  for (int k = 1; k <= 3; ++k) {
    UtilitySession session(&runner.cache());
    Result<ValuationResult> kg = KGreedyShapley(session, k);
    if (!kg.ok()) return 1;
    kg_table.AddRow({std::to_string(k), std::to_string(kg->num_trainings),
                     FormatDouble(RelativeL2Error(exact, kg->values), 4)});
  }
  kg_table.Print(std::cout);
  return 0;
}
