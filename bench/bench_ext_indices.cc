/// Extension experiment: Shapley vs the cheaper valuation indices.
///
/// Compares exact SV, exact Banzhaf, Monte-Carlo Banzhaf and leave-one-out
/// on a FEMNIST-style federation that contains a planted free rider and a
/// planted duplicate pair — the structures the paper's fairness properties
/// are about. Shows (i) Banzhaf ranks like SV but breaks efficiency and
/// (ii) LOO zeroes out *both* duplicates, violating symmetric fairness in
/// spirit: redundancy is worth nothing to LOO.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "core/alternatives.h"
#include "core/valuation_metrics.h"
#include "util/table.h"

using namespace fedshap;
using namespace fedshap::bench;

int main(int argc, char** argv) {
  BenchOptions options = BenchOptions::Parse(argc, argv);
  PrintRunHeader(
      "Extension: SV vs Banzhaf vs leave-one-out (n=10, "
      "free rider=9, duplicates=(0,1))",
      options);

  ScalabilityScenario scenario = MakeScalabilityScenario(10, options);
  ScenarioRunner runner(std::move(scenario.scenario), options);
  const std::vector<double>& exact = runner.GroundTruth();

  struct Row {
    const char* name;
    ValuationResult result;
  };
  std::vector<Row> rows;

  {
    UtilitySession session(&runner.cache());
    Result<ValuationResult> sv = ExactShapleyMc(session);
    if (!sv.ok()) return 1;
    rows.push_back({"Shapley (exact)", *sv});
  }
  {
    UtilitySession session(&runner.cache());
    Result<ValuationResult> banzhaf = ExactBanzhaf(session);
    if (!banzhaf.ok()) return 1;
    rows.push_back({"Banzhaf (exact)", *banzhaf});
  }
  {
    UtilitySession session(&runner.cache());
    BanzhafConfig config;
    config.samples = 64;
    config.seed = options.seed;
    Result<ValuationResult> mc = MonteCarloBanzhaf(session, config);
    if (!mc.ok()) return 1;
    rows.push_back({"Banzhaf (MC, 64)", *mc});
  }
  {
    UtilitySession session(&runner.cache());
    Result<ValuationResult> loo = LeaveOneOut(session);
    if (!loo.ok()) return 1;
    rows.push_back({"Leave-one-out", *loo});
  }

  ConsoleTable table({"index", "trainings", "rank corr vs SV",
                      "free-rider err", "symmetry err"});
  for (const Row& row : rows) {
    Result<FairnessProxyError> proxies = ComputeFairnessProxies(
        row.result.values, scenario.null_players,
        scenario.duplicate_pairs);
    if (!proxies.ok()) return 1;
    table.AddRow({row.name, std::to_string(row.result.num_trainings),
                  FormatDouble(SpearmanCorrelation(exact,
                                                   row.result.values), 4),
                  FormatDouble(proxies->free_rider, 4),
                  FormatDouble(proxies->symmetry, 4)});
  }
  table.Print(std::cout);

  std::printf("\nper-client values (duplicates are clients %d and %d; "
              "free rider is client %d):\n",
              scenario.duplicate_pairs[0].first,
              scenario.duplicate_pairs[0].second,
              scenario.null_players[0]);
  ConsoleTable values({"client", "Shapley", "Banzhaf", "LOO"});
  for (int i = 0; i < 10; ++i) {
    values.AddRow({std::to_string(i),
                   FormatDouble(rows[0].result.values[i], 4),
                   FormatDouble(rows[1].result.values[i], 4),
                   FormatDouble(rows[3].result.values[i], 4)});
  }
  values.Print(std::cout);
  return 0;
}
